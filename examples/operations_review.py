"""A morning operations review: timelines, day-over-day diff, trends.

Combines the monitoring tools on two consecutive days of traffic:
what ran hot overnight, what is new versus yesterday, and which message
types shifted their baseline frequency.

    python examples/operations_review.py
"""

from repro import SyslogDigest, dataset_a, generate_dataset
from repro.apps.digest_diff import diff_digests, render_delta
from repro.apps.timeline import TimelineOptions, render_event_strip, render_timeline
from repro.apps.trending import detect_shifts
from repro.core.syslogplus import Augmenter
from repro.utils.timeutils import DAY

data = generate_dataset(dataset_a(), scale=0.3)
history = data.generate(start_ts=0.0, days=14)
system = SyslogDigest.learn(
    [m.message for m in history.messages],
    list(data.configs.values()),
)

live = data.generate(start_ts=14 * DAY, days=2, phase_origin=0.0)
yesterday = [m.message for m in live.messages if m.timestamp < 15 * DAY]
today = [m.message for m in live.messages if m.timestamp >= 15 * DAY]
digest_yesterday = system.digest(yesterday)
digest_today = system.digest(today)

print("=" * 70)
print("overnight timeline (today, by router)")
print("=" * 70)
print(
    render_timeline(
        digest_today.events,
        window_start=15 * DAY,
        window_end=16 * DAY,
        options=TimelineOptions(max_routers=8),
    )
)

print()
print("=" * 70)
print("largest event, message arrivals per router")
print("=" * 70)
biggest = max(digest_today.events, key=lambda e: e.n_messages)
print(render_event_strip(biggest))

print()
print("=" * 70)
print("changes vs yesterday")
print("=" * 70)
delta = diff_digests(digest_yesterday.events, digest_today.events)
print(render_delta(delta, top=6))

print()
print("=" * 70)
print("template frequency level shifts over the learning period")
print("=" * 70)
augmenter = Augmenter(system.kb.templates, system.kb.dictionary)
stream = augmenter.augment_all(m.message for m in history.messages)
shifts = detect_shifts(stream, origin=0.0, n_days=14, min_factor=3.0)
if not shifts:
    print("no level shifts detected")
for shift in shifts[:8]:
    print(
        f"{shift.router:<16} {shift.template_key:<34} day {shift.day:>2} "
        f"{shift.direction:<4} {shift.before_mean:7.2f} -> "
        f"{shift.after_mean:7.2f} ({shift.describe_factor()})"
    )
