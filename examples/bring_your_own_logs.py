"""Using SyslogDigest on your own collector files.

SyslogDigest is vendor independent: it needs (timestamp, router,
error-code, text) lines and the router configs to learn locations from.
This example round-trips through files exactly as the CLI does, and shows
saving/loading the learned knowledge base.

    python examples/bring_your_own_logs.py
"""

import tempfile
from pathlib import Path

from repro import SyslogDigest, dataset_a, generate_dataset
from repro.core.knowledge import KnowledgeBase
from repro.syslog.stream import read_log, write_log
from repro.utils.timeutils import DAY

workdir = Path(tempfile.mkdtemp(prefix="syslogdigest-"))
print(f"working under {workdir}")

# --- pretend this is your collector + config repository ----------------
data = generate_dataset(dataset_a(), scale=0.2)
history = data.generate(start_ts=0.0, days=10)
write_log(workdir / "history.log", history.raw_messages())
config_dir = workdir / "configs"
config_dir.mkdir()
for router, text in data.configs.items():
    (config_dir / f"{router}.cfg").write_text(text)

# --- offline learning from files ----------------------------------------
messages = list(read_log(workdir / "history.log"))
configs = [p.read_text() for p in sorted(config_dir.glob("*.cfg"))]
system = SyslogDigest.learn(messages, configs, fit_temporal=False)
system.kb.save(workdir / "kb.json")
print(
    f"learned from {len(messages)} messages; knowledge base saved "
    f"({(workdir / 'kb.json').stat().st_size // 1024} KiB)"
)

# --- later / elsewhere: load the KB and digest a new file ---------------
kb = KnowledgeBase.load(workdir / "kb.json")
live = data.generate(start_ts=10 * DAY, days=1)
write_log(workdir / "today.log", live.raw_messages())

digest = SyslogDigest(kb).digest(read_log(workdir / "today.log"))
print(
    f"\n{digest.n_messages} messages -> {digest.n_events} events "
    f"(ratio {digest.compression_ratio:.2e})"
)
print(digest.render(top=5))
