"""The Section 6.1 case study: troubleshooting a PIM neighbor-loss event.

An IPTV backbone protects each multicast link with a secondary MPLS path;
PIM should only break on a dual failure.  When a PIM session dropped after
a *single* link failure, the digest's event signature exposed the real
story: the secondary path had been failing to set up and retrying every
five minutes all along.

    python examples/troubleshooting_pim.py
"""

from repro import SyslogDigest, dataset_b, generate_dataset
from repro.apps.troubleshoot import EventBrowser
from repro.utils.timeutils import DAY

data = generate_dataset(dataset_b(), scale=0.4)
# A solid month of history so the rare PIM/MPLS associations are learned.
history = data.generate(start_ts=0.0, days=30)
system = SyslogDigest.learn(
    [m.message for m in history.messages],
    list(data.configs.values()),
)

live = data.generate(start_ts=30 * DAY, days=3)
live_messages = [m.message for m in live.messages]

# Make sure the window contains the incident of interest: inject one PIM
# dual-failure cascade (the scenario the paper's operators investigated).
import random

from repro.netsim.events import b_pim_cascade

cascade = b_pim_cascade(
    data.network, random.Random(42), "demo-cascade", 31 * DAY
)
live_messages = sorted(
    live_messages + [m.message for m in cascade.messages],
    key=lambda m: m.timestamp,
)

digest = system.digest(live_messages)
browser = EventBrowser(events=digest.events, raw_messages=live_messages)

# Find the PIM neighbor-loss event an operator would be paged about.
pim_events = [
    e
    for e in digest.events
    if any("pimNbrLoss" in code for code in e.error_codes)
]
event = max(pim_events, key=lambda e: e.n_messages)

print("=== the page: PIM neighbor loss ===")
print(f"event label : {event.label}")
print(f"routers     : {', '.join(event.routers)}")
print(f"error codes : {len(event.error_codes)} distinct")
for code in event.error_codes:
    print(f"  - {code}")

# The signature exposes the broken secondary path (lspPathRetry).
if any("lspPathRetry" in code for code in event.error_codes):
    print(
        "\n>>> signature includes MPLS-MINOR-lspPathRetry: the secondary "
        "path was failing to set up — the 'protected' link was not "
        "protected.  Root cause found without any manual log grep."
    )

# Contrast with what a naive time-window grep would offer.
router = event.routers[0]
for half_width in (60.0, 3600.0):
    count = browser.naive_window_message_count(
        event.start_ts, half_width, router
    )
    print(
        f"naive +/-{int(half_width)}s grep on {router}: {count} raw "
        "messages to read"
    )
print(
    f"digest event: {event.n_messages} messages, already grouped and "
    "cross-referenced"
)

print("\n=== full investigation report (truncated) ===")
report = browser.investigation_report(event)
print("\n".join(report.splitlines()[:30]))
