"""Network health monitoring and visualization (Section 6.2).

Renders the Figure 14/15 comparison — status maps sized by digest events
vs raw messages — plus the daily operations report.

    python examples/health_monitoring.py
"""

from repro import SyslogDigest, dataset_a, generate_dataset
from repro.apps.healthmap import HealthMap, render_health_map
from repro.apps.reportgen import daily_report
from repro.utils.timeutils import DAY, MINUTE

data = generate_dataset(dataset_a(), scale=0.3)
history = data.generate(start_ts=0.0, days=14)
system = SyslogDigest.learn(
    [m.message for m in history.messages],
    list(data.configs.values()),
)

live = data.generate(start_ts=14 * DAY, days=2)
digest = system.digest(m.message for m in live.messages)
raw = [m.message for m in live.messages]

# Pick the busiest 10-minute window so there is something to look at.
best_start, best_count, j = raw[0].timestamp, 0, 0
for i, message in enumerate(raw):
    while raw[j].timestamp < message.timestamp - 10 * MINUTE:
        j += 1
    if i - j + 1 > best_count:
        best_count, best_start = i - j + 1, raw[j].timestamp

health = HealthMap.build(
    digest.events, raw, best_start, best_start + 10 * MINUTE
)

print("Figure 14 style — what actually happened (digest events):\n")
print(render_health_map(health, by_events=True))
print("\nFigure 15 style — raw message volume (misleading):\n")
print(render_health_map(health, by_events=False))

print("\n" + "=" * 60)
print("daily operations report")
print("=" * 60)
print(daily_report(digest, origin=14 * DAY))
