"""Quickstart: learn from history, digest a live stream, read the events.

Runs in under a minute on a laptop:

    python examples/quickstart.py
"""

from repro import SyslogDigest, dataset_a, generate_dataset
from repro.utils.timeutils import DAY

# 1. A synthetic ISP-backbone dataset (stands in for the paper's
#    proprietary tier-1 feed).  scale=0.3 shrinks it to laptop size.
data = generate_dataset(dataset_a(), scale=0.3)

# 2. Offline domain-knowledge learning on two weeks of history plus the
#    router configs: templates, locations, temporal parameters, rules.
history = data.generate(start_ts=0.0, days=14)
system = SyslogDigest.learn(
    [m.message for m in history.messages],
    list(data.configs.values()),
)
kb = system.kb
print(
    f"learned {len(kb.templates)} templates, {len(kb.rules)} association "
    f"rules, alpha={kb.temporal.alpha:g}, beta={kb.temporal.beta:g}"
)

# 3. Online digesting of the next two days.
live = data.generate(start_ts=14 * DAY, days=2)
digest = system.digest(m.message for m in live.messages)
print(
    f"\n{digest.n_messages} raw messages -> {digest.n_events} events "
    f"(compression ratio {digest.compression_ratio:.2e})\n"
)

# 4. The prioritized digest: one line per event, most important first.
print(digest.render(top=10))

# 5. Drill into the top event's raw messages via its index field.
top = digest.events[0]
raw = [m.message for m in live.messages]
print(f"\ntop event '{top.label}' backed by {top.n_messages} raw messages:")
for index in top.indices[:5]:
    print("  " + raw[index].render())
if top.n_messages > 5:
    print(f"  ... and {top.n_messages - 5} more")
