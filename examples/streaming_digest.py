"""Online, message-by-message digesting with DigestStream.

The batch API is convenient for studies; an operational deployment
consumes the collector feed as it arrives.  DigestStream finalizes an
event once no grouping horizon can still extend it.

    python examples/streaming_digest.py
"""

from repro import DigestStream, SyslogDigest, dataset_a, generate_dataset
from repro.core.present import present_event
from repro.utils.timeutils import DAY, format_ts

data = generate_dataset(dataset_a(), scale=0.25)
history = data.generate(start_ts=0.0, days=10)
system = SyslogDigest.learn(
    [m.message for m in history.messages],
    list(data.configs.values()),
    fit_temporal=False,
)

live = data.generate(start_ts=10 * DAY, days=1)
stream = DigestStream(system.kb, system.config)
print(
    f"pushing {len(live.messages)} messages; events finalize after "
    f"{stream.flush_after / 3600:.1f} h of group inactivity\n"
)

finalized = 0
for lm in live.messages:
    for event in stream.push(lm.message):
        finalized += 1
        print(f"[{format_ts(lm.timestamp)}] finalized:")
        print("   " + present_event(event))

remaining = stream.close()
print(
    f"\nstream closed: {finalized} events finalized live, "
    f"{len(remaining)} still open at close"
)
for event in sorted(remaining, key=lambda e: -e.score)[:5]:
    print("   " + present_event(event))
