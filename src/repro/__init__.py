"""SyslogDigest: mining network events from router syslogs.

Reproduction of Qiu et al., "What Happened in my Network? Mining Network
Events from Router Syslogs" (IMC 2010).  The package bundles:

* the SyslogDigest system itself (:mod:`repro.core`): offline domain
  knowledge learning and online digesting of syslog streams into
  prioritized network events;
* its substrates: template mining (:mod:`repro.templates`), location
  learning (:mod:`repro.locations`), association-rule and temporal mining
  (:mod:`repro.mining`), syslog parsing (:mod:`repro.syslog`);
* a network/workload simulator replacing the paper's proprietary ISP data
  (:mod:`repro.netsim`), applications (:mod:`repro.apps`) and baselines
  (:mod:`repro.baselines`).

Quickstart::

    from repro import SyslogDigest, dataset_a, generate_dataset

    data = generate_dataset(dataset_a(), scale=0.3)
    history = data.generate(start_ts=0.0, days=14)
    system = SyslogDigest.learn(
        [m.message for m in history.messages], list(data.configs.values())
    )
    live = data.generate(start_ts=14 * 86400.0, days=1)
    digest = system.digest(m.message for m in live.messages)
    print(digest.render(top=10))
"""

from repro.core import (
    DigestConfig,
    DigestResult,
    KnowledgeBase,
    NetworkEvent,
    SyslogDigest,
)
from repro.core.stream import DigestStream
from repro.netsim import dataset_a, dataset_b, generate_dataset
from repro.syslog import SyslogMessage, parse_line

__version__ = "1.0.0"

__all__ = [
    "DigestConfig",
    "DigestResult",
    "DigestStream",
    "KnowledgeBase",
    "NetworkEvent",
    "SyslogDigest",
    "SyslogMessage",
    "__version__",
    "dataset_a",
    "dataset_b",
    "generate_dataset",
    "parse_line",
]
