"""MERCURY-style trend detection over template frequencies.

The paper's introduction points at MERCURY [15], which finds network
behaviour changes (e.g. after upgrades) as *level shifts* in the daily
frequency of individual syslog types — and argues SyslogDigest's template
relationships make such results more meaningful.  This module provides
that capability on top of learned templates: per-(router, template) daily
series, a rank-free level-shift test, and a report of which templates
changed behaviour and when.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.syslogplus import SyslogPlus
from repro.utils.stats import mean
from repro.utils.timeutils import DAY


@dataclass(frozen=True)
class LevelShift:
    """A detected persistent change in a template's daily frequency."""

    router: str
    template_key: str
    day: int  # first day of the new level (0-based)
    before_mean: float
    after_mean: float

    @property
    def factor(self) -> float:
        """Magnitude of the shift (>= 1); infinite for appear/disappear."""
        lo = min(self.before_mean, self.after_mean)
        hi = max(self.before_mean, self.after_mean)
        if lo == 0.0:
            return float("inf")
        return hi / lo

    @property
    def direction(self) -> str:
        """``up`` or ``down``."""
        return "up" if self.after_mean > self.before_mean else "down"

    def describe_factor(self) -> str:
        """Display form: ``x3.2``, or ``new``/``gone`` for zero baselines."""
        if self.factor == float("inf"):
            return "new" if self.direction == "up" else "gone"
        return f"x{self.factor:.1f}"


def daily_series(
    stream: Sequence[SyslogPlus], origin: float, n_days: int
) -> dict[tuple[str, str], list[int]]:
    """Daily (router, template) counts over ``n_days`` from ``origin``."""
    series: dict[tuple[str, str], list[int]] = {}
    for plus in stream:
        day = int((plus.timestamp - origin) // DAY)
        if not 0 <= day < n_days:
            continue
        key = (plus.router, plus.template_key)
        counts = series.get(key)
        if counts is None:
            counts = [0] * n_days
            series[key] = counts
        counts[day] += 1
    return series


def detect_level_shift(
    counts: Sequence[int],
    min_window: int = 3,
    min_factor: float = 3.0,
    min_level: float = 1.0,
) -> tuple[int, float, float] | None:
    """Best split day where the mean level changes by >= ``min_factor``.

    Both sides need at least ``min_window`` days and the larger side's
    mean must reach ``min_level`` (a shift between 0.001 and 0.003 is
    noise, not behaviour change).  Returns (day, before_mean, after_mean)
    or ``None``.
    """
    n = len(counts)
    best: tuple[int, float, float] | None = None
    best_factor = min_factor
    for day in range(min_window, n - min_window + 1):
        before = mean([float(c) for c in counts[:day]])
        after = mean([float(c) for c in counts[day:]])
        hi, lo = max(before, after), min(before, after)
        if hi < min_level:
            continue
        factor = hi / max(lo, 1e-9) if lo > 0 else float("inf")
        # Guard against a single spike: the medians of the two sides must
        # separate in the same direction as the means, by at least half
        # the factor bar.  A lone outlier day moves the mean but not the
        # median.
        med_before = float(sorted(counts[:day])[day // 2])
        med_after = float(sorted(counts[day:])[(n - day) // 2])
        med_hi = max(med_before, med_after)
        med_lo = min(med_before, med_after)
        if med_hi < (min_factor / 2) * max(med_lo, 1e-9):
            continue
        if (after > before) != (med_after > med_before):
            continue
        if factor >= best_factor:
            best_factor = factor
            best = (day, before, after)
    return best


def detect_shifts(
    stream: Sequence[SyslogPlus],
    origin: float,
    n_days: int,
    min_factor: float = 3.0,
) -> list[LevelShift]:
    """All per-(router, template) level shifts in a Syslog+ stream."""
    shifts: list[LevelShift] = []
    for (router, template_key), counts in sorted(
        daily_series(stream, origin, n_days).items()
    ):
        found = detect_level_shift(counts, min_factor=min_factor)
        if found is None:
            continue
        day, before, after = found
        shifts.append(
            LevelShift(
                router=router,
                template_key=template_key,
                day=day,
                before_mean=before,
                after_mean=after,
            )
        )
    shifts.sort(key=lambda s: -s.factor)
    return shifts
