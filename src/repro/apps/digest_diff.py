"""Comparing two digest runs: what changed since yesterday?

Operators track evolution ("tracking the appearance and evolvement of
network events" — Section 1): which event signatures are new today, which
disappeared, which changed volume.  Events are keyed by their template
signature plus router set, the stable identity of a *kind of trouble at a
place*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import NetworkEvent

SignatureKey = tuple[tuple[str, ...], tuple[str, ...]]


def _key(event: NetworkEvent) -> SignatureKey:
    return (event.template_keys, event.routers)


@dataclass(frozen=True)
class DigestDelta:
    """Difference between a baseline digest and a current one."""

    appeared: tuple[SignatureKey, ...]
    disappeared: tuple[SignatureKey, ...]
    persisted: tuple[SignatureKey, ...]
    # message-count change for persisted signatures: key -> (before, after)
    volume_changes: dict[SignatureKey, tuple[int, int]]

    @property
    def churn(self) -> int:
        """Total signatures that appeared or disappeared."""
        return len(self.appeared) + len(self.disappeared)

    def grown(self, factor: float = 2.0) -> list[SignatureKey]:
        """Persisted signatures whose volume grew by at least ``factor``."""
        return [
            key
            for key, (before, after) in self.volume_changes.items()
            if before > 0 and after >= factor * before
        ]


def diff_digests(
    baseline: list[NetworkEvent], current: list[NetworkEvent]
) -> DigestDelta:
    """Compare two digests by event signature identity."""
    base_counts: dict[SignatureKey, int] = {}
    for event in baseline:
        key = _key(event)
        base_counts[key] = base_counts.get(key, 0) + event.n_messages
    curr_counts: dict[SignatureKey, int] = {}
    for event in current:
        key = _key(event)
        curr_counts[key] = curr_counts.get(key, 0) + event.n_messages

    appeared = tuple(
        sorted(set(curr_counts) - set(base_counts))
    )
    disappeared = tuple(
        sorted(set(base_counts) - set(curr_counts))
    )
    persisted = tuple(sorted(set(base_counts) & set(curr_counts)))
    return DigestDelta(
        appeared=appeared,
        disappeared=disappeared,
        persisted=persisted,
        volume_changes={
            key: (base_counts[key], curr_counts[key]) for key in persisted
        },
    )


def render_delta(delta: DigestDelta, top: int = 10) -> str:
    """Human-readable change report."""
    lines = [
        f"appeared: {len(delta.appeared)}  disappeared: "
        f"{len(delta.disappeared)}  persisted: {len(delta.persisted)}"
    ]
    for key in delta.appeared[:top]:
        templates, routers = key
        lines.append(
            f"  + {', '.join(routers)}: {', '.join(templates[:4])}"
        )
    for key in delta.disappeared[:top]:
        templates, routers = key
        lines.append(
            f"  - {', '.join(routers)}: {', '.join(templates[:4])}"
        )
    for key in delta.grown()[:top]:
        before, after = delta.volume_changes[key]
        _templates, routers = key
        lines.append(
            f"  ^ {', '.join(routers)}: volume {before} -> {after}"
        )
    return "\n".join(lines)
