"""Figure-ready data export: CSV series behind every reproduced figure.

The bench harness records human-readable tables; downstream users often
want the raw series to plot themselves.  These helpers turn digest results
and sweep curves into plain CSV text (no plotting dependencies).
"""

from __future__ import annotations

import io
from collections.abc import Sequence

from repro.core.pipeline import DigestResult


def _csv(rows: Sequence[Sequence[object]], header: Sequence[str]) -> str:
    out = io.StringIO()
    out.write(",".join(header) + "\n")
    for row in rows:
        out.write(",".join(str(cell) for cell in row) + "\n")
    return out.getvalue()


def daily_counts_csv(result: DigestResult, origin: float) -> str:
    """Figure 12 series: day, messages, events, ratio."""
    per_day = result.per_day(origin)
    rows = [
        (
            day,
            counts["messages"],
            counts["events"],
            counts["events"] / max(counts["messages"], 1),
        )
        for day, counts in sorted(per_day.items())
    ]
    return _csv(rows, ["day", "messages", "events", "ratio"])


def per_router_csv(result: DigestResult) -> str:
    """Figure 13 series: router, messages, events, ratio."""
    per_router = result.per_router()
    rows = [
        (
            router,
            counts["messages"],
            counts["events"],
            counts["events"] / max(counts["messages"], 1),
        )
        for router, counts in sorted(
            per_router.items(), key=lambda kv: -kv[1]["messages"]
        )
    ]
    return _csv(rows, ["router", "messages", "events", "ratio"])


def sweep_csv(
    curve: Sequence[tuple[float, float]], x_name: str, y_name: str
) -> str:
    """Generic parameter-sweep series (Figures 6, 7, 10, 11)."""
    return _csv(list(curve), [x_name, y_name])


def events_csv(result: DigestResult, top: int | None = None) -> str:
    """The ranked digest as machine-readable rows."""
    events = result.events if top is None else result.events[:top]
    rows = [
        (
            f"{event.start_ts:.0f}",
            f"{event.end_ts:.0f}",
            ";".join(event.routers),
            event.label.replace(",", ";"),
            event.n_messages,
            f"{event.score:.2f}",
        )
        for event in events
    ]
    return _csv(
        rows, ["start_ts", "end_ts", "routers", "label", "messages", "score"]
    )
