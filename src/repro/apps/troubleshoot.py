"""Troubleshooting support: drill into digests instead of raw log grep.

Section 6.1: operators investigating a complex incident (the PIM
neighbor-loss cascade) would otherwise guess a time window and a router
and read raw syslog.  :class:`EventBrowser` answers the questions they
actually have: which events involve this router/location/time, what raw
messages back an event, and how often similar events occurred before.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import NetworkEvent
from repro.core.present import present_event
from repro.syslog.message import SyslogMessage
from repro.utils.timeutils import format_ts


@dataclass
class EventBrowser:
    """Query interface over one digest run.

    ``raw_messages`` is the time-sorted message list the digest was run on;
    events reference into it by index.
    """

    events: list[NetworkEvent]
    raw_messages: list[SyslogMessage]

    def events_at(
        self,
        router: str | None = None,
        start_ts: float | None = None,
        end_ts: float | None = None,
    ) -> list[NetworkEvent]:
        """Events touching a router and/or overlapping a time range."""
        out = []
        for event in self.events:
            if router is not None and router not in event.routers:
                continue
            if end_ts is not None and event.start_ts > end_ts:
                continue
            if start_ts is not None and event.end_ts < start_ts:
                continue
            out.append(event)
        return out

    def raw_of(self, event: NetworkEvent) -> list[SyslogMessage]:
        """Retrieve the raw syslog messages behind an event."""
        return [self.raw_messages[i] for i in event.indices]

    def similar_events(self, event: NetworkEvent) -> list[NetworkEvent]:
        """Other events with the same template combination.

        This is the "frequency and scope of the kind of network event
        under investigation" view the paper says operators lose when they
        grep a narrow window.
        """
        signature = set(event.template_keys)
        return [
            other
            for other in self.events
            if other is not event and set(other.template_keys) == signature
        ]

    def investigation_report(self, event: NetworkEvent) -> str:
        """A full drill-down: digest line, stats, and the raw messages."""
        lines = [
            "=== event ===",
            present_event(event),
            f"routers: {', '.join(event.routers)}",
            f"error codes ({len(event.error_codes)}): "
            + ", ".join(event.error_codes),
            f"similar events in this digest: {len(self.similar_events(event))}",
            "=== raw syslog ===",
        ]
        for message in self.raw_of(event):
            lines.append(
                f"{format_ts(message.timestamp)} {message.router} "
                f"{message.error_code}: {message.detail}"
            )
        return "\n".join(lines)

    def naive_window_message_count(
        self, center_ts: float, half_width: float, router: str
    ) -> int:
        """How many raw messages a time-window grep would surface.

        The comparison the paper makes: a +/-60 s window misses the slow
        parts of a cascade, a +/-3600 s window buries the operator.
        """
        return sum(
            1
            for message in self.raw_messages
            if message.router == router
            and abs(message.timestamp - center_ts) <= half_width
        )
