"""JSON-friendly views of digest output, for integration.

Downstream systems (ticketing, dashboards, alert buses) want structured
events, not rendered text.  These converters produce plain dict/JSON forms
of events and digests with stable field names.
"""

from __future__ import annotations

import json

from repro.core.events import NetworkEvent
from repro.core.pipeline import DigestResult
from repro.utils.timeutils import format_ts


def event_to_dict(event: NetworkEvent, include_indices: bool = True) -> dict:
    """A stable, JSON-serializable view of one event."""
    out = {
        "start": format_ts(event.start_ts),
        "end": format_ts(event.end_ts),
        "start_ts": event.start_ts,
        "end_ts": event.end_ts,
        "label": event.label,
        "score": round(event.score, 3),
        "n_messages": event.n_messages,
        "routers": list(event.routers),
        "error_codes": list(event.error_codes),
        "templates": list(event.template_keys),
        "locations": [str(loc) for loc in event.location_summary()],
    }
    if include_indices:
        out["message_indices"] = list(event.indices)
    return out


def digest_to_dict(
    result: DigestResult, top: int | None = None
) -> dict:
    """The whole digest as one JSON-serializable document."""
    events = result.events if top is None else result.events[:top]
    return {
        "n_messages": result.n_messages,
        "n_events": result.n_events,
        "compression_ratio": result.compression_ratio,
        "active_rules": sorted(list(p) for p in result.active_rules),
        "events": [event_to_dict(e) for e in events],
    }


def digest_to_json(result: DigestResult, top: int | None = None) -> str:
    """JSON text of :func:`digest_to_dict`."""
    return json.dumps(digest_to_dict(result, top), indent=1)
