"""Daily operations report over a digest run (feeds Figures 12/13)."""

from __future__ import annotations

from repro.core.pipeline import DigestResult
from repro.utils.stats import gini
from repro.utils.textable import render_table


def daily_report(result: DigestResult, origin: float) -> str:
    """Messages/events per day plus per-router skew, as a text report."""
    per_day = result.per_day(origin)
    rows = [
        (
            day,
            counts["messages"],
            counts["events"],
            f"{counts['events'] / max(counts['messages'], 1):.2e}",
        )
        for day, counts in sorted(per_day.items())
    ]
    day_table = render_table(
        ["day", "messages", "events", "ratio"], rows, title="per-day digest"
    )

    per_router = result.per_router()
    router_rows = sorted(
        per_router.items(), key=lambda kv: -kv[1]["messages"]
    )[:15]
    router_table = render_table(
        ["router", "messages", "events"],
        [(r, c["messages"], c["events"]) for r, c in router_rows],
        title="busiest routers",
    )
    message_skew = gini([c["messages"] for c in per_router.values()])
    event_skew = gini([c["events"] for c in per_router.values()])
    skew_line = (
        f"per-router skew (gini): messages={message_skew:.3f} "
        f"events={event_skew:.3f}"
    )
    return "\n\n".join([day_table, router_table, skew_line])
