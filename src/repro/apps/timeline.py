"""ASCII event timelines: per-router swimlanes for a window or an event.

Troubleshooting often starts with "what happened around then?"; a timeline
of digest events per router answers it in a terminal, complementing the
health map (which aggregates) and the event browser (which drills down).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import NetworkEvent
from repro.utils.timeutils import format_ts


@dataclass(frozen=True)
class TimelineOptions:
    """Rendering knobs."""

    width: int = 72
    max_routers: int = 12
    label_width: int = 18


def _clamp(value: int, lo: int, hi: int) -> int:
    return max(lo, min(value, hi))


def render_timeline(
    events: list[NetworkEvent],
    window_start: float,
    window_end: float,
    options: TimelineOptions = TimelineOptions(),
) -> str:
    """Swimlane view: one row per router, one span per event.

    Events overlapping the window are drawn as ``[====]`` spans on each
    router they touch; overlapping events on one router merge visually
    (the drill-down is the event browser's job).
    """
    if window_end <= window_start:
        raise ValueError("window_end must be after window_start")
    span = window_end - window_start
    visible = [
        e
        for e in events
        if e.end_ts >= window_start and e.start_ts <= window_end
    ]
    by_router: dict[str, list[NetworkEvent]] = {}
    for event in visible:
        for router in event.routers:
            by_router.setdefault(router, []).append(event)

    header = (
        f"{format_ts(window_start)}  ..  {format_ts(window_end)} "
        f"({len(visible)} events)"
    )
    lines = [header]
    ordered = sorted(
        by_router.items(), key=lambda kv: (-len(kv[1]), kv[0])
    )[: options.max_routers]
    for router, router_events in ordered:
        cells = [" "] * options.width
        for event in router_events:
            lo = _clamp(
                int((event.start_ts - window_start) / span * options.width),
                0,
                options.width - 1,
            )
            hi = _clamp(
                int((event.end_ts - window_start) / span * options.width),
                lo,
                options.width - 1,
            )
            cells[lo] = "["
            cells[hi] = "]"
            for i in range(lo + 1, hi):
                if cells[i] == " ":
                    cells[i] = "="
        label = router[: options.label_width].ljust(options.label_width)
        lines.append(f"{label}|{''.join(cells)}|")
    if len(by_router) > options.max_routers:
        lines.append(f"(+{len(by_router) - options.max_routers} more routers)")
    return "\n".join(lines)


def render_event_strip(
    event: NetworkEvent, options: TimelineOptions = TimelineOptions()
) -> str:
    """Message-arrival strip for one event, one row per router."""
    start, end = event.start_ts, max(event.end_ts, event.start_ts + 1.0)
    span = end - start
    lines = [
        f"{event.label or 'event'}: {event.n_messages} messages, "
        f"{format_ts(start)} .. {format_ts(event.end_ts)}"
    ]
    for router in event.routers[: options.max_routers]:
        cells = [" "] * options.width
        for plus in event.messages:
            if plus.router != router:
                continue
            idx = _clamp(
                int((plus.timestamp - start) / span * (options.width - 1)),
                0,
                options.width - 1,
            )
            cells[idx] = "|"
        label = router[: options.label_width].ljust(options.label_width)
        lines.append(f"{label}{''.join(cells)}")
    return "\n".join(lines)
