"""Trouble-ticket correlation (Section 6.2).

A ticket *matches* a digest event when (i) the event's duration covers the
ticket's creation time and (ii) the event's location is consistent with
the ticket's at state level.  The paper found all of the top-30 tickets
matched events ranked in the digest's top 5%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import NetworkEvent
from repro.locations.dictionary import LocationDictionary
from repro.netsim.tickets import TroubleTicket
from repro.utils.timeutils import MINUTE


@dataclass(frozen=True)
class TicketMatch:
    """One ticket's best matching event, if any."""

    ticket: TroubleTicket
    event_rank: int | None  # 0-based rank in the score-ordered digest
    event: NetworkEvent | None


@dataclass
class TicketMatchReport:
    """Outcome over a set of tickets."""

    matches: list[TicketMatch]
    n_events: int

    @property
    def n_matched(self) -> int:
        """Tickets that found a consistent digest event."""
        return sum(1 for m in self.matches if m.event_rank is not None)

    @property
    def match_fraction(self) -> float:
        """Matched share of all tickets (1.0 = nothing missed)."""
        return self.n_matched / len(self.matches) if self.matches else 1.0

    def worst_rank_percentile(self) -> float | None:
        """Highest (worst) matched rank as a fraction of all events.

        The paper's claim is that this stays within the top 5%.
        """
        ranks = [m.event_rank for m in self.matches if m.event_rank is not None]
        if not ranks or self.n_events == 0:
            return None
        return (max(ranks) + 1) / self.n_events


def match_tickets(
    tickets: list[TroubleTicket],
    ranked_events: list[NetworkEvent],
    dictionary: LocationDictionary,
    slack: float = 5 * MINUTE,
) -> TicketMatchReport:
    """Match each ticket to the best-ranked consistent event.

    ``ranked_events`` must be score-ordered (most important first).
    ``slack`` tolerates clock/entry skew around the event duration, since
    tickets are created by humans reacting to alarms.
    """
    matches: list[TicketMatch] = []
    state_cache: dict[int, tuple[str, ...]] = {}
    for ticket in tickets:
        found_rank: int | None = None
        found_event: NetworkEvent | None = None
        for rank, event in enumerate(ranked_events):
            if not (
                event.start_ts - slack
                <= ticket.created_ts
                <= event.end_ts + slack
            ):
                continue
            states = state_cache.get(id(event))
            if states is None:
                states = event.states(dictionary)
                state_cache[id(event)] = states
            if ticket.state in states:
                found_rank, found_event = rank, event
                break
        matches.append(
            TicketMatch(ticket=ticket, event_rank=found_rank, event=found_event)
        )
    return TicketMatchReport(matches=matches, n_events=len(ranked_events))
