"""Network health visualization (Section 6.2, Figures 14/15).

The paper's map draws one circle per router, sized by how much is going on
there; the point of Figure 14 vs 15 is that sizing by *digested events*
shows the real trouble while sizing by *raw messages* misleads operators
toward chatty-but-fine routers.  We render the same comparison as a text
map: routers bucketed by site, with a bar per router.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import NetworkEvent
from repro.syslog.message import SyslogMessage
from repro.utils.timeutils import format_ts


@dataclass
class HealthMap:
    """Counts per router for one observation window."""

    window_start: float
    window_end: float
    event_counts: dict[str, int] = field(default_factory=dict)
    message_counts: dict[str, int] = field(default_factory=dict)
    event_labels: dict[str, list[str]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        events: list[NetworkEvent],
        raw_messages: list[SyslogMessage],
        window_start: float,
        window_end: float,
    ) -> HealthMap:
        """Count events/messages per router inside the window."""
        health = cls(window_start=window_start, window_end=window_end)
        for event in events:
            if event.end_ts < window_start or event.start_ts > window_end:
                continue
            for router in event.routers:
                health.event_counts[router] = (
                    health.event_counts.get(router, 0) + 1
                )
                health.event_labels.setdefault(router, []).append(event.label)
        for message in raw_messages:
            if window_start <= message.timestamp <= window_end:
                health.message_counts[message.router] = (
                    health.message_counts.get(message.router, 0) + 1
                )
        return health

    def most_loaded(self, by_events: bool) -> list[tuple[str, int]]:
        """Routers sorted by the chosen count, heaviest first."""
        counts = self.event_counts if by_events else self.message_counts
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))


def _bar(count: int, scale_max: int, width: int = 30) -> str:
    if scale_max <= 0:
        return ""
    filled = max(1, round(width * count / scale_max)) if count else 0
    return "o" * filled


def render_health_map(
    health: HealthMap, by_events: bool, top: int = 12
) -> str:
    """Render the text "map": one bar per router, biggest circles first.

    ``by_events=True`` is the Figure 14 view (digest events),
    ``by_events=False`` the Figure 15 view (raw messages).
    """
    loaded = health.most_loaded(by_events)[:top]
    unit = "events" if by_events else "messages"
    title = (
        f"network status {format_ts(health.window_start)} .. "
        f"{format_ts(health.window_end)} (circle size = {unit})"
    )
    if not loaded:
        return title + "\n(no activity)"
    scale_max = loaded[0][1]
    lines = [title]
    for router, count in loaded:
        bar = _bar(count, scale_max)
        annotation = ""
        if by_events:
            labels = sorted(set(health.event_labels.get(router, [])))[:3]
            annotation = "  [" + "; ".join(labels) + "]" if labels else ""
        lines.append(f"{router:<16} {count:>6} {bar}{annotation}")
    return "\n".join(lines)
