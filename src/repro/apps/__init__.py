"""Applications built on SyslogDigest (Section 6 of the paper)."""

from repro.apps.api import digest_to_dict, digest_to_json, event_to_dict
from repro.apps.digest_diff import DigestDelta, diff_digests, render_delta
from repro.apps.figures import (
    daily_counts_csv,
    events_csv,
    per_router_csv,
    sweep_csv,
)
from repro.apps.healthmap import HealthMap, render_health_map
from repro.apps.reportgen import daily_report
from repro.apps.ticket_match import TicketMatchReport, match_tickets
from repro.apps.timeline import (
    TimelineOptions,
    render_event_strip,
    render_timeline,
)
from repro.apps.trending import LevelShift, detect_shifts
from repro.apps.troubleshoot import EventBrowser

__all__ = [
    "DigestDelta",
    "digest_to_dict",
    "digest_to_json",
    "event_to_dict",
    "EventBrowser",
    "HealthMap",
    "LevelShift",
    "TicketMatchReport",
    "daily_counts_csv",
    "daily_report",
    "detect_shifts",
    "events_csv",
    "match_tickets",
    "per_router_csv",
    "TimelineOptions",
    "diff_digests",
    "render_delta",
    "render_event_strip",
    "render_health_map",
    "render_timeline",
    "sweep_csv",
]
