"""Framed-pipe RPC between the daemon and its tenant workers (DESIGN.md §15).

One tenant worker process talks to the parent daemon over two
unidirectional pipes (the worker's stdin/stdout).  Every message is a
*frame*: a 4-byte little-endian unsigned length followed by that many
bytes of UTF-8 JSON.  JSON — never pickle — crosses the trust boundary:
a corrupted or malicious worker can produce garbage, but it cannot make
the parent unpickle arbitrary objects.

Three message shapes travel inside frames:

* **request** ``{"id": N>0, "cmd": ..., "args": {...}}`` — parent →
  worker.  ``id`` is a parent-chosen correlation number.
* **response** ``{"id": N, "ok": true, "result": ...}`` or ``{"id": N,
  "ok": false, "error": "..."}`` — worker → parent.  Responses may
  arrive in any order; the parent matches them to requests by ``id``.
* **notification** ``{"id": 0, "kind": ..., ...}`` — worker → parent,
  unsolicited (``started`` / ``batch`` / ``budget`` / ``exhausted`` /
  ``fatal``).

Failure surfaces are deliberately loud and typed:

* a frame longer than :data:`MAX_FRAME_BYTES` raises
  :class:`FrameTooLarge` on both ends (the writer refuses to emit one,
  the reader refuses to buffer one — a protocol-desync guard);
* EOF at a frame boundary raises ``EOFError`` (the peer is gone);
* EOF *inside* a frame raises :class:`TornFrame` (the peer died
  mid-write — same event, but worth distinguishing in a journal);
* on the parent side, :class:`RpcChannel` converts all of those into
  :class:`RpcClosed` for in-flight requests, and bounds every request
  with a caller-supplied deadline (:class:`RpcTimeout`), which is how
  the supervisor's RPC progress deadline is enforced.
"""

from __future__ import annotations

import asyncio
import json
import select
import struct

_LEN = struct.Struct("<I")

#: Upper bound on one frame's JSON payload.  Large enough for a full
#: event page (500 events × a few hundred bytes), small enough that a
#: desynced or hostile peer cannot make the reader buffer gigabytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class FrameError(RuntimeError):
    """Base class for framing violations (torn or oversized frames)."""


class TornFrame(FrameError):
    """EOF landed inside a frame: the peer died mid-write."""


class FrameTooLarge(FrameError):
    """A frame declared a length beyond :data:`MAX_FRAME_BYTES`."""


class RpcError(RuntimeError):
    """The worker executed the request and reported an error."""


class RpcClosed(RuntimeError):
    """The worker's pipe closed (death, kill, or clean exit)."""


class RpcTimeout(RuntimeError):
    """No reply within the caller's deadline: the worker is hung."""


# --------------------------------------------------------------- encoding


def encode_frame(obj) -> bytes:
    """Serialize one message to its wire form (length prefix + JSON)."""
    payload = json.dumps(obj, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(payload)) + payload


def decode_payload(payload: bytes):
    return json.loads(payload.decode("utf-8"))


# -------------------------------------------------- sync side (the worker)


def write_frame(fh, obj) -> None:
    """Write one frame to a binary stream and flush it."""
    fh.write(encode_frame(obj))
    fh.flush()


def _read_exact(fh, n: int, *, header: bool) -> bytes:
    """Read exactly ``n`` bytes; EOFError at a boundary, TornFrame inside."""
    chunks = bytearray()
    while len(chunks) < n:
        chunk = fh.read(n - len(chunks))
        if not chunk:
            if not chunks and header:
                raise EOFError("peer closed the pipe")
            raise TornFrame(
                f"EOF after {len(chunks)} of {n} frame bytes"
            )
        chunks += chunk
    return bytes(chunks)


def read_frame(fh):
    """Blocking read of one frame from a binary stream."""
    head = _read_exact(fh, _LEN.size, header=True)
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"peer declared a {length}-byte frame (max {MAX_FRAME_BYTES})"
        )
    return decode_payload(_read_exact(fh, length, header=False))


def poll_frame(fh, timeout: float):
    """Read one frame if bytes are ready within ``timeout`` seconds.

    Returns ``None`` on timeout.  The worker's main loop calls this
    between batches: 0.0 while arrivals are pending (drain the command
    queue without stalling the pipeline), ``poll_interval`` when idle.
    Once ``select`` reports readability the frame is completed with
    blocking reads — the parent writes whole frames at once, so any
    residual wait is bounded by one pipe write.
    """
    ready, _, _ = select.select([fh], [], [], max(0.0, timeout))
    if not ready:
        return None
    return read_frame(fh)


# ------------------------------------------------- async side (the parent)


async def read_frame_async(reader: asyncio.StreamReader):
    """Async read of one frame; same failure surface as :func:`read_frame`."""
    try:
        head = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("peer closed the pipe") from None
        raise TornFrame(
            f"EOF after {len(exc.partial)} of {_LEN.size} header bytes"
        ) from None
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"peer declared a {length}-byte frame (max {MAX_FRAME_BYTES})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TornFrame(
            f"EOF after {len(exc.partial)} of {length} frame bytes"
        ) from None
    return decode_payload(payload)


class RpcChannel:
    """Parent-side request/response multiplexer over a worker's pipes.

    One background task reads frames continuously (so the worker's
    stdout pipe can never fill and block it): responses resolve the
    pending future matched by ``id`` — in whatever order they arrive —
    and notifications land in :attr:`notes` for the supervision loop.

    When the pipe closes (worker death, SIGKILL, clean exit) every
    in-flight and future request fails with :class:`RpcClosed`, and a
    ``{"kind": "closed"}`` sentinel is queued so a loop blocked on
    :attr:`notes` wakes immediately.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 1
        self._closed: str | None = None
        self.notes: asyncio.Queue = asyncio.Queue()
        self._read_task = asyncio.ensure_future(self._read_loop())

    @property
    def closed(self) -> bool:
        return self._closed is not None

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame_async(self._reader)
                if not isinstance(frame, dict):
                    raise FrameError(f"non-object frame: {frame!r}")
                if frame.get("id"):
                    future = self._pending.pop(frame["id"], None)
                    if future is not None and not future.done():
                        future.set_result(frame)
                    continue  # stale reply (request already timed out)
                await self.notes.put(frame)
        except (EOFError, FrameError, OSError) as exc:
            self._shutdown(f"{type(exc).__name__}: {exc}")
        except asyncio.CancelledError:
            self._shutdown("channel closed")
            raise

    def _shutdown(self, reason: str) -> None:
        if self._closed is not None:
            return
        self._closed = reason
        for future in self._pending.values():
            if not future.done():
                future.set_exception(RpcClosed(reason))
        self._pending.clear()
        self.notes.put_nowait({"kind": "closed", "reason": reason})

    def send(self, obj) -> None:
        """Fire-and-forget frame to the worker (used for ``init``)."""
        if self._closed is not None:
            raise RpcClosed(self._closed)
        self._writer.write(encode_frame(obj))

    async def request(self, cmd: str, args: dict | None = None, *,
                      timeout: float):
        """One round trip; raises RpcError / RpcClosed / RpcTimeout."""
        if self._closed is not None:
            raise RpcClosed(self._closed)
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            encode_frame(
                {"id": request_id, "cmd": cmd, "args": args or {}}
            )
        )
        try:
            await self._writer.drain()
            reply = await asyncio.wait_for(future, timeout=timeout)
        except asyncio.TimeoutError:
            raise RpcTimeout(
                f"no reply to {cmd!r} within {timeout}s"
            ) from None
        except ConnectionError as exc:
            raise RpcClosed(str(exc)) from None
        finally:
            self._pending.pop(request_id, None)
        if not reply.get("ok"):
            raise RpcError(reply.get("error", "worker error"))
        return reply.get("result")

    async def next_note(self, timeout: float):
        """Next notification, or ``None`` after ``timeout`` seconds."""
        try:
            return await asyncio.wait_for(self.notes.get(), timeout=timeout)
        except asyncio.TimeoutError:
            return None

    async def close(self) -> None:
        """Stop reading and release the pipes (does not touch the process)."""
        self._read_task.cancel()
        try:
            await self._read_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
        except Exception:
            pass


__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameTooLarge",
    "RpcChannel",
    "RpcClosed",
    "RpcError",
    "RpcTimeout",
    "TornFrame",
    "encode_frame",
    "poll_frame",
    "read_frame",
    "read_frame_async",
    "write_frame",
]
