"""Per-tenant pipeline runtime for the serve daemon (DESIGN.md §13).

A *tenant* is one independent network digested by one
:class:`~repro.core.stream.DigestStream` behind one
:class:`~repro.syslog.ingest.MultiSourceIngest`, with its own
checkpoint, quarantine, event journal, and (optionally) its own
:class:`~repro.core.modelstore.KnowledgeStore`.  Many tenants share one
daemon process; nothing is shared between them but the event loop.

:class:`TenantSpec` is the declarative half — plain data, JSON
round-trippable, what `repro serve --config` reads.  :class:`TenantRuntime`
is the operational half: it owns the start/restore, batch, checkpoint,
drain, and admin (promote/rollback/requeue) operations, all synchronous
— the daemon schedules them; the supervisor decides when.

Crash safety is the checkpoint + event-journal protocol spelled out in
:mod:`repro.serve.journal`: journal fsync *before* checkpoint write;
journal truncate to the checkpoint's ``finalized`` counter on restore;
tail replay skips each source's already-consumed arrivals via
:meth:`~MultiSourceIngest.pushed_counts`.  Because
:func:`~repro.syslog.collector.interleave_arrivals` is a deterministic
greedy merge, re-interleaving the per-source suffixes reproduces the
exact suffix of the uninterrupted arrival order — which is what makes
the kill -9 fingerprint gate hold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.checkpoint import (
    load_resume_state,
    previous_checkpoint_path,
    restore_ingest,
    restore_stream_snapshot,
    write_checkpoint,
)
from repro.core.config import DigestConfig, IngestConfig
from repro.core.knowledge import KnowledgeBase
from repro.core.modelstore import KnowledgeStore
from repro.core.stream import DigestStream
from repro.obs import (
    DURABLE_WRITE_FAILURES,
    SERVE_ARRIVALS,
    SERVE_EVENTS,
    get_registry,
)
from repro.syslog.collector import interleave_arrivals
from repro.syslog.ingest import MultiSourceIngest
from repro.syslog.resilient import (
    Quarantine,
    quarantine_files,
    requeue_records,
)
from repro.syslog.tail import TailSet
from repro.utils.timeutils import parse_ts

from .journal import EventJournal, TransitionJournal

CHECKPOINT_FILE = "checkpoint.ckpt"
EVENTS_FILE = "events.bin"
QUARANTINE_FILE = "quarantine.jsonl"
SUPERVISOR_FILE = "supervisor.jsonl"

PLACEMENTS = ("inline", "process")

#: Every key of :meth:`TenantRuntime.budget_health`, documented — the
#: budget half of the health contract (DESIGN.md §15), same idiom as
#: ``repro.core.stream.HEALTH_KEYS``.  Limits of 0 mean *unbounded*.
BUDGET_HEALTH_KEYS: dict[str, str] = {
    "max_open_messages": "open-message budget (0 = unbounded)",
    "open_messages": "messages admitted but not yet finalized",
    "journal_max_bytes": "event-journal byte budget (0 = unbounded)",
    "journal_bytes": "event-journal bytes on disk + retry buffer",
    "quarantine_max_bytes": "quarantine dump rotation byte budget",
    "quarantine_records": "records currently held in the quarantine",
    "max_stream_procs": "stream-lane worker-process budget (0 = unbounded)",
    "stream_procs": "worker processes the stream lane is running",
    "rpc_deadline_seconds": "parent-side reply deadline for worker RPCs",
    "breached": "budget names breached so far, in breach order",
    "over_budget": "1.0 while any budget stands breached",
}


@dataclass(frozen=True)
class TenantBudget:
    """Per-tenant resource budgets (JSON round-trippable; 0 = unbounded).

    Budgets are checked *deterministically* — after every batch, against
    exact counters, never against wall-clock sampling — so the same
    input always breaches at the same arrival.  A breached tenant is
    degraded into shed mode, not killed: the bulkhead contract is that
    an over-budget tenant loses throughput, never its neighbors'.

    ``max_stream_procs`` is enforced at pipeline start by clamping the
    process stream lane's worker count (output is unchanged — lane
    byte-identity is pinned by ``make check``).  ``rpc_deadline``
    bounds how long the daemon waits for a worker's RPC reply before
    declaring it hung (``placement = "process"`` only).
    """

    max_open_messages: int = 0
    journal_max_bytes: int = 0
    max_stream_procs: int = 0
    rpc_deadline: float = 10.0

    def __post_init__(self) -> None:
        for key in ("max_open_messages", "journal_max_bytes",
                    "max_stream_procs"):
            if getattr(self, key) < 0:
                raise ValueError(f"{key} must be >= 0 (0 = unbounded)")
        if self.rpc_deadline <= 0:
            raise ValueError("rpc_deadline must be > 0")


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant (JSON round-trippable).

    Exactly one of ``kb_path`` (a saved
    :meth:`~repro.mining.knowledge.KnowledgeBase.save` file) or
    ``store_dir`` (a :class:`KnowledgeStore` directory, whose *active*
    version is served and whose versions back promote/rollback) must be
    set.  ``checkpoint_every`` counts *arrivals* between checkpoints —
    a deterministic cadence, unlike wall time.
    """

    name: str
    sources: tuple[str, ...]
    workdir: str
    kb_path: str | None = None
    store_dir: str | None = None
    n_workers: int = 1
    stream_workers: str = "serial"
    checkpoint_every: int = 200
    max_reorder_delay: float = 0.0
    dedup_window: float = 0.0
    degraded_max_open: int = 500
    quarantine_max_bytes: int = 1 << 20
    batch_size: int = 64
    #: Follow sources with byte-offset tail cursors (rotation/truncation
    #: aware, checkpointed).  ``False`` falls back to whole-file re-read
    #: refills — the pre-tailing behavior.
    tail: bool = True
    #: Where this tenant's pipeline runs: ``"inline"`` on the daemon's
    #: own event loop (the pre-placement behavior), or ``"process"`` in
    #: a supervised worker process of its own behind framed-pipe RPC —
    #: the bulkhead that keeps one tenant's crash, hang, or poison
    #: batch away from its neighbors (DESIGN.md §15).  Clean runs are
    #: fingerprint-byte-identical between the two.
    placement: str = "inline"
    #: Per-tenant resource budgets; breaches degrade, never kill.
    budget: TenantBudget = field(default_factory=TenantBudget)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"invalid tenant name {self.name!r}")
        if not self.sources:
            raise ValueError(f"tenant {self.name}: needs >= 1 source")
        if (self.kb_path is None) == (self.store_dir is None):
            raise ValueError(
                f"tenant {self.name}: set exactly one of kb_path / "
                "store_dir"
            )
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"tenant {self.name}: placement must be one of "
                f"{PLACEMENTS}, not {self.placement!r}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        data = dict(data)
        data["sources"] = tuple(data["sources"])
        if isinstance(data.get("budget"), dict):
            data["budget"] = TenantBudget(**data["budget"])
        return cls(**data)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["sources"] = list(self.sources)
        return data


def stamp_lines(path: str | Path) -> list[tuple[float, str]]:
    """Read one source log into ``(timestamp, line)`` pairs.

    Same contract as the CLI's feed reader: blank lines are skipped
    (they would not count as arrivals downstream either), unparseable
    lines ride at the last readable timestamp so they reach the ingest
    — and its breakers — in position instead of vanishing.
    """
    stamped: list[tuple[float, str]] = []
    last_ts = 0.0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if not line.strip():
                continue
            try:
                last_ts = parse_ts(line[:19])
            except ValueError:
                pass
            stamped.append((last_ts, line.rstrip("\n")))
    return stamped


@dataclass
class TenantRuntime:
    """The live pipeline for one tenant, restartable from checkpoint."""

    spec: TenantSpec
    stream: DigestStream | None = None
    ingest: MultiSourceIngest | None = None
    quarantine: Quarantine | None = None
    events: EventJournal | None = None
    transitions: TransitionJournal | None = None
    store: KnowledgeStore | None = None
    tails: TailSet | None = None
    degraded: bool = False
    #: A durable write (checkpoint / journal sync / quarantine dump)
    #: failed and is being retried; cleared when one lands again.
    durable_degraded: bool = False
    resumed: bool = False
    n_batches: int = 0
    #: Budget names breached this life, in breach order (deduplicated).
    budget_breached: list = field(default_factory=list)
    #: Test seam: called as ``hook(n_arrivals_this_life, degraded)``
    #: before each arrival is pushed (``netsim.faults.PumpPoison``).
    fault_hook: object = None
    _arrivals: deque = field(default_factory=deque)
    _since_checkpoint: int = 0
    _arrivals_life: int = 0
    _effective_workers: int = 0

    # ------------------------------------------------------------ paths

    @property
    def workdir(self) -> Path:
        return Path(self.spec.workdir)

    @property
    def checkpoint_path(self) -> Path:
        return self.workdir / CHECKPOINT_FILE

    @property
    def events_path(self) -> Path:
        return self.workdir / EVENTS_FILE

    @property
    def quarantine_path(self) -> Path:
        return self.workdir / QUARANTINE_FILE

    @property
    def supervisor_path(self) -> Path:
        return self.workdir / SUPERVISOR_FILE

    # ------------------------------------------------------------ start

    def start(self, *, degraded: bool = False) -> None:
        """Boot the pipeline: restore from checkpoint if one exists.

        ``degraded`` restarts in shed mode: the stream restores from its
        unmodified checkpoint, then gets a tight open-message bound
        (:meth:`DigestStream.set_shedding`) plus the matching ingest
        admission limits — deterministic load shedding instead of the
        crash loop.
        """
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.degraded = degraded
        self.budget_breached = []
        self._arrivals_life = 0
        self.quarantine = Quarantine()
        self.transitions = TransitionJournal(self.supervisor_path)
        if self.events is not None:
            self.events.close()
        self.events = EventJournal(self.events_path)

        has_checkpoint = (
            self.checkpoint_path.exists()
            or previous_checkpoint_path(self.checkpoint_path).exists()
        )
        if has_checkpoint:
            self._restore()
        else:
            self._fresh()
        self._config()  # records _effective_workers on the restore path too
        if self._effective_workers < self.spec.n_workers:
            self._journal_entry(
                kind="budget-clamped",
                budget="max_stream_procs",
                requested=self.spec.n_workers,
                effective=self._effective_workers,
            )
        if degraded:
            # Shedding is applied post-construction/restore: it is a
            # runtime bound, not a grouping parameter, so the unmodified
            # checkpoint still restores (see DigestStream.set_shedding).
            # Restored state over the bound is shed right here — those
            # events are real output and belong in the journal.
            self._apply_shedding(self.shed_bound())
        self.refill()

    def _apply_shedding(self, bound: int) -> None:
        """Put the live pipeline into shed mode at ``bound`` open messages."""
        shed_cfg = self._config().with_shedding(bound)
        shed_events = self.stream.set_shedding(bound)
        if shed_events:
            self.events.append(shed_events)
        self.ingest.set_admission(
            self._ingest_config().for_stream(shed_cfg)
        )

    def shed_bound(self) -> int:
        """The open-message bound shed mode enforces for this tenant.

        The spec's ``degraded_max_open``, tightened to the open-message
        budget when one is set — so a budget-degraded tenant can never
        shed *to* a level that still breaches the budget that degraded it.
        """
        bound = self.spec.degraded_max_open
        if self.spec.budget.max_open_messages:
            bound = min(bound, self.spec.budget.max_open_messages)
        return bound

    def _config(self) -> DigestConfig:
        n_workers = self.spec.n_workers
        limit = self.spec.budget.max_stream_procs
        if (limit and self.spec.stream_workers == "processes"
                and n_workers > limit):
            # Budget clamp, enforced at construction: the process lane
            # never spawns more workers than the budget allows.  Output
            # is unchanged — lane byte-identity is pinned by make check.
            n_workers = limit
        self._effective_workers = n_workers
        return DigestConfig(
            n_workers=n_workers,
            stream_workers=self.spec.stream_workers,
        )

    def _ingest_config(self) -> IngestConfig:
        return IngestConfig(
            max_reorder_delay=self.spec.max_reorder_delay,
            dedup_window=self.spec.dedup_window,
        )

    def _load_kb(self) -> tuple[KnowledgeBase, int | str | None]:
        if self.spec.store_dir is not None:
            self.store = KnowledgeStore(self.spec.store_dir)
            kb, info = self.store.load_active()
            return kb, info.version
        kb = KnowledgeBase.load(self.spec.kb_path)
        return kb, None

    def _fresh(self) -> None:
        kb, version = self._load_kb()
        self.stream = DigestStream(kb, self._config(), kb_version=version)
        self.stream.attach_quarantine(self.quarantine)
        self.ingest = MultiSourceIngest(
            self.stream, self._ingest_config(), quarantine=self.quarantine
        )
        for source in self.spec.sources:
            self.ingest.register(source)
        if self.spec.tail:
            self.tails = TailSet(self.spec.sources)
            self.ingest.attach_tails(self.tails)
        self.events.truncate(0)
        self.resumed = False

    def _restore(self) -> None:
        snapshot, used_path, fallback_error = load_resume_state(
            self.checkpoint_path
        )
        if self.spec.store_dir is not None:
            self.store = KnowledgeStore(self.spec.store_dir)
            self.stream = restore_stream_snapshot(
                snapshot, store=self.store
            )
        else:
            self.stream = restore_stream_snapshot(
                snapshot, kb=KnowledgeBase.load(self.spec.kb_path)
            )
        if fallback_error is not None:
            # Corrupt newest generation; restored from .prev.  Loud by
            # contract: the operator must learn the disk tore a write.
            self._journal_entry(
                kind="checkpoint-fallback",
                used=str(used_path),
                error=str(fallback_error),
            )
        self.stream.attach_quarantine(self.quarantine)
        self.ingest = restore_ingest(self.stream, self.quarantine)
        self._restore_tails()
        # Resume consistency: cut the journal back to exactly what the
        # checkpoint accounts for — everything past it re-emerges from
        # the tail replay (see repro.serve.journal).
        finalized = int(self.stream.health()["finalized_events"])
        self.events.truncate(finalized)
        self.resumed = True

    def _restore_tails(self) -> None:
        """Rebuild tail cursors from the checkpoint's ingest payload.

        A checkpoint written by a pre-tailing run (no cursor state, yet
        sources already partially consumed) cannot be tailed safely —
        byte offsets for the consumed prefixes were never recorded — so
        the runtime falls back to whole-file refills for its lifetime.
        """
        if not self.spec.tail:
            self.tails = None
            return
        state = self.ingest.restored_tail_state()
        if state is None:
            consumed = self.ingest.pushed_counts()
            if any(consumed.get(s, 0) for s in self.spec.sources):
                self.tails = None  # legacy checkpoint: refill re-reads
                return
            self.tails = TailSet(self.spec.sources)
        else:
            self.tails = TailSet.from_snapshot(
                state, sources=self.spec.sources
            )
        self.ingest.attach_tails(self.tails)

    # ------------------------------------------------------------- input

    def refill(self) -> int:
        """(Re)build the pending-arrival queue from the source files.

        Tailing mode (the default): polls every source's byte-offset
        cursor — rotation- and truncation-aware, no re-read of consumed
        bytes — takes the newly stamped lines, interleaves them, and
        *extends* the queue.  By the greedy-merge determinism of
        :func:`interleave_arrivals` (and, for live feeds, a positive
        ``max_reorder_delay``), the pushed sequence digests identically
        to an uninterrupted run.

        Legacy mode (``tail=False``, or a checkpoint with no cursors):
        re-reads every source whole, drops each one's already-consumed
        prefix (``pushed_counts``), and re-interleaves the suffixes.
        Called at start and whenever the daemon finds the queue empty.
        Returns the number of pending arrivals.
        """
        if self.tails is not None:
            self.tails.poll()
            feeds = self.tails.take_new()
            arrivals = interleave_arrivals(
                feeds, key=lambda pair: pair[0]
            )
            self._arrivals.extend(
                (source, line) for source, (_ts, line) in arrivals
            )
            return len(self._arrivals)
        consumed = self.ingest.pushed_counts()
        feeds = {}
        for source in self.spec.sources:
            stamped = stamp_lines(source)
            feeds[source] = stamped[consumed.get(source, 0):]
        arrivals = interleave_arrivals(feeds, key=lambda pair: pair[0])
        self._arrivals = deque(
            (source, line) for source, (_ts, line) in arrivals
        )
        return len(self._arrivals)

    @property
    def pending(self) -> int:
        return len(self._arrivals)

    # ------------------------------------------------------------- batch

    def process_batch(self, limit: int | None = None) -> int:
        """Push up to ``limit`` pending arrivals; returns how many.

        Finalized events are appended to the event journal as they
        emerge; a checkpoint is cut every ``checkpoint_every`` arrivals
        (journal fsync first — the crash-safety ordering invariant).
        """
        limit = self.spec.batch_size if limit is None else limit
        registry = get_registry()
        n = 0
        while self._arrivals and n < limit:
            if self.fault_hook is not None:
                self.fault_hook(self._arrivals_life, self.degraded)
            source, line = self._arrivals.popleft()
            self._arrivals_life += 1
            events = self.ingest.push_line(source, line)
            if self.tails is not None:
                # Commit the tail cursor past this line: offsets in the
                # next checkpoint cover exactly the pushed arrivals.
                self.tails.note_pushed(source)
            if events:
                self.events.append(events)
                registry.inc(
                    SERVE_EVENTS, len(events), tenant=self.spec.name
                )
            n += 1
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.spec.checkpoint_every:
                self.checkpoint()
        if n:
            registry.inc(SERVE_ARRIVALS, n, tenant=self.spec.name)
            self.n_batches += 1
            self.check_budgets()
        return n

    def check_budgets(self) -> list[str]:
        """Deterministic post-batch budget check; returns *new* breaches.

        Budgets compare exact counters — open messages in the stream,
        journal bytes on disk plus the retry buffer — never wall-clock
        samples, so the same input always breaches at the same arrival.
        A breach degrades the tenant into shed mode (bulkhead contract:
        an over-budget tenant loses throughput, never its life); each
        budget name is journaled once, in breach order.
        """
        budget = self.spec.budget
        usage = (
            ("max_open_messages", budget.max_open_messages,
             self.stream.n_open_messages),
            ("journal_max_bytes", budget.journal_max_bytes,
             self.events.size_bytes),
        )
        fresh = [
            name for name, limit, used in usage
            if limit and used > limit and name not in self.budget_breached
        ]
        if not fresh:
            return []
        for name in fresh:
            self.budget_breached.append(name)
            self._journal_entry(kind="budget-breach", budget=name)
        if not self.degraded:
            self.degraded = True
            self._apply_shedding(self.shed_bound())
        return fresh

    def checkpoint(self) -> None:
        """Journal-then-checkpoint, in that order (crash-safety).

        Disk faults degrade instead of crashing: a failed journal fsync
        *skips* the checkpoint (a checkpoint must never record events
        the journal does not durably hold), a failed checkpoint write
        keeps the previous generation; either way the failure is
        journaled, :attr:`durable_degraded` raises the health flag, and
        the next cadence retries.  Progress is never lost — unflushed
        events wait in the journal's retry buffer and unreflected
        arrivals simply replay from the older checkpoint.
        """
        try:
            self.events.sync()
            write_checkpoint(self.checkpoint_path, self.stream)
        except OSError as exc:
            self._note_durable_failure("checkpoint", exc)
            self._since_checkpoint = 0  # retry at the next cadence
            return
        self._since_checkpoint = 0
        if self.durable_degraded:
            self.durable_degraded = False
            self._journal_entry(kind="durable-write-recovered")

    def _note_durable_failure(self, what: str, exc: OSError) -> None:
        """Degrade on a failed durable write: flag, journal, count."""
        self.durable_degraded = True
        registry = get_registry()
        if registry.enabled:
            registry.inc(
                DURABLE_WRITE_FAILURES, tenant=self.spec.name, what=what
            )
        self._journal_entry(
            kind="durable-write-failed", what=what, error=str(exc)
        )

    def _journal_entry(self, **entry) -> None:
        """Best-effort transition-journal append (the disk may be full)."""
        entry.setdefault("tenant", self.spec.name)
        try:
            self.transitions.append(entry)
        except OSError:
            pass

    # ------------------------------------------------------------- drain

    def drain(self) -> int:
        """Graceful shutdown: flush, finalize, checkpoint, dump, stop.

        Stops intake (pending arrivals stay in the files for the next
        boot), flushes the reorder buffer and finalizes every open group
        (:meth:`MultiSourceIngest.close`), journals the tail, writes a
        final checkpoint, dumps the quarantine under the rotation byte
        budget, and shuts the executor lane down.  Returns the number of
        events finalized by the flush.
        """
        self._arrivals.clear()
        tail = self.ingest.close()
        if tail:
            self.events.append(tail)
            get_registry().inc(
                SERVE_EVENTS, len(tail), tenant=self.spec.name
            )
        self.checkpoint()
        if len(self.quarantine):
            try:
                self.quarantine.dump(
                    self.quarantine_path,
                    max_bytes=self.spec.quarantine_max_bytes,
                )
            except OSError as exc:
                # Queue survives in memory (dump never drops it on
                # failure); the next drain or requeue retries.
                self._note_durable_failure("quarantine-dump", exc)
        self.stream.shutdown_workers()
        return len(tail)

    def halt(self) -> None:
        """Tear the pipeline down *without* draining (supervisor restart).

        Un-checkpointed progress is deliberately discarded — the next
        :meth:`start` restores from the last checkpoint exactly as a
        post-crash boot would, so a supervisor restart exercises the
        same recovery path the kill -9 gate pins.
        """
        self._arrivals.clear()
        if self.stream is not None:
            self.stream.shutdown_workers()

    # ------------------------------------------------------------- admin

    def promote(self) -> dict:
        """Hot-swap to the store's *current* active version."""
        if self.store is None:
            raise ValueError(
                f"tenant {self.spec.name} is not store-backed; "
                "promote/rollback need store_dir"
            )
        version = self.store.active_version()
        if version == self.stream.kb_version:
            return {"swapped": False, "version": version}
        kb = self.store.load(version)
        events = self.stream.request_swap(kb, version)
        if events:
            self.events.append(events)
        return {
            "swapped": True,
            "version": version,
            "pending": self.stream.swap_pending,
        }

    def rollback(self, to: int | None = None) -> dict:
        """Roll the store back, then hot-swap to the restored version."""
        if self.store is None:
            raise ValueError(
                f"tenant {self.spec.name} is not store-backed; "
                "promote/rollback need store_dir"
            )
        info = self.store.rollback(to=to)
        result = self.promote()
        result["rolled_back_to"] = info.version
        return result

    def requeue(self) -> dict:
        """Replay the quarantine (in-memory + rotated dumps) into the stream.

        In-memory records are dumped first (under the rotation budget)
        so the replay covers both; files consumed by a fully successful
        replay are deleted so a later requeue cannot double-push them.
        """
        if len(self.quarantine):
            self.quarantine.dump(
                self.quarantine_path,
                max_bytes=self.spec.quarantine_max_bytes,
            )
            self.quarantine.drain()
        if not self.quarantine_path.exists():
            return {"events": 0, "requeued": 0, "failed": 0}
        parts = [p for p in quarantine_files(self.quarantine_path) if p.exists()]
        events, n_ok, n_failed = requeue_records(
            self.quarantine_path, self.stream, self.quarantine
        )
        if events:
            self.events.append(events)
        for part in parts:
            part.unlink(missing_ok=True)
        return {"events": len(events), "requeued": n_ok, "failed": n_failed}

    # ------------------------------------------------------------- health

    def budget_health(self) -> dict:
        """Budget usage vs. limits — exactly :data:`BUDGET_HEALTH_KEYS`."""
        budget = self.spec.budget
        procs = (
            self._effective_workers
            if self.stream.stream_lane == "processes" else 0
        )
        return {
            "max_open_messages": budget.max_open_messages,
            "open_messages": self.stream.n_open_messages,
            "journal_max_bytes": budget.journal_max_bytes,
            "journal_bytes": self.events.size_bytes,
            "quarantine_max_bytes": self.spec.quarantine_max_bytes,
            "quarantine_records": len(self.quarantine),
            "max_stream_procs": budget.max_stream_procs,
            "stream_procs": procs,
            "rpc_deadline_seconds": budget.rpc_deadline,
            "breached": list(self.budget_breached),
            "over_budget": 1.0 if self.budget_breached else 0.0,
        }

    def health(self) -> dict:
        """Everything an operator asks a tenant, JSON-serializable."""
        return {
            "tenant": self.spec.name,
            "placement": self.spec.placement,
            "degraded": self.degraded,
            "durable_degraded": self.durable_degraded,
            "resumed": self.resumed,
            "tailing": self.tails is not None,
            "pending_arrivals": len(self._arrivals),
            "events_journaled": len(self.events),
            "n_batches": self.n_batches,
            "kb_version": self.stream.kb_version,
            "stream_lane": self.stream.stream_lane,
            "stream": self.stream.health(),
            "ingest": self.ingest.health(),
            "sources": self.ingest.source_summaries(),
            "budgets": self.budget_health(),
        }
