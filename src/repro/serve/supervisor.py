"""Per-tenant supervision state machine (DESIGN.md §13).

The daemon wraps every tenant pipeline in a :class:`Supervisor` that
owns exactly one question: *given what just happened to the pipeline,
what should the runtime do next?*  The answer is a :class:`Decision`
(restart after a delay, degrade, drain, fail) computed synchronously —
no asyncio, no I/O beyond the transition journal — so every transition
in the state machine is unit-testable without booting a daemon.

States::

    starting ──► healthy ──► restarting ──► healthy        (recovered)
                    │            │
                    │            └────────► degraded        (restarts exhausted;
                    │                          │             shed-mode restart)
                    └──────────────────────────┴──► drained (graceful shutdown)

* **healthy** — the pipeline task is alive and making batch progress.
* **restarting** — the task died (exception) or got stuck (no progress
  before the deadline while input was pending); the runtime restarts it
  from the latest checkpoint after a bounded exponential backoff taken
  from :class:`repro.syslog.resilient.RetryPolicy` — the same
  deterministic schedule flaky sources get.
* **degraded** — ``max_restarts`` consecutive failures; the tenant is
  restarted once more in shed mode (tight ``max_open_messages`` bound
  with the existing ``shed_policy``/admission control) and left running
  so it keeps serving health and whatever events it can still digest.
* **drained** — terminal: intake stopped, reorder buffers flushed,
  final checkpoint written.  Reached only via graceful shutdown.
* **failed** — terminal: the pipeline died even in degraded mode.

A batch that makes progress resets the consecutive-failure counter, so
only an *unbroken* run of failures escalates.  Every transition is
journaled (JSONL) and mirrored to the metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import (
    SERVE_RESTARTS,
    SERVE_TENANT_STATE,
    SERVE_TRANSITIONS,
    get_registry,
)
from repro.syslog.resilient import RetryPolicy

from .journal import TransitionJournal

STATES = ("starting", "healthy", "restarting", "degraded", "drained", "failed")

# Gauge encoding for SERVE_TENANT_STATE, same idiom as BREAKER_STATE.
STATE_INDEX = {state: i for i, state in enumerate(STATES)}


@dataclass(frozen=True)
class Decision:
    """What the runtime should do about a pipeline failure."""

    action: str  # "restart" | "degrade" | "fail"
    delay: float  # backoff seconds before acting
    restarts: int  # consecutive failures so far


class Supervisor:
    """Decision core + transition journal for one tenant pipeline.

    ``policy`` bounds the restart storm: ``max_restarts`` consecutive
    failures are retried with ``RetryPolicy(max_restarts, base_delay)``
    backoff, then the tenant escalates to degraded mode.  The *last*
    backoff delay repeats if the policy yields fewer delays than
    failures (``RetryPolicy.delays`` respects its own timeout cap).

    ``progress_deadline`` is the stuck-detector: if the pipeline has
    pending input but has not completed a batch within that many
    seconds (caller's clock), :meth:`stuck` fires.  The deadline only
    applies while input is pending — an idle tenant at EOF is not stuck.
    """

    def __init__(
        self,
        tenant: str,
        *,
        max_restarts: int = 3,
        base_delay: float = 0.1,
        progress_deadline: float = 30.0,
        journal: TransitionJournal | None = None,
        clock=None,
    ) -> None:
        if max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if progress_deadline <= 0:
            raise ValueError("progress_deadline must be > 0")
        self.tenant = tenant
        self.max_restarts = max_restarts
        self.progress_deadline = progress_deadline
        self._delays = list(
            RetryPolicy(max_retries=max_restarts, base_delay=base_delay).delays()
        ) or [base_delay]
        self._journal = journal
        self._clock = clock
        self.state = "starting"
        self.restarts = 0  # consecutive failures since last progress
        self.total_restarts = 0
        self._last_progress: float | None = None
        self._set_state_gauge()

    # ------------------------------------------------------------------
    # event inputs

    def note_started(self) -> None:
        """The pipeline task is up and consuming."""
        self._transition("healthy", reason="started")
        self._last_progress = self._now()

    def note_progress(self) -> None:
        """A batch completed — the pipeline is demonstrably alive."""
        self.restarts = 0
        self._last_progress = self._now()
        if self.state == "restarting":
            self._transition("healthy", reason="recovered")

    def on_failure(self, reason: str) -> Decision:
        """The pipeline died or was declared stuck; decide what's next.

        Returns the decision *and* performs the state transition +
        journal write.  The runtime is responsible for actually
        sleeping ``delay`` and restarting/degrading.
        """
        self.restarts += 1
        self.total_restarts += 1
        get_registry().inc(SERVE_RESTARTS, tenant=self.tenant)
        if self.state == "degraded":
            # Even shed mode could not keep the pipeline alive.
            self._transition("failed", reason=reason)
            return Decision("fail", 0.0, self.restarts)
        if self.restarts > self.max_restarts:
            self._transition("degraded", reason=reason)
            return Decision("degrade", self._delay_for(self.restarts), self.restarts)
        self._transition("restarting", reason=reason)
        return Decision("restart", self._delay_for(self.restarts), self.restarts)

    def note_degraded_started(self) -> None:
        """The shed-mode pipeline is up; stay degraded but reset the run."""
        self.restarts = 0
        self._last_progress = self._now()

    def note_budget_degraded(self, budgets: list[str]) -> None:
        """The tenant breached a resource budget and shed in place.

        A budget breach is *not* a failure: the pipeline stays up (shed
        mode was applied live, no restart happened), so the consecutive-
        failure counter is untouched — but the supervisor state moves to
        ``degraded`` so the arc, journal, and state gauge tell the truth.
        """
        if self.state in ("degraded", "drained", "failed"):
            return
        self._transition(
            "degraded", reason="budget: " + ", ".join(budgets)
        )

    def note_drained(self) -> None:
        """Graceful shutdown completed: terminal state."""
        self._transition("drained", reason="graceful shutdown")

    def stuck(self, now: float | None = None, *, pending: bool) -> bool:
        """True if pending input has seen no progress past the deadline."""
        if not pending or self.state not in ("healthy", "restarting", "degraded"):
            return False
        if self._last_progress is None:
            return False
        now = self._now() if now is None else now
        return (now - self._last_progress) > self.progress_deadline

    # ------------------------------------------------------------------
    # internals

    def _delay_for(self, failure: int) -> float:
        return self._delays[min(failure - 1, len(self._delays) - 1)]

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        import time

        return time.monotonic()

    def _transition(self, to: str, *, reason: str) -> None:
        if to not in STATES:
            raise ValueError(f"unknown state {to!r}")
        entry = {
            "tenant": self.tenant,
            "from": self.state,
            "to": to,
            "reason": reason,
            "restarts": self.restarts,
            "total_restarts": self.total_restarts,
        }
        self.state = to
        if self._journal is not None:
            self._journal.append(entry)
        get_registry().inc(SERVE_TRANSITIONS, tenant=self.tenant, to=to)
        self._set_state_gauge()

    def _set_state_gauge(self) -> None:
        get_registry().set_gauge(
            SERVE_TENANT_STATE,
            STATE_INDEX[self.state],
            tenant=self.tenant,
        )
