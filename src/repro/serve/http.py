"""Stdlib-only HTTP API for the serve daemon (DESIGN.md §13).

A deliberately small HTTP/1.0 server on raw asyncio streams — no
framework, no threads, one read per request, connection closed after
the response.  Handlers run on the event loop between tenant batches,
so every admin mutation (promote/rollback/requeue) is serialized with
pipeline work by construction; nothing here needs a lock.

Endpoints (all JSON unless noted):

    GET  /healthz                       liveness + per-tenant states
    GET  /metrics                       Prometheus text format
    GET  /tenants                       tenant list with state summary
    GET  /tenants/{t}/health            stream + ingest health dicts
    GET  /tenants/{t}/events            cursor-paginated finalized events
    GET  /tenants/{t}/sources           per-source breaker/watermark/tail rows
    GET  /tenants/{t}/journal           supervisor + breaker transitions
    POST /tenants/{t}/promote           hot-swap to store's active version
    POST /tenants/{t}/rollback[?to=N]   store rollback + hot-swap
    POST /tenants/{t}/requeue           replay quarantine into the stream
    POST /drain                         graceful shutdown (same as SIGTERM)
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from repro.obs import SERVE_HTTP_REQUESTS, get_registry, to_prom_text

MAX_EVENTS_PAGE = 500


def event_payload(event, index: int) -> dict:
    """One finalized event as a JSON-safe dict (cursor = journal index)."""
    return {
        "cursor": index,
        "label": event.label,
        "score": event.score,
        "start_ts": event.start_ts,
        "end_ts": event.end_ts,
        "n_messages": event.n_messages,
        "routers": sorted(event.routers),
        "error_codes": sorted(event.error_codes),
        "template_keys": sorted(event.template_keys),
        "locations": [loc.key() for loc in event.location_summary()],
    }


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class HttpApi:
    """Routes requests onto a running :class:`~repro.serve.daemon.ServeDaemon`."""

    def __init__(self, daemon) -> None:
        self._daemon = daemon
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # ------------------------------------------------------------ server

    async def start(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            writer.close()
            return
        status, body, content_type = self._dispatch(request)
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {_STATUS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + payload)
        try:
            await writer.drain()
        finally:
            writer.close()

    # ---------------------------------------------------------- dispatch

    def _dispatch(self, raw: bytes) -> tuple[int, str, str]:
        """Full request -> (status, body, content-type), never raises."""
        try:
            line = raw.split(b"\r\n", 1)[0].decode("latin-1")
            parts = line.split(" ")
            if len(parts) < 2:
                raise HttpError(400, "malformed request line")
            method, target = parts[0], parts[1]
            split = urlsplit(target)
            path = [p for p in split.path.split("/") if p]
            query = {
                key: values[-1]
                for key, values in parse_qs(split.query).items()
            }
            get_registry().inc(SERVE_HTTP_REQUESTS, path=split.path)
            if method not in ("GET", "POST"):
                raise HttpError(405, f"method {method} not allowed")
            body = self._route(method, path, query)
        except HttpError as exc:
            return (
                exc.status,
                json.dumps({"error": exc.message}) + "\n",
                "application/json",
            )
        except Exception as exc:  # surface, never kill the daemon
            return (
                500,
                json.dumps({"error": str(exc)}) + "\n",
                "application/json",
            )
        if path == ["metrics"]:
            return 200, body, "text/plain; version=0.0.4"
        return 200, json.dumps(body, sort_keys=True) + "\n", "application/json"

    def _route(self, method: str, path: list[str], query: dict):
        daemon = self._daemon
        if method == "GET":
            if path == ["healthz"]:
                return {
                    "status": "ok",
                    "draining": daemon.draining,
                    "tenants": {
                        name: daemon.supervisors[name].state
                        for name in daemon.tenants
                    },
                }
            if path == ["metrics"]:
                return to_prom_text(get_registry())
            if path == ["tenants"]:
                return [
                    {
                        "name": name,
                        "state": daemon.supervisors[name].state,
                        "restarts": daemon.supervisors[name].total_restarts,
                        "pending_arrivals": runtime.pending,
                        "events": len(runtime.events),
                    }
                    for name, runtime in daemon.tenants.items()
                ]
            if len(path) == 3 and path[0] == "tenants":
                runtime = self._tenant(path[1])
                if path[2] == "health":
                    health = runtime.health()
                    supervisor = daemon.supervisors[path[1]]
                    health["state"] = supervisor.state
                    health["restarts"] = supervisor.total_restarts
                    return health
                if path[2] == "events":
                    return self._events(runtime, query)
                if path[2] == "sources":
                    return runtime.ingest.source_summaries()
                if path[2] == "journal":
                    return {
                        "supervisor": runtime.transitions.read(),
                        "breaker": runtime.ingest.journal(),
                    }
        if method == "POST":
            if path == ["drain"]:
                daemon.request_drain()
                return {"draining": True}
            if len(path) == 3 and path[0] == "tenants":
                runtime = self._tenant(path[1])
                if path[2] == "promote":
                    return runtime.promote()
                if path[2] == "rollback":
                    to = query.get("to")
                    return runtime.rollback(
                        to=int(to) if to is not None else None
                    )
                if path[2] == "requeue":
                    return runtime.requeue()
        raise HttpError(404, f"no route for {method} /{'/'.join(path)}")

    def _tenant(self, name: str):
        runtime = self._daemon.tenants.get(name)
        if runtime is None:
            raise HttpError(404, f"unknown tenant {name!r}")
        return runtime

    def _events(self, runtime, query: dict) -> dict:
        try:
            cursor = int(query.get("cursor", 0))
            limit = int(query.get("limit", 50))
        except ValueError:
            raise HttpError(400, "cursor and limit must be integers")
        if cursor < 0 or limit < 1:
            raise HttpError(400, "cursor must be >= 0 and limit >= 1")
        limit = min(limit, MAX_EVENTS_PAGE)
        events = runtime.events.read(cursor, limit)
        total = len(runtime.events)
        next_cursor = cursor + len(events)
        return {
            "events": [
                event_payload(event, cursor + i)
                for i, event in enumerate(events)
            ],
            "next_cursor": next_cursor if next_cursor < total else None,
            "total": total,
        }
