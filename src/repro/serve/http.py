"""Stdlib-only HTTP API for the serve daemon (DESIGN.md §13, §15).

A deliberately small HTTP/1.0 server on raw asyncio streams — no
framework, no threads, one read per request, connection closed after
the response.  Routes talk to tenants through their placement handle
(:mod:`repro.serve.placement`), so a tenant living in its own worker
process and one living on the daemon's loop answer identically.

Hardening (DESIGN.md §15): a connection gets one read deadline to
deliver its request head (``408`` past it), the head is size-bounded
(``431``), a declared body over budget is refused (``413``), and
long-poll waiters are counted against a daemon-wide bound (``429``).
Every refusal increments ``syslogdigest_http_rejected_total{reason=}``
— a stalled or slowloris client can never wedge the control plane.

Endpoints (all JSON unless noted):

    GET  /healthz                       liveness + per-tenant states
    GET  /metrics                       Prometheus text format
    GET  /tenants                       tenant list with state summary
    GET  /tenants/{t}/health            stream + ingest + budget health
    GET  /tenants/{t}/events            cursor-paginated finalized events;
                                        ?wait=SEC long-polls for new ones
    GET  /tenants/{t}/sources           per-source breaker/watermark/tail rows
    GET  /tenants/{t}/journal           supervisor + breaker transitions
    POST /tenants/{t}/promote           hot-swap to store's active version
    POST /tenants/{t}/rollback[?to=N]   store rollback + hot-swap
    POST /tenants/{t}/requeue           replay quarantine into the stream
    POST /drain                         graceful shutdown (same as SIGTERM)
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from repro.obs import (
    SERVE_HTTP_REJECTED,
    SERVE_HTTP_REQUESTS,
    get_registry,
    to_prom_text,
)

from .rpc import RpcClosed, RpcTimeout

MAX_EVENTS_PAGE = 500


def events_page(journal, cursor: int, limit: int) -> dict:
    """One cursor page of a tenant's event journal, JSON-safe.

    Shared by the inline route and the worker's ``events`` RPC command
    (DESIGN.md §15), so both placements paginate byte-identically.
    """
    limit = min(limit, MAX_EVENTS_PAGE)
    events = journal.read(cursor, limit)
    total = len(journal)
    next_cursor = cursor + len(events)
    return {
        "events": [
            event_payload(event, cursor + i)
            for i, event in enumerate(events)
        ],
        "next_cursor": next_cursor if next_cursor < total else None,
        "total": total,
    }


def event_payload(event, index: int) -> dict:
    """One finalized event as a JSON-safe dict (cursor = journal index)."""
    return {
        "cursor": index,
        "label": event.label,
        "score": event.score,
        "start_ts": event.start_ts,
        "end_ts": event.end_ts,
        "n_messages": event.n_messages,
        "routers": sorted(event.routers),
        "error_codes": sorted(event.error_codes),
        "template_keys": sorted(event.template_keys),
        "locations": [loc.key() for loc in event.location_summary()],
    }


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpApi:
    """Routes requests onto a running :class:`~repro.serve.daemon.ServeDaemon`."""

    def __init__(self, daemon) -> None:
        self._daemon = daemon
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # ------------------------------------------------------------ server

    async def start(self, host: str, port: int) -> None:
        # The stream limit *is* the header-size bound: readuntil raises
        # LimitOverrunError before buffering a byte past it.
        self._server = await asyncio.start_server(
            self._handle,
            host=host,
            port=port,
            limit=self._daemon.config.http_max_header_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer) -> None:
        config = self._daemon.config
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"),
                timeout=config.http_read_deadline,
            )
        except asyncio.TimeoutError:
            # Slowloris guard: the head did not arrive in time.
            await self._respond(
                writer, *self._reject(408, "request read deadline",
                                      "deadline")
            )
            return
        except asyncio.LimitOverrunError:
            await self._respond(
                writer, *self._reject(431, "request head too large",
                                      "headers")
            )
            return
        except asyncio.IncompleteReadError:
            writer.close()  # client hung up mid-request
            return
        if self._body_length(request) > config.http_max_body_bytes:
            await self._respond(
                writer, *self._reject(413, "request body too large",
                                      "body")
            )
            return
        status, body, content_type = await self._dispatch(request)
        await self._respond(writer, status, body, content_type)

    @staticmethod
    def _body_length(raw: bytes) -> int:
        """The declared Content-Length (0 when absent or malformed)."""
        for line in raw.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    return int(value.strip())
                except ValueError:
                    return 0
        return 0

    @staticmethod
    def _reject(status: int, message: str, reason: str):
        """A hardening refusal: counted, typed, JSON like any error."""
        get_registry().inc(SERVE_HTTP_REJECTED, reason=reason)
        body = json.dumps({"error": message}) + "\n"
        return status, body, "application/json"

    @staticmethod
    async def _respond(writer, status: int, body: str,
                       content_type: str) -> None:
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {_STATUS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + payload)
        try:
            await writer.drain()
        finally:
            writer.close()

    # ---------------------------------------------------------- dispatch

    async def _dispatch(self, raw: bytes) -> tuple[int, str, str]:
        """Full request -> (status, body, content-type), never raises."""
        try:
            line = raw.split(b"\r\n", 1)[0].decode("latin-1")
            parts = line.split(" ")
            if len(parts) < 2:
                raise HttpError(400, "malformed request line")
            method, target = parts[0], parts[1]
            split = urlsplit(target)
            path = [p for p in split.path.split("/") if p]
            query = {
                key: values[-1]
                for key, values in parse_qs(split.query).items()
            }
            get_registry().inc(SERVE_HTTP_REQUESTS, path=split.path)
            if method not in ("GET", "POST"):
                raise HttpError(405, f"method {method} not allowed")
            body = await self._route(method, path, query)
        except RpcClosed as exc:
            return (
                503,
                json.dumps({"error": f"tenant worker unavailable: {exc}"})
                + "\n",
                "application/json",
            )
        except RpcTimeout as exc:
            return (
                504,
                json.dumps({"error": f"tenant worker timed out: {exc}"})
                + "\n",
                "application/json",
            )
        except HttpError as exc:
            return (
                exc.status,
                json.dumps({"error": exc.message}) + "\n",
                "application/json",
            )
        except Exception as exc:  # surface, never kill the daemon
            return (
                500,
                json.dumps({"error": str(exc)}) + "\n",
                "application/json",
            )
        if path == ["metrics"]:
            return 200, body, "text/plain; version=0.0.4"
        return 200, json.dumps(body, sort_keys=True) + "\n", "application/json"

    async def _route(self, method: str, path: list[str], query: dict):
        daemon = self._daemon
        if method == "GET":
            if path == ["healthz"]:
                return {
                    "status": "ok",
                    "draining": daemon.draining,
                    "tenants": {
                        name: daemon.supervisors[name].state
                        for name in daemon.tenants
                    },
                }
            if path == ["metrics"]:
                return to_prom_text(get_registry())
            if path == ["tenants"]:
                rows = []
                for name, handle in daemon.handles.items():
                    summary = await handle.summary()
                    rows.append(
                        {
                            "name": name,
                            "placement": handle.placement,
                            "state": daemon.supervisors[name].state,
                            "restarts": (
                                daemon.supervisors[name].total_restarts
                            ),
                            "pending_arrivals": (
                                summary["pending_arrivals"]
                            ),
                            "events": summary["events"],
                        }
                    )
                return rows
            if len(path) == 3 and path[0] == "tenants":
                handle = self._handle_for(path[1])
                if path[2] == "health":
                    health = await handle.health()
                    supervisor = daemon.supervisors[path[1]]
                    health["state"] = supervisor.state
                    health["restarts"] = supervisor.total_restarts
                    return health
                if path[2] == "events":
                    return await self._events(path[1], handle, query)
                if path[2] == "sources":
                    return await handle.sources()
                if path[2] == "journal":
                    return await handle.journal()
        if method == "POST":
            if path == ["drain"]:
                daemon.request_drain()
                return {"draining": True}
            if len(path) == 3 and path[0] == "tenants":
                handle = self._handle_for(path[1])
                if path[2] == "promote":
                    return await handle.promote()
                if path[2] == "rollback":
                    to = query.get("to")
                    return await handle.rollback(
                        to=int(to) if to is not None else None
                    )
                if path[2] == "requeue":
                    return await handle.requeue()
        raise HttpError(404, f"no route for {method} /{'/'.join(path)}")

    def _handle_for(self, name: str):
        handle = self._daemon.handles.get(name)
        if handle is None:
            raise HttpError(404, f"unknown tenant {name!r}")
        return handle

    async def _events(self, name: str, handle, query: dict) -> dict:
        """One events page; ``?wait=SEC`` long-polls for fresh ones.

        A request that finds its cursor at the journal's end parks on a
        wake-on-append future (bounded daemon-wide — past the bound the
        request is refused with 429, counted ``reason="waiters"``) and
        re-reads its page when woken or timed out.  Works identically
        for both placements: the parent owns the waiters, journal
        growth is observed from batch bookkeeping either way.
        """
        daemon = self._daemon
        try:
            cursor = int(query.get("cursor", 0))
            limit = int(query.get("limit", 50))
            wait = float(query.get("wait", 0.0))
        except ValueError:
            raise HttpError(400, "cursor, limit and wait must be numeric")
        if cursor < 0 or limit < 1 or wait < 0:
            raise HttpError(400, "cursor must be >= 0 and limit >= 1")
        limit = min(limit, MAX_EVENTS_PAGE)
        page = await handle.events_page(cursor, limit)
        if wait > 0 and not page["events"] and not daemon.draining:
            future = daemon.register_event_waiter(name)
            if future is None:
                get_registry().inc(SERVE_HTTP_REJECTED, reason="waiters")
                raise HttpError(429, "long-poll waiter budget exhausted")
            try:
                await asyncio.wait_for(
                    future,
                    timeout=min(wait, daemon.config.longpoll_max_wait),
                )
            except asyncio.TimeoutError:
                pass
            finally:
                daemon.unregister_event_waiter(name, future)
            page = await handle.events_page(cursor, limit)
        return page
