"""Bulkhead tenant placement: per-tenant worker processes (DESIGN.md §15).

``placement = "inline"`` runs a tenant's pipeline on the daemon's own
event loop — the pre-placement behavior.  ``placement = "process"``
gives the tenant a supervised OS worker process of its own: the worker
owns the *full* stack (tail → ingest → DigestStream → checkpoint /
journal / quarantine) and talks to the parent daemon over the framed
JSON RPC of :mod:`repro.serve.rpc` on its stdin/stdout.  The parent
keeps only the HTTP control plane and the per-tenant
:class:`~repro.serve.supervisor.Supervisor` — so one tenant's crash,
hang, or poison batch cannot disturb its neighbors, and an N-core box
actually digests N tenants concurrently.

Three pieces live here:

* :func:`worker_main` — the worker side.  Boots a
  :class:`~repro.serve.tenant.TenantRuntime` from the ``init`` frame,
  then loops: serve queued RPC commands (health / sources / events /
  journal / promote / rollback / requeue / ping / drain), process one
  batch, emit ``batch`` / ``budget`` / ``exhausted`` notifications.
  EOF on stdin means the parent is gone; the worker dies immediately
  with crash semantics — un-checkpointed progress is discarded exactly
  as a kill -9 would discard it, which is the recovery path the
  fingerprint gate pins.

* :class:`WorkerClient` — the parent side of one worker's pipes:
  spawn, RPC with the tenant's ``rpc_deadline`` budget, kill, reap.

* :class:`InlineHandle` / :class:`ProcessHandle` — the uniform async
  facade the HTTP layer talks to, so routes never branch on placement.
  A :class:`ProcessHandle` whose worker is gone serves events straight
  from the journal file and health from its last-known snapshot — a
  drained or dead worker does not take its tenant's history with it.

Clean runs are ``stream_fingerprint``-byte-identical between the two
placements: the worker executes the very same :class:`TenantRuntime`
methods the inline pump does, in the same order.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
from pathlib import Path

from .http import events_page
from .journal import EventJournal, TransitionJournal
from .rpc import (
    FrameError,
    RpcChannel,
    RpcClosed,
    RpcError,
    RpcTimeout,
    poll_frame,
    read_frame,
    write_frame,
)
from .tenant import EVENTS_FILE, SUPERVISOR_FILE, TenantRuntime, TenantSpec

#: ``python -m`` target the parent spawns for each process tenant — a
#: dedicated entry module (`repro.serve.worker`) so runpy never
#: re-executes a module the package already imported.
WORKER_MODULE = "repro.serve.worker"


def _src_root() -> str:
    """The import root holding ``repro`` — propagated to workers."""
    return str(Path(__file__).resolve().parents[2])


# ------------------------------------------------------------ worker side


def _execute(runtime: TenantRuntime, cmd: str, args: dict) -> dict:
    """Run one RPC command against the live runtime; never raises."""
    try:
        if cmd == "ping":
            result = {"pong": True}
        elif cmd == "health":
            health = runtime.health()
            health["worker_pid"] = os.getpid()
            result = health
        elif cmd == "sources":
            result = runtime.ingest.source_summaries()
        elif cmd == "journal":
            result = {
                "supervisor": runtime.transitions.read(),
                "breaker": runtime.ingest.journal(),
            }
        elif cmd == "events":
            result = events_page(
                runtime.events,
                int(args.get("cursor", 0)),
                int(args.get("limit", 50)),
            )
        elif cmd == "promote":
            result = runtime.promote()
        elif cmd == "rollback":
            to = args.get("to")
            result = runtime.rollback(to=int(to) if to is not None else None)
        elif cmd == "requeue":
            result = runtime.requeue()
        else:
            return {"ok": False, "error": f"unknown command {cmd!r}"}
    except Exception as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return {"ok": True, "result": result}


def worker_main(in_fh, out_fh) -> int:
    """One tenant worker's whole life; returns the process exit code.

    The first frame on stdin is ``init``: the tenant spec, the degraded
    flag for this life, ``once`` / ``poll_interval``, and any armed
    fault dicts.  Everything after is RPC commands, interleaved with
    batch work — commands are polled with a zero timeout while arrivals
    are pending, so admin calls never stall the pipeline and the
    pipeline never starves admin calls.
    """
    try:
        init = read_frame(in_fh)
    except (EOFError, FrameError):
        return 1
    spec = TenantSpec.from_dict(init["spec"])
    once = bool(init.get("once"))
    poll_interval = float(init.get("poll_interval", 0.2))
    if init.get("fault") is not None:
        from repro.netsim.faults import durable_fault_from_dict
        from repro.utils.fsio import install_fault_hook

        install_fault_hook(durable_fault_from_dict(init["fault"]))
    runtime = TenantRuntime(spec)
    pump_fault = init.get("pump_fault")
    if pump_fault and pump_fault.get("tenant") in (None, spec.name):
        from repro.netsim.faults import pump_fault_from_dict

        runtime.fault_hook = pump_fault_from_dict(pump_fault)
    try:
        runtime.start(degraded=bool(init.get("degraded")))
        write_frame(
            out_fh,
            {
                "id": 0,
                "kind": "started",
                "degraded": runtime.degraded,
                "resumed": runtime.resumed,
                "pid": os.getpid(),
            },
        )
        exhausted = False
        breaches_seen = 0
        while True:
            timeout = 0.0 if runtime.pending else poll_interval
            frame = poll_frame(in_fh, timeout)
            if frame is not None:
                cmd = frame.get("cmd")
                rid = frame.get("id", 0)
                if cmd == "drain":
                    flushed = runtime.drain()
                    write_frame(
                        out_fh,
                        {"id": rid, "ok": True,
                         "result": {"flushed": flushed}},
                    )
                    return 0
                reply = _execute(runtime, cmd, frame.get("args") or {})
                reply["id"] = rid
                write_frame(out_fh, reply)
                continue
            n = runtime.process_batch()
            if n:
                write_frame(
                    out_fh,
                    {
                        "id": 0,
                        "kind": "batch",
                        "n": n,
                        "pending": runtime.pending,
                        "events_total": len(runtime.events),
                        "degraded": runtime.degraded,
                        "budgets": runtime.budget_health(),
                    },
                )
                if len(runtime.budget_breached) > breaches_seen:
                    fresh = runtime.budget_breached[breaches_seen:]
                    breaches_seen = len(runtime.budget_breached)
                    write_frame(
                        out_fh,
                        {"id": 0, "kind": "budget", "breached": fresh},
                    )
            elif runtime.refill() == 0 and once and not exhausted:
                exhausted = True
                write_frame(
                    out_fh,
                    {"id": 0, "kind": "exhausted",
                     "events_total": len(runtime.events)},
                )
    except (EOFError, FrameError):
        # Parent gone (its death closed our stdin): die right here with
        # crash semantics — no drain, no final checkpoint.  The next
        # boot restores from the last checkpoint like any kill -9.
        return 1
    except Exception as exc:  # pipeline death: report, then crash-exit
        try:
            write_frame(
                out_fh,
                {"id": 0, "kind": "fatal",
                 "error": f"{type(exc).__name__}: {exc}"},
            )
        except Exception:
            pass
        return 1


def main() -> int:
    """``python -m repro.serve.placement`` — the worker entry point."""
    # Frames own the real stdout; anything the pipeline prints is
    # repointed at stderr so it can never corrupt the frame stream.
    out_fh = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    in_fh = open(0, "rb", buffering=0, closefd=False)
    # Shutdown is RPC-driven (drain command) or forced (SIGKILL); the
    # signals a terminal fans out to the process group must not race
    # the parent's orderly drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    return worker_main(in_fh, out_fh)


# ------------------------------------------------------------ parent side


class WorkerClient:
    """Parent-side handle on one spawned worker process + its channel."""

    def __init__(self, proc, channel: RpcChannel) -> None:
        self.proc = proc
        self.channel = channel

    @property
    def pid(self) -> int:
        return self.proc.pid

    @property
    def alive(self) -> bool:
        return self.proc.returncode is None and not self.channel.closed

    @classmethod
    async def spawn(cls, init: dict) -> "WorkerClient":
        """Start a worker and hand it its ``init`` frame."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (_src_root(), env.get("PYTHONPATH")) if p
        )
        proc = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            WORKER_MODULE,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )
        channel = RpcChannel(proc.stdout, proc.stdin)
        channel.send(init)
        await proc.stdin.drain()
        return cls(proc, channel)

    async def request(self, cmd: str, args: dict | None = None, *,
                      timeout: float):
        return await self.channel.request(cmd, args, timeout=timeout)

    def kill(self) -> None:
        if self.proc.returncode is None:
            try:
                self.proc.kill()
            except ProcessLookupError:
                pass

    async def reap(self) -> int:
        """Wait the child (no zombies) and release the channel."""
        code = await self.proc.wait()
        await self.channel.close()
        return code


class InlineHandle:
    """Async facade over a tenant running on the daemon's own loop."""

    placement = "inline"

    def __init__(self, runtime: TenantRuntime) -> None:
        self.runtime = runtime

    async def health(self) -> dict:
        health = self.runtime.health()
        health["worker_pid"] = None
        return health

    async def sources(self):
        return self.runtime.ingest.source_summaries()

    async def journal(self) -> dict:
        return {
            "supervisor": self.runtime.transitions.read(),
            "breaker": self.runtime.ingest.journal(),
        }

    async def events_page(self, cursor: int, limit: int) -> dict:
        return events_page(self.runtime.events, cursor, limit)

    async def promote(self) -> dict:
        return self.runtime.promote()

    async def rollback(self, to: int | None) -> dict:
        return self.runtime.rollback(to=to)

    async def requeue(self) -> dict:
        return self.runtime.requeue()

    async def summary(self) -> dict:
        return {
            "pending_arrivals": self.runtime.pending,
            "events": len(self.runtime.events),
        }


class ProcessHandle:
    """Async facade over a tenant living in its own worker process.

    RPCs are bounded by the tenant's ``rpc_deadline`` budget; a timeout
    raises *and* latches :attr:`rpc_timed_out`, which the supervision
    loop reads as "the worker is hung" and escalates.  When no worker
    is attached (death gap, or drained), reads fall back to the files
    the worker left behind — the event journal and transition journal
    are on disk, so history survives its process.
    """

    placement = "process"

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.client: WorkerClient | None = None
        #: Every process ever spawned for this tenant (reap audit).
        self.procs: list = []
        self.last_health: dict = {}
        self.pending = 0
        self.events_total = 0
        self.rpc_timed_out = False

    @property
    def workdir(self) -> Path:
        return Path(self.spec.workdir)

    @property
    def alive(self) -> bool:
        return self.client is not None and self.client.alive

    def attach(self, client: WorkerClient) -> None:
        self.client = client
        self.procs.append(client.proc)
        self.rpc_timed_out = False

    def detach(self) -> None:
        self.client = None

    async def _call(self, cmd: str, args: dict | None = None):
        if not self.alive:
            raise RpcClosed(f"tenant {self.spec.name}: no live worker")
        try:
            return await self.client.request(
                cmd, args, timeout=self.spec.budget.rpc_deadline
            )
        except RpcTimeout:
            self.rpc_timed_out = True
            raise

    async def health(self) -> dict:
        if self.alive:
            try:
                health = await self._call("health")
                self.last_health = health
                return health
            except (RpcClosed, RpcTimeout, RpcError):
                pass
        health = dict(self.last_health)
        health["worker_pid"] = None
        health["stale"] = True
        return health

    async def sources(self):
        if self.alive:
            return await self._call("sources")
        return self.last_health.get("sources", [])

    async def journal(self) -> dict:
        if self.alive:
            return await self._call("journal")
        path = self.workdir / SUPERVISOR_FILE
        supervisor = (
            TransitionJournal(path).read() if path.exists() else []
        )
        return {"supervisor": supervisor, "breaker": []}

    async def events_page(self, cursor: int, limit: int) -> dict:
        if self.alive:
            return await self._call(
                "events", {"cursor": cursor, "limit": limit}
            )
        # Worker gone: serve the journal file it left behind.  Safe —
        # no process is appending while no worker is attached.
        path = self.workdir / EVENTS_FILE
        if not path.exists():
            return {"events": [], "next_cursor": None, "total": 0}
        journal = EventJournal(path)
        try:
            return events_page(journal, cursor, limit)
        finally:
            journal.close()

    async def promote(self) -> dict:
        return await self._call("promote")

    async def rollback(self, to: int | None) -> dict:
        return await self._call("rollback", {"to": to})

    async def requeue(self) -> dict:
        return await self._call("requeue")

    async def summary(self) -> dict:
        return {
            "pending_arrivals": self.pending,
            "events": self.events_total,
        }


if __name__ == "__main__":
    raise SystemExit(main())
