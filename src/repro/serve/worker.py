"""``python -m repro.serve.worker`` — the tenant worker entry point.

A separate module from :mod:`repro.serve.placement` (which the serve
package imports eagerly) so ``runpy`` executes a module that is *not*
already in ``sys.modules`` — no double execution, no RuntimeWarning.
The whole worker lives in :func:`repro.serve.placement.main`.
"""

from repro.serve.placement import main

if __name__ == "__main__":
    raise SystemExit(main())
