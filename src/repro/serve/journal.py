"""Durable per-tenant journals for the serve daemon (DESIGN.md §13).

Two append-only files back every tenant a daemon serves:

* :class:`EventJournal` — the finalized-event log.  Checkpoints capture
  grouping *state*; the events already emitted before a crash live only
  here.  Records are length-prefixed pickle frames, so the journal
  round-trips full :class:`~repro.core.events.NetworkEvent` objects and
  the smoke gate can recompute :func:`repro.hotpath.stream_fingerprint`
  over exactly what the daemon served.

  Crash consistency is a two-invariant protocol with the checkpoint:

  1. the journal is fsynced *before* every checkpoint write, so it
     always holds at least the ``finalized`` count the checkpoint
     records;
  2. on restore, :meth:`truncate` cuts the journal back to exactly that
     count — events finalized after the checkpoint will be re-emitted
     by the tail replay, and keeping the journaled copies would
     duplicate them.

  Together: journal ∪ replay = the uninterrupted event sequence, with
  no event lost and none doubled.  A torn final frame (the crash landed
  mid-append) is detected by the length prefix and dropped at open.

* :class:`TransitionJournal` — the supervisor's JSONL log of state
  transitions (healthy → restarting → degraded → drained), one object
  per line, append-only, human-greppable.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
from pathlib import Path

_LEN = struct.Struct("<I")


class EventJournal:
    """Append-only, truncatable log of pickled finalized events.

    The file is a sequence of ``<u32 little-endian length><pickle>``
    frames.  Frame offsets are kept in memory (rebuilt by one scan at
    open) so cursor-paginated reads seek straight to a record.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offsets: list[int] = []
        self._fh = None
        self._scan()
        self._fh = open(self.path, "ab")

    def _scan(self) -> None:
        """Index the existing frames; drop a torn final frame."""
        self._offsets = []
        if not self.path.exists():
            self.path.touch()
            return
        size = self.path.stat().st_size
        good_end = 0
        with open(self.path, "rb") as fh:
            pos = 0
            while pos + _LEN.size <= size:
                head = fh.read(_LEN.size)
                (length,) = _LEN.unpack(head)
                if pos + _LEN.size + length > size:
                    break  # torn frame: the crash landed mid-append
                self._offsets.append(pos)
                pos += _LEN.size + length
                fh.seek(pos)
                good_end = pos
        if good_end < size:
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)

    def __len__(self) -> int:
        return len(self._offsets)

    def append(self, events) -> int:
        """Append events (buffered); returns the new record count.

        Durability is deferred to :meth:`sync` — call it before every
        checkpoint write so invariant (1) in the module docstring holds.
        """
        for event in events:
            blob = pickle.dumps(event, protocol=pickle.HIGHEST_PROTOCOL)
            self._offsets.append(self._fh.tell())
            self._fh.write(_LEN.pack(len(blob)))
            self._fh.write(blob)
        return len(self._offsets)

    def sync(self) -> None:
        """Flush and fsync everything appended so far."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def truncate(self, count: int) -> int:
        """Cut the journal back to its first ``count`` records.

        The resume-consistency step: called with the checkpoint's
        ``finalized`` counter before replay, so re-finalized events are
        never doubled.  Returns how many records were dropped.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        if count >= len(self._offsets):
            return 0
        dropped = len(self._offsets) - count
        self._fh.close()
        end = self._offsets[count]
        with open(self.path, "r+b") as fh:
            fh.truncate(end)
            fh.flush()
            os.fsync(fh.fileno())
        self._offsets = self._offsets[:count]
        self._fh = open(self.path, "ab")
        return dropped

    def read(self, cursor: int = 0, limit: int | None = None) -> list:
        """Unpickle records ``[cursor, cursor + limit)``, oldest first."""
        if cursor < 0:
            raise ValueError("cursor must be >= 0")
        stop = (
            len(self._offsets)
            if limit is None
            else min(len(self._offsets), cursor + limit)
        )
        if cursor >= stop:
            return []
        self._fh.flush()
        out = []
        with open(self.path, "rb") as fh:
            fh.seek(self._offsets[cursor])
            for _ in range(stop - cursor):
                (length,) = _LEN.unpack(fh.read(_LEN.size))
                out.append(pickle.loads(fh.read(length)))
        return out

    def read_all(self) -> list:
        """Every journaled event, oldest first."""
        return self.read(0, None)

    def close(self) -> None:
        self._fh.close()


class TransitionJournal:
    """Append-only JSONL log of supervisor state transitions."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.touch(exist_ok=True)

    def append(self, entry: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def read(self) -> list[dict]:
        out = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    out.append(json.loads(line))
        return out
