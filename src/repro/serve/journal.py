"""Durable per-tenant journals for the serve daemon (DESIGN.md §13).

Two append-only files back every tenant a daemon serves:

* :class:`EventJournal` — the finalized-event log.  Checkpoints capture
  grouping *state*; the events already emitted before a crash live only
  here.  Records are length-prefixed pickle frames, so the journal
  round-trips full :class:`~repro.core.events.NetworkEvent` objects and
  the smoke gate can recompute :func:`repro.hotpath.stream_fingerprint`
  over exactly what the daemon served.

  Crash consistency is a two-invariant protocol with the checkpoint:

  1. the journal is fsynced *before* every checkpoint write, so it
     always holds at least the ``finalized`` count the checkpoint
     records;
  2. on restore, :meth:`truncate` cuts the journal back to exactly that
     count — events finalized after the checkpoint will be re-emitted
     by the tail replay, and keeping the journaled copies would
     duplicate them.

  Together: journal ∪ replay = the uninterrupted event sequence, with
  no event lost and none doubled.  A torn final frame (the crash landed
  mid-append) is detected by the length prefix and dropped at open.

  Disk faults degrade instead of crashing (DESIGN.md §14): a failed
  write parks the frames in an in-memory retry buffer, rolls the file
  back to the last complete frame boundary, and retries on the next
  append/sync.  :meth:`append` therefore never raises; :meth:`sync`
  does — which is what keeps invariant (1) honest, because a
  checkpoint is skipped whenever its journal fsync could not land.

* :class:`TransitionJournal` — the supervisor's JSONL log of state
  transitions (healthy → restarting → degraded → drained), one object
  per line, append-only, human-greppable.
"""

from __future__ import annotations

import errno
import json
import os
import pickle
import struct
from pathlib import Path

from repro.utils.fsio import check_fault, fsync_dir

_LEN = struct.Struct("<I")


class EventJournal:
    """Append-only, truncatable log of pickled finalized events.

    The file is a sequence of ``<u32 little-endian length><pickle>``
    frames.  Frame offsets are kept in memory (rebuilt by one scan at
    open) so cursor-paginated reads seek straight to a record.

    Writes are unbuffered and all-or-rolled-back: ``_file_end`` always
    sits on a frame boundary, any failed flush truncates the file back
    to it, and the unflushed frames wait in ``_buffer`` (served
    transparently by :meth:`read`) until a later flush succeeds.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offsets: list[int] = []
        #: End of the last complete frame on disk; flush rollback point.
        self._file_end = 0
        #: Frames accepted by append() but not yet on disk.
        self._buffer = bytearray()
        #: The OSError from the most recent failed flush, until one lands.
        self.last_error: OSError | None = None
        self._fh = None
        created = not self.path.exists()
        self._scan()
        self._fh = open(self.path, "ab", buffering=0)
        if created:
            fsync_dir(self.path.parent)

    def _scan(self) -> None:
        """Index the existing frames; drop a torn final frame."""
        self._offsets = []
        if not self.path.exists():
            self.path.touch()
            return
        size = self.path.stat().st_size
        good_end = 0
        with open(self.path, "rb") as fh:
            pos = 0
            while pos + _LEN.size <= size:
                head = fh.read(_LEN.size)
                (length,) = _LEN.unpack(head)
                if pos + _LEN.size + length > size:
                    break  # torn frame: the crash landed mid-append
                self._offsets.append(pos)
                pos += _LEN.size + length
                fh.seek(pos)
                good_end = pos
        if good_end < size:
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
        self._file_end = good_end

    def __len__(self) -> int:
        return len(self._offsets)

    @property
    def buffered_bytes(self) -> int:
        """Bytes parked in the in-memory retry buffer (0 when healthy)."""
        return len(self._buffer)

    @property
    def size_bytes(self) -> int:
        """Total journal footprint: flushed frames + the retry buffer.

        The counter the ``journal_max_bytes`` tenant budget compares
        against — exact and deterministic for a given event sequence,
        never a wall-clock sample of the file system.
        """
        return self._file_end + len(self._buffer)

    def append(self, events) -> int:
        """Append events; returns the new record count.  Never raises.

        Frames go into the retry buffer first, then one flush is
        attempted; on a disk fault the frames stay buffered (readable,
        truncatable) and the error is held in :attr:`last_error`.
        Durability is deferred to :meth:`sync` — call it before every
        checkpoint write so invariant (1) in the module docstring holds.
        """
        for event in events:
            blob = pickle.dumps(event, protocol=pickle.HIGHEST_PROTOCOL)
            self._offsets.append(self._file_end + len(self._buffer))
            self._buffer += _LEN.pack(len(blob))
            self._buffer += blob
        try:
            self._flush_buffer()
        except OSError as exc:
            self.last_error = exc
        return len(self._offsets)

    def _flush_buffer(self) -> None:
        """Write the retry buffer to disk; all-or-rolled-back.

        On any failure the file is truncated back to ``_file_end`` (a
        partial frame on disk would read as torn at the next open) and
        the buffer is left intact for the next attempt.
        """
        if not self._buffer:
            return
        data = bytes(self._buffer)
        try:
            check_fault("write", self.path)
            pos = 0
            while pos < len(data):
                n = self._fh.write(data[pos:])
                if not n:
                    raise OSError(
                        errno.EIO, "short write", str(self.path)
                    )
                pos += n
        except OSError:
            try:
                os.ftruncate(self._fh.fileno(), self._file_end)
            except OSError:
                pass
            raise
        self._file_end += len(data)
        del self._buffer[:]
        self.last_error = None

    def sync(self) -> None:
        """Flush the retry buffer and fsync; raises on disk fault.

        The one raising durability call: the serve tenant skips its
        checkpoint when this fails, so a checkpoint can never record a
        ``finalized`` count the journal does not durably hold.
        """
        self._flush_buffer()
        os.fsync(self._fh.fileno())

    def truncate(self, count: int) -> int:
        """Cut the journal back to its first ``count`` records.

        The resume-consistency step: called with the checkpoint's
        ``finalized`` counter before replay, so re-finalized events are
        never doubled.  Returns how many records were dropped.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        if count >= len(self._offsets):
            return 0
        dropped = len(self._offsets) - count
        end = self._offsets[count]
        if end >= self._file_end:
            # Cut lands inside the retry buffer: drop buffered frames
            # from the cut point on, disk untouched.
            del self._buffer[end - self._file_end :]
        else:
            del self._buffer[:]
            self._fh.close()
            with open(self.path, "r+b") as fh:
                fh.truncate(end)
                fh.flush()
                os.fsync(fh.fileno())
            self._file_end = end
            self._fh = open(self.path, "ab", buffering=0)
        self._offsets = self._offsets[:count]
        return dropped

    def read(self, cursor: int = 0, limit: int | None = None) -> list:
        """Unpickle records ``[cursor, cursor + limit)``, oldest first.

        Serves flushed frames from the file and unflushed ones from the
        retry buffer — a degraded journal reads exactly like a healthy
        one (a frame is always wholly in one or the other, because
        flushes are all-or-rolled-back).
        """
        if cursor < 0:
            raise ValueError("cursor must be >= 0")
        stop = (
            len(self._offsets)
            if limit is None
            else min(len(self._offsets), cursor + limit)
        )
        if cursor >= stop:
            return []
        out = []
        fh = None
        try:
            for i in range(cursor, stop):
                offset = self._offsets[i]
                if offset >= self._file_end:
                    base = offset - self._file_end
                    (length,) = _LEN.unpack(
                        self._buffer[base : base + _LEN.size]
                    )
                    start = base + _LEN.size
                    out.append(
                        pickle.loads(
                            bytes(self._buffer[start : start + length])
                        )
                    )
                else:
                    if fh is None:
                        fh = open(self.path, "rb")
                    fh.seek(offset)
                    (length,) = _LEN.unpack(fh.read(_LEN.size))
                    out.append(pickle.loads(fh.read(length)))
        finally:
            if fh is not None:
                fh.close()
        return out

    def read_all(self) -> list:
        """Every journaled event, oldest first."""
        return self.read(0, None)

    def close(self) -> None:
        try:
            self._flush_buffer()
        except OSError as exc:
            self.last_error = exc
        self._fh.close()


class TransitionJournal:
    """Append-only JSONL log of supervisor state transitions."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        created = not self.path.exists()
        self.path.touch(exist_ok=True)
        if created:
            fsync_dir(self.path.parent)

    def append(self, entry: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def read(self) -> list[dict]:
        out = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    out.append(json.loads(line))
        return out
