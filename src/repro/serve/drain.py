"""Cooperative SIGTERM/SIGINT handling for long-running processes.

Both the serve daemon and the streaming CLI paths (``digest``/``resume``
with ``--checkpoint``) want the same contract: a termination signal does
not kill the process mid-batch, it raises a flag that the work loop
checks at its next safe boundary, after which the process checkpoints
and exits 0.  :class:`GracefulShutdown` packages that contract as a
context manager that installs handlers on entry and restores the
previous handlers on exit, so nested or sequential uses never leak.
"""

from __future__ import annotations

import signal


class GracefulShutdown:
    """Flag-raising signal handler for checkpoint-then-exit loops.

    Usage::

        with GracefulShutdown() as stop:
            for batch in batches:
                if stop:
                    break  # checkpoint + exit 0 at the call site
                process(batch)
    """

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self) -> None:
        self.requested = False
        self.signum: int | None = None
        self._previous: dict[int, object] = {}

    def _handler(self, signum, frame) -> None:
        self.requested = True
        self.signum = signum

    def __enter__(self) -> "GracefulShutdown":
        for sig in self.SIGNALS:
            self._previous[sig] = signal.getsignal(sig)
            signal.signal(sig, self._handler)
        return self

    def __exit__(self, *exc) -> None:
        for sig, prev in self._previous.items():
            signal.signal(sig, prev)
        self._previous.clear()

    def __bool__(self) -> bool:
        return self.requested

    @property
    def signal_name(self) -> str:
        if self.signum is None:
            return ""
        return signal.Signals(self.signum).name
