"""The `repro serve` daemon: supervised multi-tenant digesting (DESIGN.md §13).

One asyncio process serves many tenants.  Each tenant gets a *pump*
task (read arrivals → push through ingest → journal events →
checkpoint on cadence) wrapped by a *supervise* task that implements
the :class:`~repro.serve.supervisor.Supervisor` state machine: a pump
that dies or stalls past its progress deadline is halted and restarted
from the tenant's latest checkpoint after a bounded exponential
backoff; after ``max_restarts`` consecutive failures the tenant is
restarted once more in degraded (shed) mode and left running.

SIGTERM/SIGINT request a graceful drain: every pump stops intake at
its next batch boundary, reorder buffers are flushed, open groups
finalized, a final checkpoint written, the quarantine dumped under its
rotation budget — then the HTTP server stops and the process exits 0.
kill -9 is the other ending, and the one the smoke gate pins: on the
next boot each tenant restores from its checkpoint + event journal and
produces a digest byte-identical to an uninterrupted run.

Configuration is one JSON document (see :class:`ServeConfig`)::

    {
      "host": "127.0.0.1", "port": 0, "workdir": "serve-state",
      "once": true,
      "supervisor": {"max_restarts": 3, "base_delay": 0.1,
                     "progress_deadline": 30.0},
      "tenants": [
        {"name": "net-a", "sources": ["a1.log", "a2.log"],
         "workdir": "serve-state/net-a", "kb_path": "a.kb",
         "stream_workers": "serial"}
      ]
    }

``port: 0`` binds an ephemeral port; the bound port is written to
``<workdir>/http.port`` so callers (and the smoke harness) can find it.
``once: true`` drains automatically when every tenant's sources are
exhausted — the batch-mode ending used by tests.
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import (
    BUDGET_BREACHES,
    BUDGET_LIMIT,
    BUDGET_USED,
    OVER_BUDGET,
    PLACEMENT_WORKER_DEATHS,
    PLACEMENT_WORKERS,
    SERVE_LONGPOLL_WAITERS,
    get_registry,
)

from .http import HttpApi
from .journal import TransitionJournal
from .placement import InlineHandle, ProcessHandle, WorkerClient
from .rpc import RpcClosed, RpcError, RpcTimeout
from .supervisor import Supervisor
from .tenant import TenantRuntime, TenantSpec

PORT_FILE = "http.port"

#: ``{gauge label: (limit key, usage key)}`` into a tenant's
#: ``budget_health()`` dict — what :meth:`ServeDaemon.publish_budgets`
#: mirrors into the BUDGET_LIMIT / BUDGET_USED gauge pairs.
BUDGET_GAUGES = {
    "open_messages": ("max_open_messages", "open_messages"),
    "journal_bytes": ("journal_max_bytes", "journal_bytes"),
    "quarantine_bytes": ("quarantine_max_bytes", "quarantine_records"),
    "stream_procs": ("max_stream_procs", "stream_procs"),
}


@dataclass(frozen=True)
class ServeConfig:
    """Whole-daemon configuration (JSON round-trippable)."""

    tenants: tuple[TenantSpec, ...]
    host: str = "127.0.0.1"
    port: int = 0
    workdir: str = "."
    poll_interval: float = 0.2
    once: bool = False
    max_restarts: int = 3
    base_delay: float = 0.1
    progress_deadline: float = 30.0
    # Graceful drain: per-tenant deadline for a worker to finish its
    # final checkpoint before the parent escalates to SIGKILL.
    drain_deadline: float = 10.0
    # HTTP hardening (the "http" config block): how long one connection
    # may take to deliver its request head, and how big head/body may be.
    http_read_deadline: float = 10.0
    http_max_header_bytes: int = 16384
    http_max_body_bytes: int = 1 << 20
    # Long-poll event subscriptions: total blocked waiters across all
    # tenants, and the per-request cap on ?wait= seconds.
    max_longpoll_waiters: int = 32
    longpoll_max_wait: float = 30.0
    # Test hook (smoke gate): SIGKILL this process after N arrivals
    # across all tenants, via netsim.faults.DaemonCrash.  0 = off.
    crash_after: int = 0
    # Chaos hook: arm a deterministic disk fault inside this process
    # (netsim.faults.durable_fault_from_dict shape).  None = off.
    # Forwarded to every process-placement worker's init frame.
    fault: dict | None = None
    # Chaos hook: deterministic per-arrival pipeline fault
    # (netsim.faults.pump_fault_from_dict shape, with a "tenant" key).
    pump_fault: dict | None = None

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("serve config needs >= 1 tenant")
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        data = dict(data)
        data["tenants"] = tuple(
            TenantSpec.from_dict(item) for item in data.get("tenants", [])
        )
        supervisor = data.pop("supervisor", {})
        for key in ("max_restarts", "base_delay", "progress_deadline"):
            if key in supervisor:
                data[key] = supervisor[key]
        http = data.pop("http", {})
        for key, attr in (
            ("read_deadline", "http_read_deadline"),
            ("max_header_bytes", "http_max_header_bytes"),
            ("max_body_bytes", "http_max_body_bytes"),
            ("max_longpoll_waiters", "max_longpoll_waiters"),
            ("longpoll_max_wait", "longpoll_max_wait"),
        ):
            if key in http:
                data[attr] = http[key]
        return cls(**data)

    @classmethod
    def from_file(cls, path: str | Path) -> "ServeConfig":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class _PipelineStuck(RuntimeError):
    """Raised by the watchdog when a pump misses its progress deadline."""


class ServeDaemon:
    """Supervised, drainable, queryable multi-tenant serve loop."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.tenants: dict[str, TenantRuntime] = {
            spec.name: TenantRuntime(spec) for spec in config.tenants
        }
        self.handles: dict[str, InlineHandle | ProcessHandle] = {}
        for spec in config.tenants:
            if spec.placement == "process":
                self.handles[spec.name] = ProcessHandle(spec)
            else:
                self.handles[spec.name] = InlineHandle(
                    self.tenants[spec.name]
                )
        self.supervisors: dict[str, Supervisor] = {}
        self.api = HttpApi(self)
        self.draining = False
        self._crash_hook = None
        self._n_arrivals = 0
        self._event_waiters: dict[str, list[asyncio.Future]] = {}
        self._breach_counts: dict[str, int] = {}
        if config.crash_after > 0:
            from repro.netsim.faults import DaemonCrash

            self._crash_hook = DaemonCrash(after=config.crash_after)
        if config.fault is not None:
            from repro.netsim.faults import durable_fault_from_dict
            from repro.utils.fsio import install_fault_hook

            install_fault_hook(durable_fault_from_dict(config.fault))
        if config.pump_fault is not None:
            from repro.netsim.faults import pump_fault_from_dict

            target = config.pump_fault.get("tenant")
            for spec in config.tenants:
                if spec.placement == "inline" and target in (None, spec.name):
                    self.tenants[spec.name].fault_hook = (
                        pump_fault_from_dict(config.pump_fault)
                    )

    # --------------------------------------------------------- lifecycle

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; SIGTERM/SIGINT/POST)."""
        self.draining = True
        # Long-pollers must not ride out the drain: wake them all so
        # they return their current page and the server can stop.
        for name in list(self._event_waiters):
            self.notify_events(name)

    # ---------------------------------------------------- event long-poll

    def register_event_waiter(self, name: str) -> asyncio.Future | None:
        """A future resolved at the tenant's next journal append.

        Returns ``None`` when the daemon-wide waiter budget is spent —
        the caller answers 429 instead of parking one more connection.
        """
        total = sum(len(w) for w in self._event_waiters.values())
        if total >= self.config.max_longpoll_waiters:
            return None
        future = asyncio.get_running_loop().create_future()
        self._event_waiters.setdefault(name, []).append(future)
        self._set_waiter_gauge(name)
        return future

    def unregister_event_waiter(self, name: str, future) -> None:
        waiters = self._event_waiters.get(name, [])
        if future in waiters:
            waiters.remove(future)
        self._set_waiter_gauge(name)

    def notify_events(self, name: str) -> None:
        """Wake every long-poller blocked on this tenant's journal."""
        for future in self._event_waiters.pop(name, []):
            if not future.done():
                future.set_result(True)
        self._set_waiter_gauge(name)

    def _set_waiter_gauge(self, name: str) -> None:
        get_registry().set_gauge(
            SERVE_LONGPOLL_WAITERS,
            len(self._event_waiters.get(name, [])),
            tenant=name,
        )

    # ------------------------------------------------------ budget mirror

    def publish_budgets(self, name: str, budgets: dict) -> None:
        """Mirror one tenant's ``budget_health()`` into the registry.

        Runs parent-side for *both* placements (a worker's own registry
        is invisible here), so ``/metrics`` always carries the budget
        series.  Breaches arrive as the tenant's cumulative breach
        list; the counter is bumped by the delta since last publish.
        """
        registry = get_registry()
        for label, (limit_key, used_key) in BUDGET_GAUGES.items():
            registry.set_gauge(
                BUDGET_LIMIT, budgets[limit_key], tenant=name, budget=label
            )
            registry.set_gauge(
                BUDGET_USED, budgets[used_key], tenant=name, budget=label
            )
        registry.set_gauge(
            OVER_BUDGET, budgets["over_budget"], tenant=name
        )
        breached = budgets.get("breached", [])
        seen = self._breach_counts.get(name, 0)
        if len(breached) > seen:
            registry.inc(
                BUDGET_BREACHES, len(breached) - seen, tenant=name
            )
            self._breach_counts[name] = len(breached)
        elif len(breached) < seen:
            # A restart reset the tenant's per-life breach list; track
            # the new life so its re-breaches count again.
            self._breach_counts[name] = len(breached)

    async def run(self) -> int:
        """Serve until drained; returns the process exit code (0)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.request_drain)
        workdir = Path(self.config.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        for runtime in self.tenants.values():
            runtime.workdir.mkdir(parents=True, exist_ok=True)
        for spec in self.config.tenants:
            self.supervisors[spec.name] = Supervisor(
                spec.name,
                max_restarts=self.config.max_restarts,
                base_delay=self.config.base_delay,
                progress_deadline=self.config.progress_deadline,
                journal=TransitionJournal(
                    self.tenants[spec.name].supervisor_path
                ),
            )
        await self.api.start(self.config.host, self.config.port)
        (workdir / PORT_FILE).write_text(str(self.api.port))
        try:
            await asyncio.gather(
                *(
                    self._supervise(name)
                    for name in self.tenants
                )
            )
        finally:
            await self.api.stop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)
        return 0

    # -------------------------------------------------------- supervision

    async def _supervise(self, name: str) -> None:
        """One tenant's supervision loop: pump, watch, restart, drain."""
        runtime = self.tenants[name]
        if runtime.spec.placement == "process":
            await self._supervise_process(name)
            return
        supervisor = self.supervisors[name]
        watch = max(0.02, min(1.0, supervisor.progress_deadline / 5))
        degraded = False
        while True:
            pump = asyncio.ensure_future(self._pump(name, degraded))
            try:
                while not pump.done():
                    await asyncio.wait({pump}, timeout=watch)
                    if pump.done():
                        break
                    if supervisor.stuck(pending=runtime.pending > 0):
                        pump.cancel()
                        try:
                            await pump
                        except BaseException:
                            pass
                        raise _PipelineStuck(
                            f"no batch progress in "
                            f"{supervisor.progress_deadline}s"
                        )
                pump.result()  # re-raises the pipeline's exception
                break  # clean exit: drain requested or sources exhausted
            except asyncio.CancelledError:
                pump.cancel()
                raise
            except Exception as exc:
                runtime.halt()
                decision = supervisor.on_failure(
                    f"{type(exc).__name__}: {exc}"
                )
                if decision.action == "fail":
                    return
                if decision.action == "degrade":
                    degraded = True
                await asyncio.sleep(decision.delay)
        runtime.drain()
        supervisor.note_drained()

    async def _pump(self, name: str, degraded: bool) -> None:
        """One life of a tenant pipeline: boot, then batch until done."""
        runtime = self.tenants[name]
        supervisor = self.supervisors[name]
        runtime.start(degraded=degraded)
        if degraded:
            supervisor.note_degraded_started()
        else:
            supervisor.note_started()
        events_seen = len(runtime.events)
        breaches_seen = len(runtime.budget_breached)
        while not self.draining:
            n = runtime.process_batch()
            if n:
                supervisor.note_progress()
                self._count_arrivals(n)
                if len(runtime.events) != events_seen:
                    events_seen = len(runtime.events)
                    self.notify_events(name)
                self.publish_budgets(name, runtime.budget_health())
                if len(runtime.budget_breached) > breaches_seen:
                    fresh = runtime.budget_breached[breaches_seen:]
                    breaches_seen = len(runtime.budget_breached)
                    supervisor.note_budget_degraded(fresh)
                await asyncio.sleep(0)  # yield to HTTP handlers
            elif runtime.refill() == 0:
                if self.config.once:
                    return
                await asyncio.sleep(self.config.poll_interval)

    def _count_arrivals(self, n: int) -> None:
        self._n_arrivals += n
        if self._crash_hook is not None:
            self._crash_hook(self._n_arrivals)

    # ------------------------------------------------- process placement

    def _worker_init(self, spec: TenantSpec, degraded: bool) -> dict:
        """The ``init`` frame a freshly spawned worker boots from."""
        return {
            "spec": spec.to_dict(),
            "degraded": degraded,
            "once": self.config.once,
            "poll_interval": self.config.poll_interval,
            "fault": self.config.fault,
            "pump_fault": self.config.pump_fault,
        }

    async def _supervise_process(self, name: str) -> None:
        """Supervision loop for a ``placement = "process"`` tenant.

        Same state machine as the inline path — the Supervisor cannot
        tell the placements apart — but failure evidence is worker
        death (pipe EOF + ``waitpid``), a ``fatal`` notification, the
        stuck detector over ``batch`` notifications, or a latched RPC
        deadline timeout.  Every spawned child is reaped on every path.
        """
        spec = self.tenants[name].spec
        handle = self.handles[name]
        supervisor = self.supervisors[name]
        registry = get_registry()
        degraded = False
        while True:
            try:
                client = await WorkerClient.spawn(
                    self._worker_init(spec, degraded)
                )
            except OSError as exc:
                outcome, reason = "spawn", f"spawn failed: {exc}"
            else:
                handle.attach(client)
                registry.set_gauge(PLACEMENT_WORKERS, 1, tenant=name)
                outcome, reason = await self._watch_worker(
                    name, handle, client, degraded
                )
                handle.detach()
                registry.set_gauge(PLACEMENT_WORKERS, 0, tenant=name)
            if outcome == "drained":
                supervisor.note_drained()
                self.notify_events(name)
                return
            registry.inc(
                PLACEMENT_WORKER_DEATHS, tenant=name, reason=outcome
            )
            decision = supervisor.on_failure(reason)
            if decision.action == "fail":
                return
            if decision.action == "degrade":
                degraded = True
            await asyncio.sleep(decision.delay)

    async def _watch_worker(
        self, name: str, handle: ProcessHandle, client: WorkerClient,
        degraded: bool,
    ) -> tuple[str, str]:
        """Follow one worker life; returns ``(outcome, reason)``.

        Outcomes: ``drained`` (graceful end), or a death reason fed to
        :meth:`Supervisor.on_failure` — ``exit`` (process died),
        ``stuck`` (pending input, no batch progress past the deadline),
        ``rpc-deadline`` (an RPC to the worker timed out — it is hung).
        """
        spec = self.tenants[name].spec
        supervisor = self.supervisors[name]
        watch = max(0.02, min(1.0, supervisor.progress_deadline / 5))
        exhausted = False
        while True:
            if self.draining or (exhausted and self.config.once):
                return await self._drain_worker(name, client)
            if handle.rpc_timed_out:
                client.kill()
                await client.reap()
                return (
                    "rpc-deadline",
                    f"no RPC reply in {spec.budget.rpc_deadline}s",
                )
            note = await client.channel.next_note(timeout=watch)
            if note is None:
                if supervisor.stuck(pending=handle.pending > 0):
                    client.kill()
                    await client.reap()
                    return (
                        "stuck",
                        "no batch progress in "
                        f"{supervisor.progress_deadline}s",
                    )
                continue
            kind = note.get("kind")
            if kind == "closed":
                code = await client.reap()
                return ("exit", f"worker exited {code}")
            if kind == "fatal":
                await client.reap()
                return ("exit", note.get("error", "worker fatal"))
            if kind == "started":
                if degraded:
                    supervisor.note_degraded_started()
                else:
                    supervisor.note_started()
            elif kind == "batch":
                supervisor.note_progress()
                self._count_arrivals(int(note.get("n", 0)))
                handle.pending = int(note.get("pending", 0))
                total = int(note.get("events_total", 0))
                if total != handle.events_total:
                    handle.events_total = total
                    self.notify_events(name)
                if "budgets" in note:
                    self.publish_budgets(name, note["budgets"])
            elif kind == "budget":
                supervisor.note_budget_degraded(
                    list(note.get("breached", []))
                )
            elif kind == "exhausted":
                exhausted = True
                handle.events_total = int(
                    note.get("events_total", handle.events_total)
                )

    async def _drain_worker(
        self, name: str, client: WorkerClient
    ) -> tuple[str, str]:
        """Graceful worker shutdown with SIGKILL escalation; exits 0 either way.

        The drain RPC makes the worker flush, final-checkpoint, dump
        its quarantine, reply, and exit.  A worker that cannot finish
        inside ``drain_deadline`` is SIGKILLed *after* its last cadence
        checkpoint is already durable — the cost is un-checkpointed
        progress, i.e. exactly a crash resume, never a failed drain.
        """
        deadline = self.config.drain_deadline
        try:
            await client.request("drain", timeout=deadline)
            await asyncio.wait_for(client.proc.wait(), timeout=deadline)
            await client.channel.close()
        except (RpcError, RpcClosed, RpcTimeout, asyncio.TimeoutError) as exc:
            client.kill()
            await client.reap()
            try:
                TransitionJournal(
                    self.tenants[name].supervisor_path
                ).append(
                    {
                        "tenant": name,
                        "kind": "drain-escalated",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            except OSError:
                pass
        return ("drained", "")


def run_daemon(config: ServeConfig) -> int:
    """Blocking entry point used by ``repro serve``."""
    return asyncio.run(ServeDaemon(config).run())
