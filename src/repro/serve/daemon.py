"""The `repro serve` daemon: supervised multi-tenant digesting (DESIGN.md §13).

One asyncio process serves many tenants.  Each tenant gets a *pump*
task (read arrivals → push through ingest → journal events →
checkpoint on cadence) wrapped by a *supervise* task that implements
the :class:`~repro.serve.supervisor.Supervisor` state machine: a pump
that dies or stalls past its progress deadline is halted and restarted
from the tenant's latest checkpoint after a bounded exponential
backoff; after ``max_restarts`` consecutive failures the tenant is
restarted once more in degraded (shed) mode and left running.

SIGTERM/SIGINT request a graceful drain: every pump stops intake at
its next batch boundary, reorder buffers are flushed, open groups
finalized, a final checkpoint written, the quarantine dumped under its
rotation budget — then the HTTP server stops and the process exits 0.
kill -9 is the other ending, and the one the smoke gate pins: on the
next boot each tenant restores from its checkpoint + event journal and
produces a digest byte-identical to an uninterrupted run.

Configuration is one JSON document (see :class:`ServeConfig`)::

    {
      "host": "127.0.0.1", "port": 0, "workdir": "serve-state",
      "once": true,
      "supervisor": {"max_restarts": 3, "base_delay": 0.1,
                     "progress_deadline": 30.0},
      "tenants": [
        {"name": "net-a", "sources": ["a1.log", "a2.log"],
         "workdir": "serve-state/net-a", "kb_path": "a.kb",
         "stream_workers": "serial"}
      ]
    }

``port: 0`` binds an ephemeral port; the bound port is written to
``<workdir>/http.port`` so callers (and the smoke harness) can find it.
``once: true`` drains automatically when every tenant's sources are
exhausted — the batch-mode ending used by tests.
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass, field
from pathlib import Path

from .http import HttpApi
from .journal import TransitionJournal
from .supervisor import Supervisor
from .tenant import TenantRuntime, TenantSpec

PORT_FILE = "http.port"


@dataclass(frozen=True)
class ServeConfig:
    """Whole-daemon configuration (JSON round-trippable)."""

    tenants: tuple[TenantSpec, ...]
    host: str = "127.0.0.1"
    port: int = 0
    workdir: str = "."
    poll_interval: float = 0.2
    once: bool = False
    max_restarts: int = 3
    base_delay: float = 0.1
    progress_deadline: float = 30.0
    # Test hook (smoke gate): SIGKILL this process after N arrivals
    # across all tenants, via netsim.faults.DaemonCrash.  0 = off.
    crash_after: int = 0
    # Chaos hook: arm a deterministic disk fault inside this process
    # (netsim.faults.durable_fault_from_dict shape).  None = off.
    fault: dict | None = None

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("serve config needs >= 1 tenant")
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        data = dict(data)
        data["tenants"] = tuple(
            TenantSpec.from_dict(item) for item in data.get("tenants", [])
        )
        supervisor = data.pop("supervisor", {})
        for key in ("max_restarts", "base_delay", "progress_deadline"):
            if key in supervisor:
                data[key] = supervisor[key]
        return cls(**data)

    @classmethod
    def from_file(cls, path: str | Path) -> "ServeConfig":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class _PipelineStuck(RuntimeError):
    """Raised by the watchdog when a pump misses its progress deadline."""


class ServeDaemon:
    """Supervised, drainable, queryable multi-tenant serve loop."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.tenants: dict[str, TenantRuntime] = {
            spec.name: TenantRuntime(spec) for spec in config.tenants
        }
        self.supervisors: dict[str, Supervisor] = {}
        self.api = HttpApi(self)
        self.draining = False
        self._crash_hook = None
        self._n_arrivals = 0
        if config.crash_after > 0:
            from repro.netsim.faults import DaemonCrash

            self._crash_hook = DaemonCrash(after=config.crash_after)
        if config.fault is not None:
            from repro.netsim.faults import durable_fault_from_dict
            from repro.utils.fsio import install_fault_hook

            install_fault_hook(durable_fault_from_dict(config.fault))

    # --------------------------------------------------------- lifecycle

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; SIGTERM/SIGINT/POST)."""
        self.draining = True

    async def run(self) -> int:
        """Serve until drained; returns the process exit code (0)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.request_drain)
        workdir = Path(self.config.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        for runtime in self.tenants.values():
            runtime.workdir.mkdir(parents=True, exist_ok=True)
        for spec in self.config.tenants:
            self.supervisors[spec.name] = Supervisor(
                spec.name,
                max_restarts=self.config.max_restarts,
                base_delay=self.config.base_delay,
                progress_deadline=self.config.progress_deadline,
                journal=TransitionJournal(
                    self.tenants[spec.name].supervisor_path
                ),
            )
        await self.api.start(self.config.host, self.config.port)
        (workdir / PORT_FILE).write_text(str(self.api.port))
        try:
            await asyncio.gather(
                *(
                    self._supervise(name)
                    for name in self.tenants
                )
            )
        finally:
            await self.api.stop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)
        return 0

    # -------------------------------------------------------- supervision

    async def _supervise(self, name: str) -> None:
        """One tenant's supervision loop: pump, watch, restart, drain."""
        runtime = self.tenants[name]
        supervisor = self.supervisors[name]
        watch = max(0.02, min(1.0, supervisor.progress_deadline / 5))
        degraded = False
        while True:
            pump = asyncio.ensure_future(self._pump(name, degraded))
            try:
                while not pump.done():
                    await asyncio.wait({pump}, timeout=watch)
                    if pump.done():
                        break
                    if supervisor.stuck(pending=runtime.pending > 0):
                        pump.cancel()
                        try:
                            await pump
                        except BaseException:
                            pass
                        raise _PipelineStuck(
                            f"no batch progress in "
                            f"{supervisor.progress_deadline}s"
                        )
                pump.result()  # re-raises the pipeline's exception
                break  # clean exit: drain requested or sources exhausted
            except asyncio.CancelledError:
                pump.cancel()
                raise
            except Exception as exc:
                runtime.halt()
                decision = supervisor.on_failure(
                    f"{type(exc).__name__}: {exc}"
                )
                if decision.action == "fail":
                    return
                if decision.action == "degrade":
                    degraded = True
                await asyncio.sleep(decision.delay)
        runtime.drain()
        supervisor.note_drained()

    async def _pump(self, name: str, degraded: bool) -> None:
        """One life of a tenant pipeline: boot, then batch until done."""
        runtime = self.tenants[name]
        supervisor = self.supervisors[name]
        runtime.start(degraded=degraded)
        if degraded:
            supervisor.note_degraded_started()
        else:
            supervisor.note_started()
        while not self.draining:
            n = runtime.process_batch()
            if n:
                supervisor.note_progress()
                self._count_arrivals(n)
                await asyncio.sleep(0)  # yield to HTTP handlers
            elif runtime.refill() == 0:
                if self.config.once:
                    return
                await asyncio.sleep(self.config.poll_interval)

    def _count_arrivals(self, n: int) -> None:
        self._n_arrivals += n
        if self._crash_hook is not None:
            self._crash_hook(self._n_arrivals)


def run_daemon(config: ServeConfig) -> int:
    """Blocking entry point used by ``repro serve``."""
    return asyncio.run(ServeDaemon(config).run())
