"""Supervised service mode: the crash-safe multi-tenant daemon (DESIGN.md §13).

`repro serve` turns the one-shot streaming pipeline into an always-on
process: per-tenant :class:`~repro.core.stream.DigestStream` pipelines
behind :class:`~repro.syslog.ingest.MultiSourceIngest`, each wrapped in
a restart-from-checkpoint :class:`~repro.serve.supervisor.Supervisor`,
queried over a stdlib-only HTTP API, drained gracefully on
SIGTERM/SIGINT, and pinned byte-identical across kill -9 by the
checkpoint + event-journal protocol in :mod:`repro.serve.journal`.
"""

from repro.serve.daemon import ServeConfig, ServeDaemon, run_daemon
from repro.serve.drain import GracefulShutdown
from repro.serve.http import HttpApi, event_payload
from repro.serve.journal import EventJournal, TransitionJournal
from repro.serve.supervisor import STATES, Decision, Supervisor
from repro.serve.tenant import TenantRuntime, TenantSpec

__all__ = [
    "STATES",
    "Decision",
    "EventJournal",
    "GracefulShutdown",
    "HttpApi",
    "ServeConfig",
    "ServeDaemon",
    "Supervisor",
    "TenantRuntime",
    "TenantSpec",
    "TransitionJournal",
    "event_payload",
    "run_daemon",
]
