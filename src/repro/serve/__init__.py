"""Supervised service mode: the crash-safe multi-tenant daemon (DESIGN.md §13, §15).

`repro serve` turns the one-shot streaming pipeline into an always-on
process: per-tenant :class:`~repro.core.stream.DigestStream` pipelines
behind :class:`~repro.syslog.ingest.MultiSourceIngest`, each wrapped in
a restart-from-checkpoint :class:`~repro.serve.supervisor.Supervisor`,
queried over a stdlib-only HTTP API, drained gracefully on
SIGTERM/SIGINT, and pinned byte-identical across kill -9 by the
checkpoint + event-journal protocol in :mod:`repro.serve.journal`.

Placement (DESIGN.md §15) adds the bulkhead: a tenant may run inline on
the daemon's loop or in a supervised worker process of its own behind
the framed-pipe RPC of :mod:`repro.serve.rpc`, with per-tenant resource
budgets that degrade — never kill — an over-budget tenant.
"""

from repro.serve.daemon import ServeConfig, ServeDaemon, run_daemon
from repro.serve.drain import GracefulShutdown
from repro.serve.http import HttpApi, event_payload, events_page
from repro.serve.journal import EventJournal, TransitionJournal
from repro.serve.placement import (
    InlineHandle,
    ProcessHandle,
    WorkerClient,
    worker_main,
)
from repro.serve.rpc import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameTooLarge,
    RpcChannel,
    RpcClosed,
    RpcError,
    RpcTimeout,
    TornFrame,
)
from repro.serve.supervisor import STATES, Decision, Supervisor
from repro.serve.tenant import (
    BUDGET_HEALTH_KEYS,
    PLACEMENTS,
    TenantBudget,
    TenantRuntime,
    TenantSpec,
)

__all__ = [
    "BUDGET_HEALTH_KEYS",
    "MAX_FRAME_BYTES",
    "PLACEMENTS",
    "STATES",
    "Decision",
    "EventJournal",
    "FrameError",
    "FrameTooLarge",
    "GracefulShutdown",
    "HttpApi",
    "InlineHandle",
    "ProcessHandle",
    "RpcChannel",
    "RpcClosed",
    "RpcError",
    "RpcTimeout",
    "ServeConfig",
    "ServeDaemon",
    "Supervisor",
    "TenantBudget",
    "TenantRuntime",
    "TenantSpec",
    "TornFrame",
    "TransitionJournal",
    "WorkerClient",
    "event_payload",
    "events_page",
    "run_daemon",
    "worker_main",
]
