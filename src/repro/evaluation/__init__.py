"""Evaluation metrics against labelled ground truth.

The paper validated digests by expert inspection; with labelled data
(synthetic, or hand-labelled operational incidents) grouping quality can
be *measured*.  These metrics are what the reproduction benches report and
are exposed here for downstream users with their own labels.
"""

from repro.evaluation.quality import (
    GroupingQuality,
    IncidentOutcome,
    grouping_quality,
)

__all__ = ["GroupingQuality", "IncidentOutcome", "grouping_quality"]
