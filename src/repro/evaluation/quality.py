"""Grouping-quality metrics: fragmentation and purity.

Given a digest (events referencing message indices) and per-index ground
truth (which injected/labelled condition caused each message, ``None`` for
noise):

* **fragmentation** of a condition = number of digest events its messages
  are spread across (1 is perfect: the whole condition is one event);
* **purity** of an event = number of distinct conditions it mixes
  (1 is perfect: the event is exactly one condition, possibly plus noise).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.events import NetworkEvent
from repro.utils.stats import mean


@dataclass(frozen=True)
class IncidentOutcome:
    """How one labelled condition fared in the digest."""

    event_id: str
    kind: str | None
    n_messages: int
    n_events: int  # fragmentation
    event_indices: tuple[int, ...]  # positions in the ranked digest


@dataclass
class GroupingQuality:
    """Aggregate grouping-quality report."""

    incidents: list[IncidentOutcome] = field(default_factory=list)
    purity_histogram: Counter = field(default_factory=Counter)
    n_noise_only_events: int = 0

    @property
    def mean_fragmentation(self) -> float:
        """Mean digest events per labelled condition (1.0 is perfect)."""
        if not self.incidents:
            return 1.0
        return mean([float(i.n_events) for i in self.incidents])

    @property
    def worst_fragmentation(self) -> int:
        """Largest events-per-condition split observed."""
        return max((i.n_events for i in self.incidents), default=0)

    @property
    def pure_event_fraction(self) -> float:
        """Share of truth-bearing events holding exactly one condition."""
        total = sum(self.purity_histogram.values())
        if total == 0:
            return 1.0
        return self.purity_histogram.get(1, 0) / total

    def per_kind(self) -> dict[str, list[IncidentOutcome]]:
        """Incident outcomes bucketed by scenario kind."""
        out: dict[str, list[IncidentOutcome]] = {}
        for incident in self.incidents:
            out.setdefault(incident.kind or "unknown", []).append(incident)
        return out


def grouping_quality(
    events: Sequence[NetworkEvent],
    truth: Sequence[str | None],
    kind_of: dict[str, str] | None = None,
) -> GroupingQuality:
    """Score a digest against per-message ground truth.

    ``truth[i]`` is the condition id of message index ``i`` (or ``None``
    for noise); ``kind_of`` optionally maps condition ids to scenario
    kinds for the per-kind breakdown.  Condition ids of the form
    ``...-<kind>`` fall back to that suffix when ``kind_of`` is absent.
    """
    event_of_index: dict[int, int] = {}
    for event_no, event in enumerate(events):
        for index in event.indices:
            event_of_index[index] = event_no

    events_of_incident: dict[str, set[int]] = {}
    messages_of_incident: Counter = Counter()
    incidents_of_event: dict[int, set[str]] = {}
    noise_only = set(range(len(events)))
    for index, event_id in enumerate(truth):
        event_no = event_of_index.get(index)
        if event_no is None:
            raise ValueError(
                f"message index {index} appears in no digest event"
            )
        if event_id is None:
            continue
        noise_only.discard(event_no)
        events_of_incident.setdefault(event_id, set()).add(event_no)
        messages_of_incident[event_id] += 1
        incidents_of_event.setdefault(event_no, set()).add(event_id)

    quality = GroupingQuality()
    for event_id, event_set in sorted(events_of_incident.items()):
        if kind_of is not None:
            kind = kind_of.get(event_id)
        else:
            kind = event_id.rsplit("-", 1)[-1] if "-" in event_id else None
        quality.incidents.append(
            IncidentOutcome(
                event_id=event_id,
                kind=kind,
                n_messages=messages_of_incident[event_id],
                n_events=len(event_set),
                event_indices=tuple(sorted(event_set)),
            )
        )
    quality.purity_histogram = Counter(
        len(ids) for ids in incidents_of_event.values()
    )
    quality.n_noise_only_events = len(noise_only)
    return quality
