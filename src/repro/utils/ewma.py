"""Exponentially weighted moving average of interarrival times.

Section 4.1.3 of the paper models the interarrival time of messages sharing a
template as ``S_hat_t = alpha * S_{t-1} + (1 - alpha) * S_hat_{t-1}`` and puts
a new arrival in the same group iff the observed interarrival ``S_t`` does not
exceed ``beta * S_hat_t`` (with absolute clamps ``S_min``/``S_max``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EwmaEstimator:
    """Online EWMA predictor for a non-negative series.

    Parameters
    ----------
    alpha:
        Weight of the most recent observation; higher alpha discounts older
        observations faster.  Must lie in [0, 1].
    initial:
        Optional prediction to use before any observation arrives.  When
        ``None``, the first observation seeds the prediction directly.
    """

    alpha: float
    initial: float | None = None
    _prediction: float | None = field(init=False, default=None)
    _count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.initial is not None and self.initial < 0:
            raise ValueError("initial prediction must be non-negative")
        self._prediction = self.initial

    @property
    def prediction(self) -> float | None:
        """Current predicted value, or ``None`` before any data."""
        return self._prediction

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        return self._count

    def observe(self, value: float) -> float:
        """Fold in ``value`` and return the updated prediction."""
        if value < 0:
            raise ValueError(f"observation must be non-negative, got {value}")
        if self._prediction is None:
            self._prediction = value
        else:
            self._prediction = self.alpha * value + (1 - self.alpha) * self._prediction
        self._count += 1
        return self._prediction

    def copy(self) -> EwmaEstimator:
        """Return an independent copy with the same state."""
        clone = EwmaEstimator(self.alpha, self.initial)
        clone._prediction = self._prediction
        clone._count = self._count
        return clone
