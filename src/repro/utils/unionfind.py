"""Disjoint-set (union-find) with path compression and union by size.

Grouping in SyslogDigest merges message groups whenever any two of their
messages are related by one of the three grouping passes (temporal, rule
based, cross router).  Representing the merge relation as a union-find over
message ids makes the final grouping independent of the order in which the
passes run, which is the property Section 4.2.3 of the paper relies on.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Disjoint sets over arbitrary hashable items.

    Items are added lazily on first use; a fresh item is its own set.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def add(self, item: T) -> None:
        """Register ``item`` as a singleton set if not already present."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: T) -> T:
        """Return the canonical representative of ``item``'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: T, b: T) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> dict[T, list[T]]:
        """Return a mapping of root -> members (members in insertion order)."""
        out: dict[T, list[T]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out

    def n_groups(self) -> int:
        """Number of disjoint sets currently tracked."""
        return sum(1 for item, parent in self._parent.items() if item == parent)
