"""Disjoint-set (union-find) with path compression and union by size.

Grouping in SyslogDigest merges message groups whenever any two of their
messages are related by one of the three grouping passes (temporal, rule
based, cross router).  Representing the merge relation as a union-find over
message ids makes the final grouping independent of the order in which the
passes run, which is the property Section 4.2.3 of the paper relies on.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Disjoint sets over arbitrary hashable items.

    Items are added lazily on first use; a fresh item is its own set.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def add(self, item: T) -> None:
        """Register ``item`` as a singleton set if not already present."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: T) -> T:
        """Return the canonical representative of ``item``'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: T, b: T) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> dict[T, list[T]]:
        """Return a mapping of root -> members (members in insertion order)."""
        out: dict[T, list[T]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out

    def n_groups(self) -> int:
        """Number of disjoint sets currently tracked."""
        return sum(1 for item, parent in self._parent.items() if item == parent)


class DenseUnionFind:
    """Disjoint sets over the contiguous int range ``0..n-1``.

    Batch grouping knows its universe up front (message indices within
    the batch), so list indexing replaces the dict probes of
    :class:`UnionFind` in the hottest merge loops.  Semantics are
    identical: path compression, union by size, and
    root-is-first-reachable representative — so the connected components
    (and therefore event membership) come out the same.
    """

    __slots__ = ("_parent", "_size")

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._size = [1] * n

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: int) -> int:
        """Return the canonical representative of ``item``'s set."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        size = self._size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        size[ra] += size[rb]
        return ra

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> dict[int, list[int]]:
        """Return a mapping of root -> members (members in index order)."""
        out: dict[int, list[int]] = {}
        for item in range(len(self._parent)):
            out.setdefault(self.find(item), []).append(item)
        return out

    def n_groups(self) -> int:
        """Number of disjoint sets currently tracked."""
        return sum(1 for i, parent in enumerate(self._parent) if i == parent)
