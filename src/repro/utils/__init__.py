"""Shared utilities: union-find, EWMA, sliding windows, time, tables, stats."""

from repro.utils.ewma import EwmaEstimator
from repro.utils.stats import quantile, summarize
from repro.utils.textable import render_table
from repro.utils.timeutils import (
    HOUR,
    MINUTE,
    SECOND,
    day_index,
    format_ts,
    parse_ts,
)
from repro.utils.unionfind import UnionFind
from repro.utils.windows import SlidingWindow

__all__ = [
    "EwmaEstimator",
    "HOUR",
    "MINUTE",
    "SECOND",
    "SlidingWindow",
    "UnionFind",
    "day_index",
    "format_ts",
    "parse_ts",
    "quantile",
    "render_table",
    "summarize",
]
