"""Small statistics helpers (no numpy dependency in the core library)."""

from __future__ import annotations

import math
from collections.abc import Sequence


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of ``values`` (q in [0, 1])."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Return count/mean/min/median/p90/max of ``values``."""
    if not values:
        return {"count": 0.0}
    return {
        "count": float(len(values)),
        "mean": mean(values),
        "min": min(values),
        "median": quantile(values, 0.5),
        "p90": quantile(values, 0.9),
        "max": max(values),
    }


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of non-negative values — skewness of a distribution.

    Used to quantify the Figure 13 observation that per-router event counts
    are *less skewed* than per-router raw-message counts.
    """
    if not values:
        raise ValueError("gini of empty sequence")
    if any(v < 0 for v in values):
        raise ValueError("gini requires non-negative values")
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    cum = 0.0
    for i, v in enumerate(ordered, start=1):
        cum += i * v
    value = (2 * cum) / (n * total) - (n + 1) / n
    # Clamp floating-point wobble on near-uniform inputs.
    return min(max(value, 0.0), 1.0)
