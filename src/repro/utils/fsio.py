"""Durable filesystem writes plus the disk-fault injection seam (DESIGN.md §14).

Every durable-write path in the pipeline — checkpoints, model-store
payloads, journals, quarantine dumps — funnels through this module so
two guarantees are made exactly once:

* **Crash durability.**  ``write temp → fsync → rename`` alone is not
  power-cut safe: the rename lives in the parent directory's metadata,
  which has its own cache.  :func:`atomic_write_bytes` therefore fsyncs
  the parent directory after the rename, so a checkpoint that was
  reported committed cannot vanish when the machine loses power.
* **Deterministic fault injection.**  :func:`check_fault` is a
  process-global seam the chaos harness installs a hook into
  (:func:`install_fault_hook`); the hook raises ``OSError`` (ENOSPC,
  EIO) for chosen paths at chosen attempts, so disk-full and failing
  disks are testable without actually filling a disk.  With no hook
  installed the seam is one ``is None`` check — free on the hot path.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from pathlib import Path

#: The installed fault hook, or None.  A hook is ``hook(op, path)`` and
#: injects a fault by raising OSError; ``op`` is "write" or "read".
_fault_hook: Callable[[str, str], None] | None = None


def install_fault_hook(hook: Callable[[str, str], None]) -> None:
    """Install a process-global disk-fault hook (chaos/test seam)."""
    global _fault_hook
    _fault_hook = hook


def clear_fault_hook() -> None:
    """Remove the installed disk-fault hook."""
    global _fault_hook
    _fault_hook = None


def check_fault(op: str, path: str | Path) -> None:
    """Give the installed fault hook a chance to raise for ``(op, path)``.

    Called at the top of every durable write (and tail read) so an
    injected ENOSPC/EIO lands *before* any bytes move — the shape a
    full disk actually produces, with no partially-applied state.
    """
    if _fault_hook is not None:
        _fault_hook(op, str(path))


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a rename inside it survives power loss.

    Best-effort: some filesystems refuse O_RDONLY opens of directories
    (or fsync on them); durability degrades gracefully there instead of
    turning every checkpoint into a crash.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Crash-durable atomic write: temp → fsync → rename → fsync dir.

    Raises ``OSError`` (e.g. injected or real ENOSPC) with the previous
    file contents untouched — a failed write never leaves a truncated
    or half-renamed target behind; the stray temp file is removed.
    """
    path = Path(path)
    check_fault("write", path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    os.replace(tmp, path)
    fsync_dir(path.parent)


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> None:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))
