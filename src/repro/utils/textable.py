"""Minimal fixed-width text table rendering for bench/report output."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a left-aligned monospace table.

    Cells are str()-ed; floats keep their repr so callers control formatting.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
