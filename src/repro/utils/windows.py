"""Time-based sliding window over a stream of stamped items.

The association-rule miner (Section 4.1.4) forms one transaction per message
by sliding a window ``W`` across the time-sorted stream; the online rule-based
grouper (Section 4.2.2) needs the same "recent messages within W" view.  Both
are served by :class:`SlidingWindow`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from typing import Generic, TypeVar

T = TypeVar("T")


class SlidingWindow(Generic[T]):
    """Keep items whose timestamp is within ``width`` of the newest push.

    Items must be pushed in non-decreasing timestamp order; violations raise
    ``ValueError`` (the mining code always sorts first).
    """

    def __init__(self, width: float) -> None:
        if width < 0:
            raise ValueError(f"window width must be non-negative, got {width}")
        self.width = width
        self._items: deque[tuple[float, T]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return (item for _, item in self._items)

    def push(self, ts: float, item: T) -> list[T]:
        """Add ``item`` at time ``ts``; return items evicted by the move."""
        if self._items and ts < self._items[-1][0]:
            raise ValueError(
                f"out-of-order push: {ts} < {self._items[-1][0]}"
            )
        evicted: list[T] = []
        cutoff = ts - self.width
        while self._items and self._items[0][0] < cutoff:
            evicted.append(self._items.popleft()[1])
        self._items.append((ts, item))
        return evicted

    def items_with_ts(self) -> list[tuple[float, T]]:
        """Snapshot of (timestamp, item) pairs currently inside the window."""
        return list(self._items)

    def drain(self) -> list[T]:
        """Empty the window and return everything that was inside."""
        out = [item for _, item in self._items]
        self._items.clear()
        return out
