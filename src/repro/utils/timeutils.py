"""Time helpers shared across the simulator and the mining pipeline.

All timestamps in the library are POSIX epoch seconds (floats).  Syslog lines
render them in the paper's ``YYYY-MM-DD HH:MM:SS`` form, always in UTC so the
"routers are NTP synchronized" assumption of Section 2 holds by construction.
"""

from __future__ import annotations

import datetime as _dt

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

_FMT = "%Y-%m-%d %H:%M:%S"
_UTC = _dt.timezone.utc


def parse_ts(text: str) -> float:
    """Parse ``YYYY-MM-DD HH:MM:SS`` (UTC) into epoch seconds."""
    dt = _dt.datetime.strptime(text.strip(), _FMT).replace(tzinfo=_UTC)
    return dt.timestamp()


def format_ts(ts: float) -> str:
    """Render epoch seconds as ``YYYY-MM-DD HH:MM:SS`` in UTC."""
    dt = _dt.datetime.fromtimestamp(ts, tz=_UTC)
    return dt.strftime(_FMT)


def day_index(ts: float, origin: float) -> int:
    """Whole number of days elapsed since ``origin`` (may be negative)."""
    return int((ts - origin) // DAY)


def week_index(ts: float, origin: float) -> int:
    """Whole number of weeks elapsed since ``origin`` (may be negative)."""
    return int((ts - origin) // (7 * DAY))
