"""Offline mining: association rules between templates, temporal patterns."""

from repro.mining.periodicity import (
    RhythmKind,
    RhythmProfile,
    analyze_rhythm,
    rhythm_report,
)
from repro.mining.rules import (
    AssociationRule,
    RuleMiner,
    RuleMiningResult,
)
from repro.mining.rulestore import RuleStore, RuleUpdateDelta
from repro.mining.temporal import TemporalParams, TemporalSplitter
from repro.mining.fit import fit_alpha, fit_beta, fit_temporal_params
from repro.mining.transactions import (
    TransactionStats,
    iter_transactions,
    transaction_stats,
)

__all__ = [
    "AssociationRule",
    "RhythmKind",
    "RhythmProfile",
    "analyze_rhythm",
    "rhythm_report",
    "RuleMiner",
    "RuleMiningResult",
    "RuleStore",
    "RuleUpdateDelta",
    "TemporalParams",
    "TemporalSplitter",
    "TransactionStats",
    "fit_alpha",
    "fit_beta",
    "fit_temporal_params",
    "iter_transactions",
    "transaction_stats",
]
