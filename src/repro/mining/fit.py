"""Offline fitting of the temporal parameters alpha and beta.

The paper picks alpha and beta per dataset by sweeping them over historical
data and taking the values that optimize the temporal-grouping compression
ratio (Figures 10 and 11), with diminishing-returns judgement on beta.
``fit_temporal_params`` automates exactly that procedure.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.mining.temporal import TemporalParams, n_groups

DEFAULT_ALPHAS = (0.01, 0.025, 0.05, 0.075, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
DEFAULT_BETAS = (2.0, 3.0, 4.0, 5.0, 6.0, 7.0)


@dataclass(frozen=True)
class TemporalFit:
    """Result of a parameter sweep."""

    params: TemporalParams
    alpha_curve: tuple[tuple[float, float], ...]  # (alpha, ratio)
    beta_curve: tuple[tuple[float, float], ...]  # (beta, ratio)


def compression_ratio(
    series: Sequence[Sequence[float]], params: TemporalParams
) -> float:
    """Temporal compression ratio: groups / messages over all key series.

    ``series`` holds one sorted timestamp list per (router, template,
    location) key — the unit temporal grouping operates on.
    """
    total_messages = sum(len(s) for s in series)
    if total_messages == 0:
        return 1.0
    total_groups = sum(n_groups(list(s), params) for s in series)
    return total_groups / total_messages


def fit_alpha(
    series: Sequence[Sequence[float]],
    beta: float = 2.0,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    base: TemporalParams = TemporalParams(),
) -> tuple[float, list[tuple[float, float]]]:
    """Sweep alpha at fixed beta; return (best_alpha, curve)."""
    curve = []
    for alpha in alphas:
        params = TemporalParams(
            alpha=alpha, beta=beta, s_min=base.s_min, s_max=base.s_max
        )
        curve.append((alpha, compression_ratio(series, params)))
    best_alpha = min(curve, key=lambda p: p[1])[0]
    return best_alpha, curve


def fit_beta(
    series: Sequence[Sequence[float]],
    alpha: float,
    betas: Sequence[float] = DEFAULT_BETAS,
    base: TemporalParams = TemporalParams(),
    improvement_floor: float = 0.02,
) -> tuple[float, list[tuple[float, float]]]:
    """Sweep beta at fixed alpha; pick the diminishing-returns knee.

    The ratio decreases monotonically in beta, so instead of the raw
    minimum we pick the smallest beta whose relative improvement over the
    previous point drops below ``improvement_floor`` — the paper's "the
    improvement of compression diminishes, thus we set beta = 5".
    """
    curve = []
    for beta in betas:
        params = TemporalParams(
            alpha=alpha, beta=beta, s_min=base.s_min, s_max=base.s_max
        )
        curve.append((beta, compression_ratio(series, params)))
    best_beta = curve[-1][0]
    for i in range(1, len(curve)):
        prev_ratio, ratio = curve[i - 1][1], curve[i][1]
        if prev_ratio == 0:
            break
        if (prev_ratio - ratio) / prev_ratio < improvement_floor:
            best_beta = curve[i][0]
            break
    return best_beta, curve


def fit_temporal_params(
    series: Sequence[Sequence[float]],
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    betas: Sequence[float] = DEFAULT_BETAS,
    base: TemporalParams = TemporalParams(),
) -> TemporalFit:
    """Full two-stage sweep: alpha at beta=2, then beta at the best alpha."""
    best_alpha, alpha_curve = fit_alpha(series, 2.0, alphas, base)
    best_beta, beta_curve = fit_beta(series, best_alpha, betas, base)
    return TemporalFit(
        params=TemporalParams(
            alpha=best_alpha, beta=best_beta, s_min=base.s_min, s_max=base.s_max
        ),
        alpha_curve=tuple(alpha_curve),
        beta_curve=tuple(beta_curve),
    )
