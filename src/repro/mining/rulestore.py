"""The incrementally maintained rule knowledge base (Section 4.1.4).

Rules are (re)mined periodically — weekly in the paper's evaluation:

* **add** a rule when, on the new period's data, ``supp(X) >= SP_min`` and
  ``conf(X => Y) >= Conf_min``;
* **delete** an existing rule only when its *updated confidence* falls
  below ``Conf_min``.  Deletion deliberately ignores support: a rule must
  not die merely because its antecedent was rare this period (it may well
  become common again) — the paper's "conservative deletion".  A rule
  whose antecedent did not occur at all is left untouched for the same
  reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mining.rules import AssociationRule, RuleMiner


@dataclass(frozen=True)
class RuleUpdateDelta:
    """Outcome of one periodic update."""

    added: tuple[AssociationRule, ...]
    deleted: tuple[AssociationRule, ...]
    total_after: int

    @property
    def churn(self) -> int:
        """Rules touched this period — the §4.1.4 add/delete volume."""
        return len(self.added) + len(self.deleted)

    def to_dict(self) -> dict:
        """JSON-ready form (promotion rejections embed refresh deltas)."""
        return {
            "added": [_rule_to_dict(r) for r in self.added],
            "deleted": [_rule_to_dict(r) for r in self.deleted],
            "total_after": self.total_after,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> RuleUpdateDelta:
        """Reconstruct a delta serialized by :meth:`to_dict`."""
        return cls(
            added=tuple(
                AssociationRule(**item) for item in payload["added"]
            ),
            deleted=tuple(
                AssociationRule(**item) for item in payload["deleted"]
            ),
            total_after=payload["total_after"],
        )


def _rule_to_dict(rule: AssociationRule) -> dict:
    return {
        "x": rule.x,
        "y": rule.y,
        "support_x": rule.support_x,
        "support_pair": rule.support_pair,
        "confidence": rule.confidence,
    }


@dataclass
class RuleStore:
    """Rule knowledge base with periodic conservative updates.

    Domain experts may optionally adjust the mined rules (the "Domain
    Expert Rule Adjustment" box of the paper's Figure 1): a *pinned* pair
    survives every confidence-based deletion, a *suppressed* pair — one
    the expert judged spurious ("puzzling or even bizarre") — is removed
    and never re-added by mining.
    """

    miner: RuleMiner
    # The paper's deletion is *conservative*: confidence only.  Setting
    # this flag also deletes rules whose antecedent support fell under
    # SP_min this period — the naive alternative the ablation bench
    # contrasts against (it loses rules over every quiet spell).
    delete_on_low_support: bool = False
    _rules: dict[tuple[str, str], AssociationRule] = field(
        default_factory=dict
    )
    _pinned: set[tuple[str, str]] = field(default_factory=set)
    _suppressed: set[tuple[str, str]] = field(default_factory=set)

    @property
    def rules(self) -> list[AssociationRule]:
        """Current rules, deterministically ordered."""
        return sorted(self._rules.values(), key=lambda r: (r.x, r.y))

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._rules

    def undirected_pairs(self) -> set[tuple[str, str]]:
        """Unordered template pairs covered by at least one rule."""
        return {rule.undirected_key() for rule in self._rules.values()}

    def diff_pairs(
        self, other: RuleStore
    ) -> tuple[tuple[tuple[str, str], ...], tuple[tuple[str, str], ...]]:
        """Undirected pairs ``other`` has that we lack, and vice versa.

        Returns ``(added, deleted)`` — what moving from ``self`` to
        ``other`` would add and delete — both deterministically sorted.
        The promotion gate checks this churn against its §4.1.4 caps.
        """
        ours = self.undirected_pairs()
        theirs = other.undirected_pairs()
        return tuple(sorted(theirs - ours)), tuple(sorted(ours - theirs))

    # ------------------------------------------------------ expert hooks

    @staticmethod
    def _undirected(x: str, y: str) -> tuple[str, str]:
        return (x, y) if x <= y else (y, x)

    def pin(self, x: str, y: str) -> None:
        """Expert-approve a pair: its rules are exempt from deletion."""
        self._pinned.add(self._undirected(x, y))

    def suppress(self, x: str, y: str) -> None:
        """Expert-reject a pair: drop its rules and block re-addition."""
        key = self._undirected(x, y)
        self._suppressed.add(key)
        for rule_key in list(self._rules):
            if self._undirected(*rule_key) == key:
                del self._rules[rule_key]

    def is_pinned(self, x: str, y: str) -> bool:
        """True when the (undirected) pair is expert-approved."""
        return self._undirected(x, y) in self._pinned

    def is_suppressed(self, x: str, y: str) -> bool:
        """True when the (undirected) pair is expert-rejected."""
        return self._undirected(x, y) in self._suppressed

    # ------------------------------------------------------------ update

    def update(
        self, events: list[tuple[float, str, str]]
    ) -> RuleUpdateDelta:
        """Fold one period's (timestamp, router, template) data in."""
        result = self.miner.mine(events)
        stats = result.stats

        added: list[AssociationRule] = []
        for rule in result.rules:
            key = (rule.x, rule.y)
            if self._undirected(*key) in self._suppressed:
                continue
            if key not in self._rules:
                added.append(rule)
            self._rules[key] = rule  # refresh stats of surviving rules

        deleted: list[AssociationRule] = []
        for key, rule in list(self._rules.items()):
            if self._undirected(*key) in self._pinned:
                continue  # expert-approved: never deleted
            if self.delete_on_low_support and (
                stats.support(rule.x) < self.miner.sp_min
            ):
                deleted.append(self._rules.pop(key))
                continue
            if stats.item_positions.get(rule.x, 0) == 0:
                continue  # antecedent absent this period: keep (conservative)
            confidence = stats.confidence(rule.x, rule.y)
            if confidence < self.miner.conf_min:
                deleted.append(self._rules.pop(key))
        return RuleUpdateDelta(
            added=tuple(added),
            deleted=tuple(deleted),
            total_after=len(self._rules),
        )
