"""Sliding-window transactions over Syslog+ streams (Section 4.1.4).

Each message template is one *item*.  A window ``W`` slides message by
message over the (per-router, time-sorted) stream; the distinct templates
inside the window form one transaction per message position.  Confining
transactions to a single router implements the "close in time *and at
related locations*" rule of thumb — cross-router relations are handled by
the location dictionary, not by rule mining.

Transactions at consecutive positions are usually identical during bursts,
so the iterator emits (itemset, multiplicity) pairs — an exact run-length
compression, not an approximation.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass


@dataclass(frozen=True)
class TransactionStats:
    """Support statistics over one mining run."""

    n_transactions: int
    n_messages: int
    item_positions: dict[str, int]  # transactions containing the item
    item_messages: dict[str, int]  # raw messages carrying the item
    pair_positions: dict[tuple[str, str], int]  # unordered template pairs

    def support(self, item: str) -> float:
        """supp(X): fraction of transactions containing item X."""
        if self.n_transactions == 0:
            return 0.0
        return self.item_positions.get(item, 0) / self.n_transactions

    def pair_support(self, x: str, y: str) -> float:
        """supp(X ∪ Y) for a template pair."""
        if self.n_transactions == 0:
            return 0.0
        key = (x, y) if x <= y else (y, x)
        return self.pair_positions.get(key, 0) / self.n_transactions

    def confidence(self, x: str, y: str) -> float:
        """conf(X ⇒ Y) = supp(X ∪ Y) / supp(X)."""
        supp_x = self.item_positions.get(x, 0)
        if supp_x == 0:
            return 0.0
        key = (x, y) if x <= y else (y, x)
        return self.pair_positions.get(key, 0) / supp_x

    def coverage_of(self, items: set[str]) -> float:
        """Fraction of raw messages whose template is in ``items``.

        This is the "coverage" column of the paper's Table 5.
        """
        if self.n_messages == 0:
            return 0.0
        covered = sum(
            count
            for item, count in self.item_messages.items()
            if item in items
        )
        return covered / self.n_messages


def iter_transactions(
    events: list[tuple[float, str, str]],
    window: float,
) -> Iterator[tuple[frozenset[str], int]]:
    """Yield (itemset, multiplicity) transactions from one router's stream.

    ``events`` are (timestamp, router, template_key), time-sorted; the
    router field is ignored here (callers pre-partition by router).  The
    transaction anchored at message ``i`` contains the templates of all
    messages in ``[t_i, t_i + W]``.
    """
    n = len(events)
    if n == 0:
        return
    in_window: Counter[str] = Counter()
    j = 0  # exclusive end of the window
    prev_set: frozenset[str] | None = None
    multiplicity = 0
    for i in range(n):
        t_i = events[i][0]
        while j < n and events[j][0] <= t_i + window:
            in_window[events[j][2]] += 1
            j += 1
        if i > 0:
            prev_template = events[i - 1][2]
            in_window[prev_template] -= 1
            if in_window[prev_template] == 0:
                del in_window[prev_template]
        current = frozenset(in_window)
        if current == prev_set:
            multiplicity += 1
        else:
            if prev_set is not None and multiplicity:
                yield prev_set, multiplicity
            prev_set = current
            multiplicity = 1
    if prev_set is not None and multiplicity:
        yield prev_set, multiplicity


def transaction_stats(
    events: list[tuple[float, str, str]],
    window: float,
) -> TransactionStats:
    """Compute item/pair support counts over a multi-router stream.

    ``events`` are (timestamp, router, template_key) in any order; they are
    partitioned per router and time-sorted internally.
    """
    by_router: dict[str, list[tuple[float, str, str]]] = {}
    item_messages: Counter[str] = Counter()
    for event in events:
        by_router.setdefault(event[1], []).append(event)
        item_messages[event[2]] += 1

    n_transactions = 0
    item_positions: Counter[str] = Counter()
    pair_positions: Counter[tuple[str, str]] = Counter()
    for router_events in by_router.values():
        router_events.sort(key=lambda e: e[0])
        for itemset, mult in iter_transactions(router_events, window):
            n_transactions += mult
            items = sorted(itemset)
            for a_idx, a in enumerate(items):
                item_positions[a] += mult
                for b in items[a_idx + 1:]:
                    pair_positions[(a, b)] += mult
    return TransactionStats(
        n_transactions=n_transactions,
        n_messages=len(events),
        item_positions=dict(item_positions),
        item_messages=dict(item_messages),
        pair_positions=dict(pair_positions),
    )
