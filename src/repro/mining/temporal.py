"""Temporal pattern model: EWMA interarrival grouping (Sections 4.1.3, 4.2.1).

Messages of one template on one location form clusters in time.  The model
predicts the next interarrival with an EWMA
``S_hat_t = alpha * S_{t-1} + (1 - alpha) * S_hat_{t-1}`` and keeps a new
arrival in the current group iff ``S_t <= beta * S_hat_t``, clamped by two
absolute thresholds:

* ``S_t <= s_min`` (1 second, the data's finest granularity): always the
  same group;
* ``S_t > s_max`` (3 hours, domain knowledge): always a new group — the
  EWMA alone cannot guarantee convergence, since each accepted ``S_t`` may
  be up to ``beta`` times the prediction and thus grow geometrically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.ewma import EwmaEstimator
from repro.utils.timeutils import HOUR


@dataclass(frozen=True)
class TemporalParams:
    """Parameters of the temporal grouping model."""

    alpha: float = 0.05
    beta: float = 5.0
    s_min: float = 1.0
    s_max: float = 3 * HOUR

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.beta < 1.0:
            raise ValueError("beta must be >= 1")
        if self.s_min < 0 or self.s_max <= self.s_min:
            raise ValueError("need 0 <= s_min < s_max")


@dataclass
class TemporalSplitter:
    """Online group assignment for one (template, location) key.

    Feed timestamps in non-decreasing order; :meth:`observe` returns the
    group index of each arrival (0-based, increasing).  The EWMA keeps
    learning across group boundaries — it models the template's rhythm —
    but observations are clamped at ``s_max`` so one long quiet spell does
    not blow up the prediction.

    ``skew_tolerance`` absorbs collector clock skew: a timestamp up to
    that far behind the previous one is clamped to a zero interarrival
    (indistinguishable from simultaneous, hence same group) instead of
    raising.
    """

    params: TemporalParams
    skew_tolerance: float = 0.0
    _ewma: EwmaEstimator = field(init=False)
    _last_ts: float | None = field(init=False, default=None)
    _group: int = field(init=False, default=-1)

    def __post_init__(self) -> None:
        self._ewma = EwmaEstimator(self.params.alpha)

    @property
    def current_group(self) -> int:
        """Index of the group the most recent arrival joined."""
        return self._group

    @property
    def last_ts(self) -> float:
        """Timestamp of the most recent arrival (-inf before the first)."""
        return self._last_ts if self._last_ts is not None else float("-inf")

    def observe(self, ts: float) -> int:
        """Assign ``ts`` to a group and update the model."""
        if self._last_ts is None:
            self._group = 0
            self._last_ts = ts
            return self._group
        interarrival = ts - self._last_ts
        if interarrival < 0:
            if interarrival < -self.skew_tolerance:
                raise ValueError(
                    f"timestamps must be non-decreasing "
                    f"({ts} < {self._last_ts})"
                )
            # Small collector skew: treat as simultaneous and keep the
            # stream clock monotone.
            interarrival = 0.0
            ts = self._last_ts
        if not self._same_group(interarrival):
            self._group += 1
        # Repeats at or below the data's time granularity (s_min) are
        # indistinguishable from simultaneous and carry no rhythm
        # information — feeding them would collapse the prediction and
        # split every later arrival.  Long quiet spells are capped at
        # s_max so one outage cannot blow the prediction up.
        if interarrival > self.params.s_min:
            self._ewma.observe(min(interarrival, self.params.s_max))
        self._last_ts = ts
        return self._group

    def _same_group(self, interarrival: float) -> bool:
        p = self.params
        if interarrival <= p.s_min:
            return True
        if interarrival > p.s_max:
            return False
        prediction = self._ewma.prediction
        if prediction is None:
            # No rhythm learned yet: within s_max is the only evidence.
            return True
        return interarrival <= p.beta * max(prediction, p.s_min)


def split_series(
    timestamps: list[float], params: TemporalParams
) -> list[int]:
    """Group indices for a whole sorted series (batch convenience)."""
    splitter = TemporalSplitter(params)
    return [splitter.observe(ts) for ts in timestamps]


def n_groups(timestamps: list[float], params: TemporalParams) -> int:
    """Number of temporal groups a sorted series splits into."""
    if not timestamps:
        return 0
    return split_series(timestamps, params)[-1] + 1
