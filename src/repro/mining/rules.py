"""Pairwise association-rule mining between message templates.

Following Agrawal-style association mining specialized as the paper does:
items are message templates, transactions come from a sliding window ``W``
(:mod:`repro.mining.transactions`), rules are pairwise only
(``|X| = |Y| = 1``) and kept when ``supp(X) >= SP_min`` and
``conf(X => Y) >= Conf_min``.  Pairwise rules are cheap to mine and easy
for a domain expert to eyeball; transitive grouping later merges more than
two templates into one event anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mining.transactions import TransactionStats, transaction_stats


@dataclass(frozen=True)
class AssociationRule:
    """A directed rule ``x => y`` with its mined statistics."""

    x: str
    y: str
    support_x: float
    support_pair: float
    confidence: float

    def undirected_key(self) -> tuple[str, str]:
        """Canonical unordered pair, used by rule-based grouping."""
        return (self.x, self.y) if self.x <= self.y else (self.y, self.x)


@dataclass
class RuleMiningResult:
    """Everything one mining pass produced."""

    rules: list[AssociationRule]
    stats: TransactionStats
    eligible_items: set[str] = field(default_factory=set)

    @property
    def n_rules(self) -> int:
        """Number of directed rules mined."""
        return len(self.rules)

    def undirected_pairs(self) -> set[tuple[str, str]]:
        """Unordered template pairs covered by at least one rule."""
        return {rule.undirected_key() for rule in self.rules}

    def eligible_fraction(self) -> float:
        """Fraction of template types meeting SP_min (Table 5 "top %")."""
        n_types = len(self.stats.item_messages)
        if n_types == 0:
            return 0.0
        return len(self.eligible_items) / n_types

    def coverage(self) -> float:
        """Message coverage of the eligible types (Table 5 "coverage")."""
        return self.stats.coverage_of(self.eligible_items)


@dataclass(frozen=True)
class RuleMiner:
    """Association-rule miner with the paper's three parameters.

    Parameters
    ----------
    window:
        Sliding window ``W`` in seconds.
    sp_min:
        Minimum support of the antecedent item.
    conf_min:
        Minimum rule confidence.
    """

    window: float = 120.0
    sp_min: float = 0.0005
    conf_min: float = 0.8

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not 0.0 <= self.sp_min <= 1.0:
            raise ValueError("sp_min must be in [0, 1]")
        if not 0.0 <= self.conf_min <= 1.0:
            raise ValueError("conf_min must be in [0, 1]")

    def mine(
        self, events: list[tuple[float, str, str]]
    ) -> RuleMiningResult:
        """Mine rules from (timestamp, router, template_key) events."""
        stats = transaction_stats(events, self.window)
        return self.rules_from_stats(stats)

    def rules_from_stats(self, stats: TransactionStats) -> RuleMiningResult:
        """Derive the rule set from precomputed support statistics.

        Splitting this out lets parameter sweeps (Figures 6/7) reuse one
        expensive counting pass across many (sp_min, conf_min) settings.
        """
        eligible = {
            item
            for item in stats.item_positions
            if stats.support(item) >= self.sp_min
        }
        rules: list[AssociationRule] = []
        for (a, b), pair_count in stats.pair_positions.items():
            if pair_count == 0:
                continue
            for x, y in ((a, b), (b, a)):
                if x not in eligible or y not in eligible:
                    continue
                confidence = pair_count / stats.item_positions[x]
                if confidence >= self.conf_min:
                    rules.append(
                        AssociationRule(
                            x=x,
                            y=y,
                            support_x=stats.support(x),
                            support_pair=pair_count / max(stats.n_transactions, 1),
                            confidence=confidence,
                        )
                    )
        rules.sort(key=lambda r: (-r.confidence, r.x, r.y))
        return RuleMiningResult(
            rules=rules, stats=stats, eligible_items=eligible
        )
