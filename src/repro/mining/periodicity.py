"""Offline periodicity analysis of per-template arrival series.

Section 4.1.3 observes two characteristic temporal patterns — dense bursts
(the Figure 4 controller) and steady periodic recurrence (the Figure 5
bad-auth timer).  The EWMA grouper handles both online; this module is the
offline analysis side: classify a series and estimate its period, which
feeds capacity/reporting decisions and makes the learned "temporal
pattern" knowledge inspectable.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.utils.stats import mean, quantile


class RhythmKind(enum.Enum):
    """Temporal character of one (router, template) arrival series."""

    PERIODIC = "periodic"  # steady timer-like recurrence
    BURSTY = "bursty"  # dense clusters separated by long quiet
    SPORADIC = "sporadic"  # no usable temporal structure
    SINGLETON = "singleton"  # too few observations to tell


@dataclass(frozen=True)
class RhythmProfile:
    """Summary of one series' temporal behaviour."""

    kind: RhythmKind
    n: int
    period: float | None  # median interarrival, for PERIODIC
    cv: float | None  # coefficient of variation of interarrivals
    burst_fraction: float | None  # share of gaps below half the median


def analyze_rhythm(
    timestamps: Sequence[float],
    periodic_cv: float = 0.5,
    min_points: int = 5,
) -> RhythmProfile:
    """Classify a sorted arrival series.

    A series is PERIODIC when interarrival variability is low
    (CV <= ``periodic_cv``); BURSTY when the gap distribution is strongly
    bimodal (the top decile of gaps dwarfs the median); SPORADIC
    otherwise.
    """
    n = len(timestamps)
    if n < min_points:
        return RhythmProfile(RhythmKind.SINGLETON, n, None, None, None)
    gaps = [
        b - a for a, b in zip(timestamps, timestamps[1:]) if b - a >= 0
    ]
    if any(b < a for a, b in zip(timestamps, timestamps[1:])):
        raise ValueError("timestamps must be sorted")
    gap_mean = mean(gaps)
    if gap_mean == 0:
        return RhythmProfile(RhythmKind.BURSTY, n, None, 0.0, 1.0)
    variance = mean([(g - gap_mean) ** 2 for g in gaps])
    cv = variance**0.5 / gap_mean
    median_gap = quantile(gaps, 0.5)
    burst_fraction = sum(
        1 for g in gaps if g < 0.5 * max(median_gap, 1e-9)
    ) / len(gaps)

    if cv <= periodic_cv:
        return RhythmProfile(
            RhythmKind.PERIODIC, n, median_gap, cv, burst_fraction
        )
    # Bursty: the mean gap dwarfs the median — most gaps are tiny, a few
    # long quiet spells dominate the total span.
    if median_gap >= 0 and gap_mean >= 5 * max(median_gap, 1e-9):
        return RhythmProfile(
            RhythmKind.BURSTY, n, None, cv, burst_fraction
        )
    return RhythmProfile(RhythmKind.SPORADIC, n, None, cv, burst_fraction)


def rhythm_report(
    series: dict[tuple, Sequence[float]], top: int = 20
) -> list[tuple[tuple, RhythmProfile]]:
    """Profiles of the largest series, biggest first."""
    ordered = sorted(series.items(), key=lambda kv: -len(kv[1]))[:top]
    return [(key, analyze_rhythm(list(ts))) for key, ts in ordered]
