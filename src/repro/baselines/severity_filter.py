"""Vendor-severity triage baseline.

Keeps only messages at or above a vendor severity level — the practice
Section 2 of the paper criticizes: vendor severities rank local element
impact, not network impact (a CPU threshold beats a link down in some
router OSes), so filtering by them both floods and misses.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.syslog.message import SyslogMessage


def severity_filter(
    messages: Iterable[SyslogMessage], max_severity: int = 3
) -> list[SyslogMessage]:
    """Messages whose vendor severity is ``<= max_severity`` (more severe).

    Messages without a parseable severity are dropped, as a
    severity-driven monitoring system would drop them.
    """
    out = []
    for message in messages:
        severity = message.severity
        if severity is not None and severity <= max_severity:
            out.append(message)
    return out
