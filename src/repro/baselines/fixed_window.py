"""Naive fixed-inactivity-gap grouping baseline.

Groups messages of the same (router, error code) whenever consecutive
messages are closer than a fixed gap.  No templates, no locations, no
learned rhythm — the scripting-level triage SyslogDigest replaces.  Used
by the ablation bench to show what the EWMA model and the rule/cross
passes buy.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.syslog.message import SyslogMessage


def fixed_window_groups(
    messages: Iterable[SyslogMessage], gap: float = 300.0
) -> list[list[SyslogMessage]]:
    """Group by (router, error_code) with a fixed inactivity gap."""
    if gap < 0:
        raise ValueError("gap must be non-negative")
    ordered = sorted(messages, key=lambda m: m.timestamp)
    open_groups: dict[tuple[str, str], list[SyslogMessage]] = {}
    done: list[list[SyslogMessage]] = []
    for message in ordered:
        key = (message.router, message.error_code)
        group = open_groups.get(key)
        if group is not None and message.timestamp - group[-1].timestamp <= gap:
            group.append(message)
        else:
            if group is not None:
                done.append(group)
            open_groups[key] = [message]
    done.extend(open_groups.values())
    done.sort(key=lambda g: g[0].timestamp)
    return done
