"""Baselines SyslogDigest is compared against in the benches.

* :mod:`~repro.baselines.fixed_window` — naive grouping by a fixed
  inactivity gap per (router, error code), what an operator's ad-hoc
  scripts typically do;
* :mod:`~repro.baselines.severity_filter` — the vendor-severity triage the
  paper argues against (Section 2);
* :mod:`~repro.baselines.drain` — a Drain-style fixed-depth parse-tree
  template miner, the de-facto standard from later log-parsing work, as an
  alternative to the paper's sub-type trees.
"""

from repro.baselines.drain import DrainMiner
from repro.baselines.fixed_window import fixed_window_groups
from repro.baselines.severity_filter import severity_filter

__all__ = ["DrainMiner", "fixed_window_groups", "severity_filter"]
