"""A Drain-style online template miner (He et al., ICWS 2017), simplified.

Later log-parsing work converged on fixed-depth parse trees: route a
message by token count, then by its first ``depth`` tokens (a token
becomes ``<*>`` once too many distinct values pass through), then match
against leaf clusters by token-wise similarity.  Included as a baseline so
the ablation bench can compare template quality against the paper's
frequent-word sub-type trees on the same ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.syslog.message import SyslogMessage
from repro.templates.tokenize import tokenize

_WILDCARD = "<*>"


@dataclass
class _Cluster:
    """One leaf cluster: a token pattern with wildcards."""

    tokens: list[str]

    def similarity(self, tokens: tuple[str, ...]) -> float:
        """Token-wise similarity of ``tokens`` to this cluster."""
        same = sum(
            1
            for a, b in zip(self.tokens, tokens)
            if a == b or a == _WILDCARD
        )
        return same / len(self.tokens) if self.tokens else 1.0

    def absorb(self, tokens: tuple[str, ...]) -> None:
        """Fold ``tokens`` in, wildcarding positions that differ."""
        for i, (a, b) in enumerate(zip(self.tokens, tokens)):
            if a != b:
                self.tokens[i] = _WILDCARD

    def pattern(self) -> str:
        """The cluster's token pattern with ``<*>`` wildcards."""
        return " ".join(self.tokens)


@dataclass
class DrainMiner:
    """Fixed-depth-tree online template miner.

    Parameters
    ----------
    depth:
        Number of leading tokens used for routing.
    sim_threshold:
        Minimum token-wise similarity to join an existing cluster.
    max_children:
        Per-node branching cap; overflowing tokens route to a wildcard
        child (Drain's guard against variable leading tokens).
    """

    depth: int = 3
    sim_threshold: float = 0.5
    max_children: int = 24
    _tree: dict = field(default_factory=dict)

    def fit(self, messages) -> None:
        """Route a whole stream of messages through the tree."""
        for message in messages:
            self.add(message)

    def add(self, message: SyslogMessage) -> str:
        """Route one message; returns the cluster pattern it joined."""
        tokens = (message.error_code,) + tokenize(message.detail)
        node = self._tree.setdefault(len(tokens), {})
        for token in tokens[: self.depth]:
            children = node.setdefault("children", {})
            if token in children:
                node = children[token]
            elif len(children) < self.max_children:
                children[token] = {}
                node = children[token]
            else:
                node = children.setdefault(_WILDCARD, {})
        clusters: list[_Cluster] = node.setdefault("clusters", [])
        best: _Cluster | None = None
        best_sim = self.sim_threshold
        for cluster in clusters:
            if len(cluster.tokens) != len(tokens):
                continue
            sim = cluster.similarity(tokens)
            if sim >= best_sim:
                best, best_sim = cluster, sim
        if best is None:
            best = _Cluster(tokens=list(tokens))
            clusters.append(best)
        else:
            best.absorb(tokens)
        return best.pattern()

    def clusters(self) -> list[str]:
        """All cluster patterns mined so far."""
        out: list[str] = []

        def walk(node: dict) -> None:
            out.extend(c.pattern() for c in node.get("clusters", []))
            for child in node.get("children", {}).values():
                walk(child)

        for root in self._tree.values():
            walk(root)
        return sorted(out)

    def constant_words_of(self, pattern: str) -> tuple[str, ...]:
        """Constant words of a cluster pattern (drops the error code)."""
        words = pattern.split()[1:]
        return tuple(w for w in words if w != _WILDCARD)
