"""Message template (signature) learning — Section 4.1.1 of the paper.

Raw messages of one error code are decomposed into whitespace words; a
sub-type tree is grown by repeatedly carving out the most frequent word
combination (breadth-first, recursively), then pruned: a node with more
than ``k`` children — the signature of a *variable* field exploding into
many values — becomes a leaf.  Each root-to-leaf path is a template.
"""

from repro.templates.evaluate import TemplateAccuracy, template_accuracy
from repro.templates.learner import TemplateLearner, TemplateSet
from repro.templates.signature import Template, matches_words
from repro.templates.tree import SubtypeNode, build_subtype_tree
from repro.templates.tokenize import tokenize

__all__ = [
    "SubtypeNode",
    "Template",
    "TemplateAccuracy",
    "TemplateLearner",
    "TemplateSet",
    "build_subtype_tree",
    "matches_words",
    "template_accuracy",
    "tokenize",
]
