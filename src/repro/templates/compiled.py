"""Compiled template index: signature matching without per-template probes.

The naive matcher probes every learned template of a message's error code
with the ordered-subsequence test — O(templates × message words) per
message, and templates of one code routinely number in the dozens.  The
compiled index answers the same query with three prefilters that are all
*necessary* conditions for a match, so it can never change the winner:

1. **word-count bucket** — a signature longer than the message can never
   be an ordered subsequence of it;
2. **discriminating literal** — every template with at least one
   signature word is indexed under its rarest word (document frequency
   across the code's templates); a template can only match a message
   that contains that word, so candidate collection is a handful of dict
   probes over the message's distinct words instead of a scan of the
   whole template list;
3. **word-set containment** — a frozenset inclusion check (C speed)
   rejects near-misses before the ordered-subsequence verify runs.

Candidates that survive all three run the exact
:func:`~repro.templates.signature.matches_words` verify, and the winner
is the matching template with the best ``(-specificity, key)`` rank —
the same explicit, learn-order-independent tie-break the naive matcher
applies.  A property test pins index ≡ naive over the full netsim
catalog plus fuzzed unseen shapes.
"""

from __future__ import annotations

from repro.templates.signature import Template, matches_words

#: Bound on the per-instance cache of ``<code>/other`` fallback templates;
#: unseen error codes are adversary-controlled input, so the cache must
#: not grow without bound.  Cleared wholesale when full.
_MAX_FALLBACK_CACHE = 4096


class _CodeIndex:
    """Matching index for the templates of one error code."""

    __slots__ = ("entries", "by_literal", "unconditional")

    def __init__(self, templates: list[Template]) -> None:
        # Rank order is the tie-break order: most specific first, ties on
        # key.  Entry layout: (rank, template, word_set, n_words).
        ranked = sorted(templates, key=lambda t: (-t.specificity, t.key))
        self.entries = [
            (rank, t, frozenset(t.words), len(t.words))
            for rank, t in enumerate(ranked)
        ]
        # Document frequency of each signature word within this code.
        frequency: dict[str, int] = {}
        for _, t, word_set, _ in self.entries:
            for word in word_set:
                frequency[word] = frequency.get(word, 0) + 1
        self.by_literal: dict[str, list[tuple]] = {}
        self.unconditional: list[tuple] = []
        for entry in self.entries:
            _, template, word_set, _ = entry
            if not word_set:
                # Zero-word template: matches every message of the code.
                self.unconditional.append(entry)
                continue
            literal = min(word_set, key=lambda w: (frequency[w], w))
            self.by_literal.setdefault(literal, []).append(entry)

    def match_words(self, words: tuple[str, ...]) -> Template | None:
        """Best-ranked template matching ``words`` (None when none do)."""
        n = len(words)
        word_set = set(words)
        best_rank = -1
        best: Template | None = None
        for entry in self.unconditional:
            rank = entry[0]
            if best is None or rank < best_rank:
                best_rank, best = rank, entry[1]
            break  # unconditional entries are rank-sorted; first wins
        by_literal = self.by_literal
        for word in word_set:
            for rank, template, sig_set, sig_n in by_literal.get(word, ()):
                if best is not None and rank > best_rank:
                    continue
                if sig_n > n or not sig_set <= word_set:
                    continue
                if matches_words(template.words, words):
                    best_rank, best = rank, template
        return best


class CompiledTemplateSet:
    """All per-code indexes of one template set, plus shared fallbacks.

    Built once per knowledge base (the :class:`~repro.templates.learner.
    TemplateSet` caches the compiled form and invalidates it on
    mutation); matching is then read-only and safe to share.
    """

    def __init__(self, by_code: dict[str, list[Template]]) -> None:
        self._by_code = {
            code: _CodeIndex(templates)
            for code, templates in by_code.items()
        }
        # ``<code>/other`` fallbacks interned so every non-matching
        # message of one code shares a single Template object (and its
        # key string, whose hash the grouping passes then reuse).
        self._fallbacks: dict[str, Template] = {}

    def fallback(self, code: str) -> Template:
        """The shared catch-all template for ``code``."""
        template = self._fallbacks.get(code)
        if template is None:
            if len(self._fallbacks) >= _MAX_FALLBACK_CACHE:
                self._fallbacks.clear()
            template = Template(key=f"{code}/other", error_code=code, words=())
            self._fallbacks[code] = template
        return template

    def match_words(self, code: str, words: tuple[str, ...]) -> Template:
        """Most specific template of ``code`` matching ``words``.

        Identical to the naive per-template probe with the
        ``(-specificity, key)`` tie-break, falling back to the shared
        ``<code>/other`` template.
        """
        index = self._by_code.get(code)
        if index is not None:
            best = index.match_words(words)
            if best is not None:
                return best
        return self.fallback(code)
