"""Template learning and matching over whole message streams.

:class:`TemplateLearner` groups historical messages by error code, builds a
sub-type tree per code, and converts every root-to-leaf path into a
:class:`~repro.templates.signature.Template`.  :class:`TemplateSet` then
matches live messages to the most specific learned template — the online
"signature matching" stage that turns raw syslog into Syslog+.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.syslog.message import SyslogMessage
from repro.templates.signature import Template
from repro.templates.tokenize import tokenize
from repro.templates.tree import SubtypeNode, build_subtype_tree


@dataclass
class TemplateSet:
    """All templates learned for one network, indexed by error code."""

    by_code: dict[str, list[Template]] = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(len(ts) for ts in self.by_code.values())

    def all_templates(self) -> list[Template]:
        """Every learned template, across all error codes."""
        return [t for ts in self.by_code.values() for t in ts]

    def get(self, key: str) -> Template | None:
        """Look up a template by its key."""
        for templates in self.by_code.values():
            for template in templates:
                if template.key == key:
                    return template
        return None

    def match(self, message: SyslogMessage) -> Template:
        """Most specific template matching ``message``.

        Messages of an unseen error code, or ones matching no learned
        sub-type, fall back to a code-level catch-all template (key
        ``<code>/other``) — online processing must never drop a message
        just because offline learning had not seen its shape.
        """
        words = tokenize(message.detail)
        best: Template | None = None
        for template in self.by_code.get(message.error_code, ()):
            if template.matches(words) and (
                best is None or template.specificity > best.specificity
            ):
                best = template
        if best is not None:
            return best
        return Template(
            key=f"{message.error_code}/other",
            error_code=message.error_code,
            words=(),
        )

    def merge(self, other: TemplateSet) -> None:
        """Add templates from ``other`` for codes this set does not know."""
        for code, templates in other.by_code.items():
            self.by_code.setdefault(code, list(templates))


@dataclass(frozen=True)
class TemplateLearner:
    """Offline template learner.

    Parameters
    ----------
    k:
        Sub-type tree prune threshold (paper: 10).
    max_messages_per_code:
        Per-code subsample cap; tree construction is superlinear in the
        message count and a few thousand examples pin down the frequent
        combinations.  ``None`` disables sampling.
    seed:
        Subsampling seed, for reproducibility.
    """

    k: int = 10
    max_messages_per_code: int | None = 4000
    min_subtype_support: int = 3
    seed: int = 0

    def learn(self, messages: Iterable[SyslogMessage]) -> TemplateSet:
        """Learn templates from historical messages."""
        by_code: dict[str, list[tuple[str, ...]]] = {}
        for message in messages:
            by_code.setdefault(message.error_code, []).append(
                tokenize(message.detail)
            )
        out = TemplateSet()
        rng = random.Random(self.seed)
        for code in sorted(by_code):
            tokenized = by_code[code]
            if (
                self.max_messages_per_code is not None
                and len(tokenized) > self.max_messages_per_code
            ):
                tokenized = rng.sample(tokenized, self.max_messages_per_code)
            tree = build_subtype_tree(
                tokenized, k=self.k, min_support=self.min_subtype_support
            )
            out.by_code[code] = _templates_from_tree(code, tree, tokenized)
        return out


def _ordered_by_position(
    words: frozenset[str], representative: Sequence[str]
) -> tuple[str, ...]:
    """Order a word set by first occurrence in a representative message."""
    position = {}
    for i, word in enumerate(representative):
        if word in words and word not in position:
            position[word] = i
    # Signature words are common to all member messages, so every word has
    # a position; guard anyway to stay total.
    return tuple(sorted(words, key=lambda w: position.get(w, len(representative))))


def _templates_from_tree(
    code: str, tree: SubtypeNode, tokenized: list[tuple[str, ...]]
) -> list[Template]:
    """One template per leaf path of the sub-type tree."""
    templates: list[Template] = []
    counter = 0
    for node, path_words in tree.walk():
        if not node.is_leaf or not node.message_ids:
            continue
        representative = tokenized[node.message_ids[0]]
        ordered = _ordered_by_position(path_words, representative)
        templates.append(
            Template(key=f"{code}/{counter}", error_code=code, words=ordered)
        )
        counter += 1
    if not templates:
        templates.append(Template(key=f"{code}/0", error_code=code, words=()))
    # Most specific first so matching can stop early if desired.
    templates.sort(key=lambda t: -t.specificity)
    return templates
