"""Template learning and matching over whole message streams.

:class:`TemplateLearner` groups historical messages by error code, builds a
sub-type tree per code, and converts every root-to-leaf path into a
:class:`~repro.templates.signature.Template`.  :class:`TemplateSet` then
matches live messages to the most specific learned template — the online
"signature matching" stage that turns raw syslog into Syslog+.

Matching runs on a lazily compiled index (:mod:`repro.templates.compiled`)
that prefilters candidates by word count, a discriminating literal, and
word-set containment before the exact ordered-subsequence verify; the
naive per-template probe is kept as :meth:`TemplateSet.match_reference`
and the two are pinned identical by a property test and the ``make
check`` byte-identity gate.  Ties in specificity break explicitly on
``(specificity, key)`` in both paths, so the winner never depends on the
order templates were learned or merged in.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.hotpath import reference_enabled
from repro.syslog.message import SyslogMessage
from repro.templates.compiled import CompiledTemplateSet
from repro.templates.signature import Template
from repro.templates.tokenize import tokenize
from repro.templates.tree import SubtypeNode, build_subtype_tree


def _rank(template: Template) -> tuple[int, str]:
    """Match preference: most specific first, ties on key."""
    return (-template.specificity, template.key)


@dataclass
class TemplateSet:
    """All templates learned for one network, indexed by error code.

    ``by_code`` must only be mutated through :meth:`merge` (or before the
    first match): matching compiles an index over the templates and
    caches it, and only :meth:`merge` knows to invalidate that cache.
    """

    by_code: dict[str, list[Template]] = field(default_factory=dict)
    _compiled: CompiledTemplateSet | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return sum(len(ts) for ts in self.by_code.values())

    def __getstate__(self) -> dict:
        # The compiled index is a pure cache; shipping it to process-pool
        # workers would bloat every payload, so it is rebuilt on demand.
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    def all_templates(self) -> list[Template]:
        """Every learned template, across all error codes."""
        return [t for ts in self.by_code.values() for t in ts]

    def get(self, key: str) -> Template | None:
        """Look up a template by its key."""
        for templates in self.by_code.values():
            for template in templates:
                if template.key == key:
                    return template
        return None

    def compiled(self) -> CompiledTemplateSet:
        """The compiled matching index (built lazily, cached)."""
        if self._compiled is None:
            self._compiled = CompiledTemplateSet(self.by_code)
        return self._compiled

    def match(self, message: SyslogMessage) -> Template:
        """Most specific template matching ``message``.

        Messages of an unseen error code, or ones matching no learned
        sub-type, fall back to a code-level catch-all template (key
        ``<code>/other``) — online processing must never drop a message
        just because offline learning had not seen its shape.

        Equal-specificity ties break on the smaller template key, so the
        winner is deterministic regardless of learn or merge order.
        """
        return self.match_words(message.error_code, tokenize(message.detail))

    def match_words(self, code: str, words: tuple[str, ...]) -> Template:
        """:meth:`match` on a pre-tokenized detail (one-pass hot path)."""
        if reference_enabled():
            return self.match_reference(code, words)
        return self.compiled().match_words(code, words)

    def match_reference(
        self, code: str, words: tuple[str, ...]
    ) -> Template:
        """The naive per-template probe (the compiled index's oracle)."""
        best: Template | None = None
        for template in self.by_code.get(code, ()):
            if template.matches(words) and (
                best is None or _rank(template) < _rank(best)
            ):
                best = template
        if best is not None:
            return best
        return Template(key=f"{code}/other", error_code=code, words=())

    def merge(self, other: TemplateSet) -> None:
        """Union ``other``'s templates into this set, per error code.

        Codes only ``other`` knows are adopted wholesale; for shared
        codes the sub-type lists are unioned with key-level dedup, so a
        code both sets know keeps *both* sides' sub-types instead of
        silently dropping ``other``'s.  Two templates with the same key
        but different contents are a corrupt merge and raise
        ``ValueError`` rather than letting one silently win.
        """
        for code, templates in other.by_code.items():
            mine = self.by_code.get(code)
            if mine is None:
                self.by_code[code] = sorted(templates, key=_rank)
                continue
            known = {t.key: t for t in mine}
            for template in templates:
                existing = known.get(template.key)
                if existing is None:
                    mine.append(template)
                    known[template.key] = template
                elif existing != template:
                    raise ValueError(
                        f"template key {template.key!r} maps to different "
                        f"templates in the two sets being merged"
                    )
            mine.sort(key=_rank)
        self._compiled = None


@dataclass(frozen=True)
class TemplateLearner:
    """Offline template learner.

    Parameters
    ----------
    k:
        Sub-type tree prune threshold (paper: 10).
    max_messages_per_code:
        Per-code subsample cap; tree construction is superlinear in the
        message count and a few thousand examples pin down the frequent
        combinations.  ``None`` disables sampling.
    seed:
        Subsampling seed, for reproducibility.
    """

    k: int = 10
    max_messages_per_code: int | None = 4000
    min_subtype_support: int = 3
    seed: int = 0

    def learn(self, messages: Iterable[SyslogMessage]) -> TemplateSet:
        """Learn templates from historical messages."""
        by_code: dict[str, list[tuple[str, ...]]] = {}
        for message in messages:
            by_code.setdefault(message.error_code, []).append(
                tokenize(message.detail)
            )
        out = TemplateSet()
        rng = random.Random(self.seed)
        for code in sorted(by_code):
            tokenized = by_code[code]
            if (
                self.max_messages_per_code is not None
                and len(tokenized) > self.max_messages_per_code
            ):
                tokenized = rng.sample(tokenized, self.max_messages_per_code)
            tree = build_subtype_tree(
                tokenized, k=self.k, min_support=self.min_subtype_support
            )
            out.by_code[code] = _templates_from_tree(code, tree, tokenized)
        return out


def _ordered_by_position(
    words: frozenset[str], representative: Sequence[str]
) -> tuple[str, ...]:
    """Order a word set by first occurrence in a representative message."""
    position = {}
    for i, word in enumerate(representative):
        if word in words and word not in position:
            position[word] = i
    # Signature words are common to all member messages, so every word has
    # a position; guard anyway to stay total.
    return tuple(sorted(words, key=lambda w: position.get(w, len(representative))))


def _templates_from_tree(
    code: str, tree: SubtypeNode, tokenized: list[tuple[str, ...]]
) -> list[Template]:
    """One template per leaf path of the sub-type tree."""
    templates: list[Template] = []
    counter = 0
    for node, path_words in tree.walk():
        if not node.is_leaf or not node.message_ids:
            continue
        representative = tokenized[node.message_ids[0]]
        ordered = _ordered_by_position(path_words, representative)
        templates.append(
            Template(key=f"{code}/{counter}", error_code=code, words=ordered)
        )
        counter += 1
    if not templates:
        templates.append(Template(key=f"{code}/0", error_code=code, words=()))
    # Stored in match-preference order: most specific first, ties on key
    # (the matcher applies the same rank explicitly, so storage order is
    # cosmetic — but keeping them aligned makes dumps readable).
    templates.sort(key=_rank)
    return templates
