"""Sub-type tree construction (Section 4.1.1, Figure 2).

Given all messages of one error code, grow a tree whose root is the error
code and whose nodes carry *word combinations*:

1. At a node, among the messages it is associated with (considering only
   words not already in ancestor signatures), find the most frequent word;
   the messages containing it form a child whose signature is the set of
   remaining words common to **all** of them (the "most frequent
   combination of words ... which can associate with most messages").
2. Repeat on the leftover messages until every message is associated with
   a child; then recurse into each child (breadth-first).
3. Prune: a node with more than ``k`` children is made a leaf (its children
   discarded) — many children means the distinguishing word is a variable
   field, not a sub-type.  The paper uses ``k = 10``.

Each root-to-leaf path is one template.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class SubtypeNode:
    """One node of the sub-type tree.

    ``signature`` holds only the words added *at this node*; the full
    template is the union of signatures along the root path, ordered by
    position in a representative message.
    """

    signature: frozenset[str]
    message_ids: list[int]
    children: list[SubtypeNode] = field(default_factory=list)
    pruned: bool = False

    @property
    def is_leaf(self) -> bool:
        """True when this node has no children (a template endpoint)."""
        return not self.children

    def walk(self):
        """Yield (node, path_signature_words_set) depth-first."""
        stack: list[tuple[SubtypeNode, frozenset[str]]] = [
            (self, self.signature)
        ]
        while stack:
            node, acc = stack.pop()
            yield node, acc
            for child in node.children:
                stack.append((child, acc | child.signature))


def _most_frequent_word(
    messages: list[tuple[str, ...]],
    ids: list[int],
    excluded: frozenset[str],
) -> str | None:
    """Most frequent not-yet-used word among the given messages.

    Frequency is document frequency (message count, not occurrences); ties
    break lexicographically for determinism.
    """
    counter: Counter[str] = Counter()
    for mid in ids:
        seen = set(messages[mid]) - excluded
        counter.update(seen)
    if not counter:
        return None
    best_count = max(counter.values())
    candidates = [w for w, c in counter.items() if c == best_count]
    return min(candidates)


def _common_words(
    messages: list[tuple[str, ...]],
    ids: list[int],
    excluded: frozenset[str],
) -> frozenset[str]:
    """Words (outside ``excluded``) present in every listed message."""
    common: set[str] | None = None
    for mid in ids:
        words = set(messages[mid]) - excluded
        common = words if common is None else (common & words)
        if not common:
            break
    return frozenset(common or ())


def build_subtype_tree(
    messages: list[tuple[str, ...]],
    k: int = 10,
    max_depth: int = 12,
    min_support: int = 3,
) -> SubtypeNode:
    """Build the pruned sub-type tree over tokenized messages.

    Parameters
    ----------
    messages:
        Tokenized details, one tuple of words per message.
    k:
        Prune threshold: a node acquiring more than ``k`` children becomes
        a leaf.
    max_depth:
        Safety bound on recursion (real trees are shallow).
    min_support:
        A sub-type must be backed by at least this many messages ("usually
        there would be many more messages associated with each sub type" —
        §4.1.1); a candidate word rarer than that stops the split.  The
        bound is relaxed to the node size for very small nodes.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    root = SubtypeNode(
        signature=frozenset(), message_ids=list(range(len(messages)))
    )
    if not messages:
        return root
    # Breadth-first expansion, per the paper's construction order.
    queue: list[tuple[SubtypeNode, frozenset[str], int]] = [
        (root, frozenset(), 0)
    ]
    while queue:
        node, used_words, depth = queue.pop(0)
        if depth >= max_depth or len(node.message_ids) == 0:
            continue
        children = _expand(messages, node, used_words, k, min_support)
        if children is None:
            node.pruned = True
            continue
        if not children:
            continue
        # A single child carrying no new words would recurse forever.
        children = [c for c in children if c.signature or len(children) > 1]
        node.children = children
        for child in children:
            queue.append((child, used_words | child.signature, depth + 1))
    return root


def _expand(
    messages: list[tuple[str, ...]],
    node: SubtypeNode,
    used_words: frozenset[str],
    k: int,
    min_support: int,
) -> list[SubtypeNode] | None:
    """Create children of ``node``; ``None`` means pruned (> k children)."""
    remaining = list(node.message_ids)
    children: list[SubtypeNode] = []
    support_floor = min(min_support, max(1, len(remaining)))
    while remaining:
        word = _most_frequent_word(messages, remaining, used_words)
        if word is None:
            # All remaining messages consist solely of already-used words:
            # they stay associated with this node itself.
            break
        member_ids = [
            mid for mid in remaining if word in set(messages[mid]) - used_words
        ]
        if len(member_ids) < support_floor:
            # The best remaining word is too rare to define a sub-type:
            # we are looking at variable values, stop splitting here.
            break
        signature = _common_words(messages, member_ids, used_words)
        children.append(
            SubtypeNode(signature=signature, message_ids=member_ids)
        )
        member_set = set(member_ids)
        remaining = [mid for mid in remaining if mid not in member_set]
        if len(children) > k:
            return None
    if children and remaining:
        # Messages whose distinguishing words were all below the support
        # floor: keep them under a signature-less catch-all child so every
        # message stays associated with some leaf.
        children.append(
            SubtypeNode(signature=frozenset(), message_ids=remaining)
        )
    return children
