"""Tokenization of syslog detail text.

The paper decomposes messages into whitespace-separated words and treats
each word atomically — punctuation stays attached (``down,`` and ``down``
are different words), which is deliberate: it preserves positional cues in
printf-style messages without needing any vendor grammar.
"""

from __future__ import annotations


def tokenize(detail: str) -> tuple[str, ...]:
    """Whitespace-split ``detail`` into words (empty input -> empty tuple)."""
    return tuple(detail.split())
