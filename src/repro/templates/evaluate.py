"""Template accuracy against ground truth (Section 5.2.1).

The paper validated learned templates against hand-coded vendor knowledge
and found 94% matched.  Our generator knows the true templates (the
catalog's :class:`~repro.netsim.catalog.MessageDef`), so we can compute the
same metric exactly: a true template *matches* when the learned template
its messages resolve to recovers precisely the true constant words —
nothing missing (under-specialized) and nothing extra (a variable value
absorbed into the signature, the paper's "GigabitEthernet" failure mode).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.netsim.catalog import MessageDef
from repro.syslog.message import LabeledMessage
from repro.templates.learner import TemplateSet


@dataclass(frozen=True)
class TemplateAccuracy:
    """Outcome of a template-accuracy evaluation."""

    n_true: int
    n_matched: int
    mismatches: tuple[str, ...]

    @property
    def accuracy(self) -> float:
        """Fraction of true templates recovered exactly."""
        return self.n_matched / self.n_true if self.n_true else 1.0


def template_accuracy(
    learned: TemplateSet,
    catalog: dict[str, MessageDef],
    labeled: list[LabeledMessage],
    min_examples: int = 5,
) -> TemplateAccuracy:
    """Fraction of true templates recovered exactly.

    For each true template with at least ``min_examples`` occurrences in
    ``labeled``, resolve its messages through the learned set; the true
    template counts as matched when the majority learned template's word
    set equals the true constant-word set.
    """
    examples: dict[str, list[LabeledMessage]] = {}
    for item in labeled:
        if item.template_id in catalog:
            examples.setdefault(item.template_id, []).append(item)

    n_true = 0
    n_matched = 0
    mismatches: list[str] = []
    for template_id, items in sorted(examples.items()):
        if len(items) < min_examples:
            continue
        n_true += 1
        votes: Counter[tuple[str, ...]] = Counter()
        for item in items:
            votes[learned.match(item.message).words] += 1
        majority_words, _count = votes.most_common(1)[0]
        true_words = catalog[template_id].constant_words()
        if set(majority_words) == set(true_words):
            n_matched += 1
        else:
            mismatches.append(template_id)
    return TemplateAccuracy(
        n_true=n_true, n_matched=n_matched, mismatches=tuple(mismatches)
    )
