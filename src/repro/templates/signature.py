"""Template value type and word-sequence matching."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Template:
    """A learned message template: error code + ordered signature words.

    ``key`` uniquely identifies the template within a template set, e.g.
    ``BGP-5-ADJCHANGE/3``.  ``words`` are the constant words of the
    sub-type, in message order; the variable fields are the gaps between
    them (rendered as ``*`` by :meth:`pattern`).
    """

    key: str
    error_code: str
    words: tuple[str, ...]

    @property
    def specificity(self) -> int:
        """Number of signature words — used to break matching ties."""
        return len(self.words)

    def pattern(self) -> str:
        """Human-readable form, e.g. ``neighbor * vpn vrf * Down``."""
        if not self.words:
            return f"{self.error_code} *"
        return f"{self.error_code} " + " ".join(self.words)

    def matches(self, message_words: tuple[str, ...]) -> bool:
        """True when the signature is an ordered subsequence of the words."""
        return matches_words(self.words, message_words)


def matches_words(
    signature: tuple[str, ...], message_words: tuple[str, ...]
) -> bool:
    """Ordered-subsequence test: every signature word appears, in order."""
    it = iter(message_words)
    return all(word in it for word in signature)
