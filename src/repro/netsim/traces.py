"""Replayable trace files: syslog plus a ground-truth sidecar.

A generated workload can be persisted as two files — the collector log
(exactly what the pipeline consumes) and a JSONL sidecar carrying the
labels (event id, true template, locations) per line of the log — so an
experiment can be re-run, shared, and scored without re-running the
generator.

Note that the collector line format carries whole seconds only — the
paper states one second is the finest granularity available in its syslog
data — so sub-second timestamps truncate on export.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.netsim.generator import GenerationResult
from repro.syslog.message import LabeledMessage
from repro.syslog.parse import format_line, parse_line


def export_trace(
    result: GenerationResult, log_path: str | Path, truth_path: str | Path
) -> int:
    """Write the log and its ground-truth sidecar; returns message count."""
    log_path, truth_path = Path(log_path), Path(truth_path)
    with open(log_path, "w", encoding="utf-8") as log_fh, open(
        truth_path, "w", encoding="utf-8"
    ) as truth_fh:
        for lm in result.messages:
            log_fh.write(format_line(lm.message) + "\n")
            truth_fh.write(
                json.dumps(
                    {
                        "event_id": lm.event_id,
                        "template_id": lm.template_id,
                        "locations": list(lm.locations),
                    }
                )
                + "\n"
            )
    return len(result.messages)


def import_trace(
    log_path: str | Path, truth_path: str | Path
) -> list[LabeledMessage]:
    """Read a trace back into labelled messages.

    The two files must be line-aligned; mismatched lengths raise
    ``ValueError`` rather than silently mis-labelling.
    """
    log_lines = Path(log_path).read_text(encoding="utf-8").splitlines()
    truth_lines = Path(truth_path).read_text(encoding="utf-8").splitlines()
    log_lines = [line for line in log_lines if line.strip()]
    truth_lines = [line for line in truth_lines if line.strip()]
    if len(log_lines) != len(truth_lines):
        raise ValueError(
            f"trace mismatch: {len(log_lines)} log lines vs "
            f"{len(truth_lines)} truth lines"
        )
    out: list[LabeledMessage] = []
    for log_line, truth_line in zip(log_lines, truth_lines):
        message = parse_line(log_line)
        truth = json.loads(truth_line)
        out.append(
            LabeledMessage(
                message=message,
                event_id=truth["event_id"],
                template_id=truth["template_id"],
                locations=tuple(truth.get("locations", ())),
            )
        )
    return out
