"""Background chatter: syslog messages not caused by any network condition.

Section 1 notes that many syslog messages are pure debugging output with no
service implication.  The noise generator emits per-router timer-driven
chatter (NTP sync, config autosaves, stray SNMP auth failures and ACL
denies) labelled with ``event_id=None`` so the evaluation can check that
SyslogDigest neither loses real events among the chatter nor inflates the
event count with it.
"""

from __future__ import annotations

import random

from repro.locations.model import Location
from repro.netsim.catalog import catalog_for
from repro.netsim.topology import Network
from repro.syslog.message import LabeledMessage, SyslogMessage
from repro.utils.timeutils import HOUR


def _emit(
    network: Network,
    template_id: str,
    ts: float,
    router: str,
    **fields: object,
) -> LabeledMessage:
    spec = catalog_for(network.vendor)[template_id]
    return LabeledMessage(
        message=SyslogMessage(
            timestamp=ts,
            router=router,
            error_code=spec.error_code,
            detail=spec.render(**fields),
            vendor=spec.vendor,
        ),
        event_id=None,
        template_id=template_id,
        locations=(Location.router_level(router).key(),),
    )


def generate_noise(
    network: Network,
    rng: random.Random,
    start_ts: float,
    duration: float,
    intensity: float = 1.0,
) -> list[LabeledMessage]:
    """Timer chatter for every router over ``[start_ts, start_ts+duration)``.

    ``intensity`` scales all noise rates together.  Chatter volume per
    router scales mildly with its activity weight so busy routers are also
    chattier (part of the Figure 13 skew).
    """
    out: list[LabeledMessage] = []
    if intensity <= 0.0:
        return out
    v1 = network.vendor == "V1"
    for name, node in network.routers.items():
        scale = max(0.3, min(node.activity, 3.0)) * intensity
        # NTP/ToD sync roughly every 1-3 hours, independent of activity.
        period = rng.uniform(1.0, 3.0) * HOUR / max(intensity, 0.01)
        ts = start_ts + rng.uniform(0.0, period)
        while ts < start_ts + duration:
            # The router re-selects within an anycast pool per sync; the
            # pool is wider than the sub-type-tree prune threshold so the
            # server IP is always learned as a variable field.
            server = "192.168.254." + str(rng.randrange(1, 24))
            if v1:
                out.append(_emit(network, "v1.ntp_sync", ts, name, ip=server))
            else:
                out.append(_emit(network, "v2.tod_sync", ts, name, ip=server))
            ts += period * rng.uniform(0.95, 1.05)
        # Sporadic management chatter (Poisson, a few per week per router).
        rate_per_sec = 0.1 * scale / (24 * HOUR)
        ts = start_ts + rng.expovariate(rate_per_sec)
        while ts < start_ts + duration:
            if v1:
                if rng.random() < 0.5:
                    out.append(
                        _emit(
                            network, "v1.snmp_auth", ts, name,
                            ip=f"172.16.{rng.randrange(256)}.{rng.randrange(1, 255)}",
                        )
                    )
                else:
                    out.append(
                        _emit(
                            network, "v1.acl_deny", ts, name,
                            src_ip=f"{rng.randrange(11, 200)}.{rng.randrange(256)}"
                            f".{rng.randrange(256)}.{rng.randrange(1, 255)}",
                            src_port=rng.randrange(1024, 65535),
                            dst_ip=node.loopback_ip,
                            dst_port=rng.choice([22, 23, 80, 179]),
                        )
                    )
            else:
                out.append(
                    _emit(
                        network, "v2.config_save", ts, name,
                        user=f"oper{rng.randrange(1, 40)}",
                    )
                )
            ts += rng.expovariate(rate_per_sec)
    return out
