"""Vendor message catalogs: every message shape the simulator can emit.

Each :class:`MessageDef` is one true (generator-side) template: an error
code plus a detail format string whose ``{placeholders}`` are the variable
fields.  The masked form (placeholders replaced by ``*``) is the ground
truth that Section 5.2.1's template-accuracy evaluation compares learned
templates against.

Catalog V1 is IOS-flavoured (dataset A, tier-1 ISP backbone); catalog V2 is
TiMOS-flavoured (dataset B, IPTV backbone).  The two deliberately share *no*
error codes: the paper stresses that both the types and the signatures
differ entirely between the two networks.
"""

from __future__ import annotations

import re
import string
from dataclasses import dataclass

_FIELD = string.Formatter()


@dataclass(frozen=True)
class MessageDef:
    """One true message template.

    Attributes
    ----------
    template_id:
        Stable generator-side identifier, e.g. ``v1.link_down``.
    error_code:
        The message type / error code field.
    detail_fmt:
        ``str.format`` template of the detail text.
    vendor:
        ``"V1"`` or ``"V2"``.
    """

    template_id: str
    error_code: str
    detail_fmt: str
    vendor: str

    def render(self, **fields: object) -> str:
        """Fill the detail template; raises ``KeyError`` on missing fields."""
        return self.detail_fmt.format(**fields)

    def field_names(self) -> tuple[str, ...]:
        """Placeholder names appearing in the detail template."""
        return tuple(
            name
            for _, name, _, _ in _FIELD.parse(self.detail_fmt)
            if name is not None
        )

    def masked_detail(self) -> str:
        """Detail with every variable field replaced by ``*``."""
        return re.sub(r"\{[^{}]*\}", "*", self.detail_fmt)

    def constant_words(self) -> tuple[str, ...]:
        """Whitespace words of the masked detail that contain no ``*``.

        This is the ground-truth "signature" a learned template should
        recover: the frequent constant words, with variable positions
        excluded.
        """
        return tuple(
            w for w in self.masked_detail().split() if "*" not in w
        )


def _catalog(defs: list[MessageDef]) -> dict[str, MessageDef]:
    out: dict[str, MessageDef] = {}
    for d in defs:
        if d.template_id in out:
            raise ValueError(f"duplicate template id {d.template_id}")
        out[d.template_id] = d
    return out


CATALOG_V1: dict[str, MessageDef] = _catalog([
    # --- layer 1/2 interface state -------------------------------------
    MessageDef(
        "v1.link_down", "LINK-3-UPDOWN",
        "Interface {iface}, changed state to down", "V1"),
    MessageDef(
        "v1.link_up", "LINK-3-UPDOWN",
        "Interface {iface}, changed state to up", "V1"),
    MessageDef(
        "v1.lineproto_down", "LINEPROTO-5-UPDOWN",
        "Line protocol on Interface {iface}, changed state to down", "V1"),
    MessageDef(
        "v1.lineproto_up", "LINEPROTO-5-UPDOWN",
        "Line protocol on Interface {iface}, changed state to up", "V1"),
    MessageDef(
        "v1.controller_down", "CONTROLLER-2-UPDOWN",
        "Controller {ctrl}, changed state to down", "V1"),
    MessageDef(
        "v1.controller_up", "CONTROLLER-2-UPDOWN",
        "Controller {ctrl}, changed state to up", "V1"),
    # --- multilink bundles -----------------------------------------------
    MessageDef(
        "v1.mlp_degraded", "MLPPP-4-DEGRADED",
        "Bundle {bundle} degraded, member link down", "V1"),
    MessageDef(
        "v1.mlp_restored", "MLPPP-5-RESTORED",
        "Bundle {bundle} restored, all member links active", "V1"),
    # --- line cards ------------------------------------------------------
    MessageDef(
        "v1.card_removed", "OIR-6-REMCARD",
        "Card removed from slot {slot}, interfaces disabled", "V1"),
    MessageDef(
        "v1.card_inserted", "OIR-6-INSCARD",
        "Card inserted in slot {slot}, interfaces administratively shut down",
        "V1"),
    # --- BGP (the Table 3/4 sub-type family) ----------------------------
    MessageDef(
        "v1.bgp_up", "BGP-5-ADJCHANGE",
        "neighbor {ip} vpn vrf {vrf} Up", "V1"),
    MessageDef(
        "v1.bgp_down_ifflap", "BGP-5-ADJCHANGE",
        "neighbor {ip} vpn vrf {vrf} Down Interface flap", "V1"),
    MessageDef(
        "v1.bgp_down_sent", "BGP-5-ADJCHANGE",
        "neighbor {ip} vpn vrf {vrf} Down BGP Notification sent", "V1"),
    MessageDef(
        "v1.bgp_down_received", "BGP-5-ADJCHANGE",
        "neighbor {ip} vpn vrf {vrf} Down BGP Notification received", "V1"),
    MessageDef(
        "v1.bgp_down_peerclosed", "BGP-5-ADJCHANGE",
        "neighbor {ip} vpn vrf {vrf} Down Peer closed the session", "V1"),
    # --- IGP -------------------------------------------------------------
    MessageDef(
        "v1.ospf_down", "OSPF-5-ADJCHG",
        "Process 100, Nbr {ip} on {iface} from FULL to DOWN, Neighbor Down:"
        " Interface down or detached", "V1"),
    MessageDef(
        "v1.ospf_up", "OSPF-5-ADJCHG",
        "Process 100, Nbr {ip} on {iface} from LOADING to FULL, Loading Done",
        "V1"),
    MessageDef(
        "v1.isis_down", "ISIS-4-ADJCHANGE",
        "Adjacency to {neighbor} ({iface}) Down, interface state down", "V1"),
    MessageDef(
        "v1.isis_up", "ISIS-4-ADJCHANGE",
        "Adjacency to {neighbor} ({iface}) Up, new adjacency", "V1"),
    MessageDef(
        "v1.pim_nbr_down", "PIM-5-NBRCHG",
        "neighbor {ip} DOWN on interface {iface} DR", "V1"),
    MessageDef(
        "v1.pim_nbr_up", "PIM-5-NBRCHG",
        "neighbor {ip} UP on interface {iface} DR", "V1"),
    # --- platform health -------------------------------------------------
    MessageDef(
        "v1.cpu_rising", "SYS-1-CPURISINGTHRESHOLD",
        "Threshold: Total CPU Utilization(Total/Intr): {total}%/{intr}%,"
        " Top 3 processes (Pid/Util): {p1}/{u1}%, {p2}/{u2}%, {p3}/{u3}%",
        "V1"),
    MessageDef(
        "v1.cpu_falling", "SYS-1-CPUFALLINGTHRESHOLD",
        "Threshold: Total CPU Utilization(Total/Intr) {total}%/{intr}%.",
        "V1"),
    MessageDef(
        "v1.env_temp", "ENVM-2-TEMPALARM",
        "Slot {slot} temperature {temp}C exceeds warning threshold", "V1"),
    MessageDef(
        "v1.env_fan", "ENVM-2-FANALARM",
        "Slot {slot} fan speed {rpm} RPM below minimum", "V1"),
    # --- security / management chatter ----------------------------------
    MessageDef(
        "v1.tcp_badauth", "TCP-6-BADAUTH",
        "Invalid MD5 digest from {src_ip}:{src_port} to {dst_ip}:179", "V1"),
    MessageDef(
        "v1.acl_deny", "SEC-6-IPACCESSLOGP",
        "list 199 denied tcp {src_ip}({src_port}) -> {dst_ip}({dst_port}),"
        " 1 packet", "V1"),
    MessageDef(
        "v1.config_change", "SYS-5-CONFIG_I",
        "Configured from console by {user} on vty0 ({ip})", "V1"),
    MessageDef(
        "v1.ntp_sync", "NTP-6-PEERSYNC",
        "NTP synchronized to peer {ip}", "V1"),
    MessageDef(
        "v1.snmp_auth", "SNMP-3-AUTHFAIL",
        "Authentication failure for SNMP request from host {ip}", "V1"),
])


CATALOG_V2: dict[str, MessageDef] = _catalog([
    # --- ports and interfaces -------------------------------------------
    MessageDef(
        "v2.link_down", "SNMP-WARNING-linkDown",
        "Interface {port} is not operational", "V2"),
    MessageDef(
        "v2.link_up", "SNMP-WARNING-linkup",
        "Interface {port} is operational", "V2"),
    MessageDef(
        "v2.sap_change", "SVCMGR-MAJOR-sapPortStateChangeProcessed",
        "The status of all affected SAPs on port {port} has been updated.",
        "V2"),
    MessageDef(
        "v2.port_degraded", "PORT-MINOR-etherAlarm",
        "Port {port} ethernet alarm raised: remote fault", "V2"),
    MessageDef(
        "v2.port_cleared", "PORT-MINOR-etherAlarmClear",
        "Port {port} ethernet alarm cleared: remote fault", "V2"),
    # --- chassis ----------------------------------------------------------
    MessageDef(
        "v2.mda_fail", "CHASSIS-MAJOR-mdaFailure",
        "MDA {slot}/{mda} failed, all ports on MDA are down", "V2"),
    MessageDef(
        "v2.mda_clear", "CHASSIS-MAJOR-mdaFailureClear",
        "MDA {slot}/{mda} recovered", "V2"),
    MessageDef(
        "v2.cpu_high", "SYSTEM-MAJOR-cpuHigh",
        "CPU utilization {pct} percent exceeds high watermark", "V2"),
    MessageDef(
        "v2.cpu_clear", "SYSTEM-MAJOR-cpuHighClear",
        "CPU utilization {pct} percent below high watermark", "V2"),
    # --- multicast / MPLS (the Section 6.1 cascade) ----------------------
    MessageDef(
        "v2.pim_nbr_loss", "PIM-MAJOR-pimNbrLoss",
        "PIM neighbor {ip} on interface {port} lost", "V2"),
    MessageDef(
        "v2.pim_nbr_up", "PIM-MINOR-pimNbrUp",
        "PIM neighbor {ip} on interface {port} established", "V2"),
    MessageDef(
        "v2.frr_switch", "MPLS-MINOR-frrProtectionSwitch",
        "FRR protection switch on LSP {lsp} from primary to secondary", "V2"),
    MessageDef(
        "v2.lsp_down", "MPLS-MAJOR-lspDown",
        "LSP {lsp} changed state to down", "V2"),
    MessageDef(
        "v2.lsp_up", "MPLS-MINOR-lspUp",
        "LSP {lsp} changed state to up", "V2"),
    MessageDef(
        "v2.lsp_retry", "MPLS-MINOR-lspPathRetry",
        "LSP {lsp} secondary path setup retry attempt {attempt} failed",
        "V2"),
    # --- BGP ---------------------------------------------------------------
    MessageDef(
        "v2.bgp_down", "BGP-MAJOR-bgpPeerDown",
        "BGP peer {ip} moved from Established to Idle", "V2"),
    MessageDef(
        "v2.bgp_up", "BGP-MINOR-bgpPeerUp",
        "BGP peer {ip} moved from Idle to Established", "V2"),
    # --- security / management chatter ----------------------------------
    MessageDef(
        "v2.ftp_fail", "SECURITY-MINOR-ftpLoginFailure",
        "FTP login failed for user {user} from host {ip}", "V2"),
    MessageDef(
        "v2.ssh_fail", "SECURITY-MINOR-sshLoginFailure",
        "SSH login failed for user {user} from host {ip}", "V2"),
    MessageDef(
        "v2.tod_sync", "SYSTEM-INFO-todSync",
        "Time of day synchronized from NTP server {ip}", "V2"),
    MessageDef(
        "v2.config_save", "SYSTEM-INFO-configSave",
        "Configuration saved by user {user}", "V2"),
])


def catalog_for(vendor: str) -> dict[str, MessageDef]:
    """The catalog for a vendor tag (``V1``/``V2``)."""
    if vendor == "V1":
        return CATALOG_V1
    if vendor == "V2":
        return CATALOG_V2
    raise KeyError(f"unknown vendor {vendor!r}")
