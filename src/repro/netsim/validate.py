"""Dataset sanity validation.

Synthetic data is only as good as its invariants: before trusting an
experiment, check the generated stream is time-sorted, labels are
consistent, every labelled message belongs to a real incident, incident
spans cover their messages, and rates look sane.  ``validate_generation``
returns a structured report and is cheap enough to run in CI.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.netsim.generator import GenerationResult
from repro.utils.timeutils import DAY


@dataclass
class ValidationReport:
    """Outcome of dataset validation."""

    n_messages: int
    n_incidents: int
    n_noise: int
    messages_per_day: float
    per_kind: dict[str, int] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no structural problem was found."""
        return not self.problems


def validate_generation(result: GenerationResult) -> ValidationReport:
    """Check a :class:`GenerationResult`'s structural invariants."""
    problems: list[str] = []
    messages = result.messages

    # Time-sortedness.
    for a, b in zip(messages, messages[1:]):
        if b.timestamp < a.timestamp:
            problems.append(
                f"messages out of order at t={a.timestamp}..{b.timestamp}"
            )
            break

    # Label consistency: every labelled message maps to a known incident,
    # and falls inside that incident's span.
    incidents = {inc.event_id: inc for inc in result.incidents}
    orphaned = 0
    out_of_span = 0
    for lm in messages:
        if lm.event_id is None:
            continue
        incident = incidents.get(lm.event_id)
        if incident is None:
            orphaned += 1
            continue
        if not (
            incident.start_ts <= lm.timestamp <= incident.end_ts
        ):
            out_of_span += 1
    if orphaned:
        problems.append(f"{orphaned} messages cite unknown incidents")
    if out_of_span:
        problems.append(f"{out_of_span} messages outside incident spans")

    # Every incident contributed messages, and message counts agree.
    claimed = sum(inc.n_messages for inc in result.incidents)
    labelled = sum(1 for lm in messages if lm.event_id is not None)
    if claimed != labelled:
        problems.append(
            f"incident message counts ({claimed}) != labelled messages "
            f"({labelled})"
        )
    empty = [inc.event_id for inc in result.incidents if not inc.messages]
    if empty:
        problems.append(f"{len(empty)} incidents emitted no messages")

    # Incident routers recorded correctly.
    for incident in result.incidents[:200]:
        routers = {m.router for m in incident.messages}
        if routers != set(incident.routers):
            problems.append(
                f"incident {incident.event_id} router list mismatch"
            )
            break

    per_kind = Counter(inc.kind for inc in result.incidents)
    days = max(result.duration / DAY, 1e-9)
    return ValidationReport(
        n_messages=len(messages),
        n_incidents=len(result.incidents),
        n_noise=result.n_noise,
        messages_per_day=len(messages) / days,
        per_kind=dict(per_kind),
        problems=problems,
    )
