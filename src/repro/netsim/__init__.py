"""Synthetic network + syslog workload generator.

This package replaces the paper's proprietary inputs (tier-1 ISP and IPTV
backbone syslog feeds, router configs, trouble tickets) with a simulator
that produces the same *statistical structure* the mining algorithms
exploit, plus ground-truth labels the paper could only approximate with
human validation.  See DESIGN.md §2 for the substitution argument.
"""

from repro.netsim.canary import drift_messages, labeled_canary
from repro.netsim.catalog import CATALOG_V1, CATALOG_V2, MessageDef, catalog_for
from repro.netsim.configgen import render_config, render_configs
from repro.netsim.datasets import (
    DatasetSpec,
    dataset_a,
    dataset_b,
    generate_dataset,
)
from repro.netsim.faults import (
    Compose,
    CorruptLines,
    DiskFull,
    DiskIOError,
    DuplicateBurst,
    DurableWriteFault,
    FaultProfile,
    FeedStall,
    FlakyShardTask,
    InjectedWorkerFault,
    LateLines,
    ReorderLines,
    RotateLog,
    SourceFlap,
    TruncateLines,
    TruncateLog,
    WorkerFaults,
    durable_fault_from_dict,
    labeled_pairs,
)
from repro.netsim.generator import WorkloadEngine, WorkloadMix
from repro.netsim.tickets import TroubleTicket, derive_tickets
from repro.netsim.traces import export_trace, import_trace
from repro.netsim.topology import (
    Interface,
    Link,
    Network,
    RouterNode,
    build_network,
)

__all__ = [
    "CATALOG_V1",
    "CATALOG_V2",
    "Compose",
    "CorruptLines",
    "DatasetSpec",
    "DiskFull",
    "DiskIOError",
    "DuplicateBurst",
    "DurableWriteFault",
    "FaultProfile",
    "FeedStall",
    "FlakyShardTask",
    "InjectedWorkerFault",
    "Interface",
    "LateLines",
    "Link",
    "MessageDef",
    "Network",
    "ReorderLines",
    "RotateLog",
    "RouterNode",
    "SourceFlap",
    "TroubleTicket",
    "TruncateLines",
    "TruncateLog",
    "WorkerFaults",
    "WorkloadEngine",
    "WorkloadMix",
    "build_network",
    "catalog_for",
    "dataset_a",
    "dataset_b",
    "derive_tickets",
    "drift_messages",
    "durable_fault_from_dict",
    "export_trace",
    "import_trace",
    "generate_dataset",
    "labeled_canary",
    "labeled_pairs",
    "render_config",
    "render_configs",
]
