"""Paper-scale traffic synthesis: millions of messages, 1k+ routers.

The evaluation datasets (:mod:`repro.netsim.datasets`) model the paper's
*scenarios* faithfully — phased-in behaviours, cascades, ground-truth
labels — but their workload engine pays for that fidelity per message,
which makes million-message throughput runs impractically slow to set
up.  This module trades the labels away for volume: it renders the same
catalog message shapes over a full-size backbone (default 1000 routers)
with a heavy-tailed (Zipf) per-router volume split, emitting messages in
non-decreasing time order at any requested count.  Field values come
from each router's real inventory (its interfaces, controllers, bundles,
slots, link/loopback IPs), so signature matching, location extraction
and the grouping passes all do representative work.

Everything is deterministic in the spec's seed, and :meth:`chunks`
streams the messages in bounded slices so a 1M-message run never holds
the whole day in memory.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.netsim.catalog import CATALOG_V1, MessageDef
from repro.netsim.configgen import render_configs
from repro.netsim.topology import Network, build_network
from repro.syslog.message import SyslogMessage
from repro.utils.timeutils import DAY, parse_ts

#: Default first timestamp of the scale stream (continuity with the
#: evaluation datasets' online window; any start works).
SCALE_START = parse_ts("2009-12-01 00:00:00")


@dataclass(frozen=True)
class ScaleSpec:
    """Recipe for one deterministic scale run."""

    n_routers: int = 1000
    n_messages: int = 1_000_000
    duration_days: float = 1.0
    #: Exponent of the per-router volume ranking; ~1 is the classic
    #: heavy tail where the busiest routers dominate (paper Figure 13).
    zipf_exponent: float = 1.1
    seed: int = 7


@dataclass(frozen=True)
class _RouterPool:
    """Pre-extracted inventory one router's messages draw fields from."""

    name: str
    ifaces: tuple[str, ...]
    ctrls: tuple[str, ...]
    bundles: tuple[str, ...]
    slots: tuple[int, ...]
    peer_ips: tuple[str, ...]
    peer_names: tuple[str, ...]


_USERS = ("admin", "noc1", "noc2", "autoconf", "netops")


def _rand_ip(rng: random.Random) -> str:
    """An internet-looking IP for scanner/management chatter."""
    return (
        f"{rng.randrange(11, 223)}.{rng.randrange(256)}"
        f".{rng.randrange(256)}.{rng.randrange(1, 255)}"
    )


def _build_shape_mix() -> list[tuple[MessageDef, float, str]]:
    """(message shape, relative weight, field builder id) triples.

    Weights roughly follow operational syslog: interface churn dominates,
    protocol adjacencies follow, platform health and management chatter
    trail.  Builder ids name the field recipe ``_fields`` dispatches on.
    """
    c = CATALOG_V1
    return [
        (c["v1.link_down"], 14.0, "iface"),
        (c["v1.link_up"], 14.0, "iface"),
        (c["v1.lineproto_down"], 10.0, "iface"),
        (c["v1.lineproto_up"], 10.0, "iface"),
        (c["v1.controller_down"], 4.0, "ctrl"),
        (c["v1.controller_up"], 4.0, "ctrl"),
        (c["v1.mlp_degraded"], 3.0, "bundle"),
        (c["v1.mlp_restored"], 3.0, "bundle"),
        (c["v1.card_removed"], 1.5, "slot"),
        (c["v1.card_inserted"], 1.5, "slot"),
        (c["v1.bgp_up"], 6.0, "bgp"),
        (c["v1.bgp_down_ifflap"], 3.0, "bgp"),
        (c["v1.bgp_down_sent"], 2.0, "bgp"),
        (c["v1.bgp_down_received"], 2.0, "bgp"),
        (c["v1.bgp_down_peerclosed"], 2.0, "bgp"),
        (c["v1.ospf_down"], 3.0, "ip_iface"),
        (c["v1.ospf_up"], 3.0, "ip_iface"),
        (c["v1.isis_down"], 2.0, "neighbor_iface"),
        (c["v1.isis_up"], 2.0, "neighbor_iface"),
        (c["v1.pim_nbr_down"], 2.0, "ip_iface"),
        (c["v1.pim_nbr_up"], 2.0, "ip_iface"),
        (c["v1.cpu_rising"], 4.0, "cpu"),
        (c["v1.cpu_falling"], 4.0, "cpu_simple"),
        (c["v1.env_temp"], 1.0, "temp"),
        (c["v1.env_fan"], 1.0, "fan"),
        (c["v1.tcp_badauth"], 2.0, "scan"),
        (c["v1.acl_deny"], 2.0, "scan4"),
        (c["v1.config_change"], 2.0, "mgmt"),
        (c["v1.ntp_sync"], 1.0, "peer_ip"),
        (c["v1.snmp_auth"], 1.0, "rand_ip"),
    ]


class ScaleGenerator:
    """Deterministic scale-stream factory over one built backbone."""

    def __init__(self, spec: ScaleSpec | None = None) -> None:
        self.spec = spec or ScaleSpec()
        self.network: Network = build_network(
            vendor="V1", n_routers=self.spec.n_routers, seed=self.spec.seed
        )
        self._pools = self._build_pools(self.network)
        self._names = sorted(self._pools)
        # Heavy tail: shuffle the rank order (busy routers scattered over
        # the name space), then weight rank r as (r+1)^-s.
        rng = random.Random(self.spec.seed ^ 0x5CA1E)
        ranked = list(self._names)
        rng.shuffle(ranked)
        s = self.spec.zipf_exponent
        weight_of = {
            name: (rank + 1) ** -s for rank, name in enumerate(ranked)
        }
        self._cum_weights: list[float] = []
        total = 0.0
        for name in self._names:
            total += weight_of[name]
            self._cum_weights.append(total)
        self._shapes = _build_shape_mix()
        self._shape_cum: list[float] = []
        total = 0.0
        for _, weight, _ in self._shapes:
            total += weight
            self._shape_cum.append(total)

    def configs(self) -> list[str]:
        """Rendered router configs (location-dictionary input)."""
        return list(render_configs(self.network).values())

    @staticmethod
    def _build_pools(network: Network) -> dict[str, _RouterPool]:
        peer_ips: dict[str, list[str]] = {name: [] for name in network.routers}
        peer_names: dict[str, list[str]] = {
            name: [] for name in network.routers
        }
        for link in network.links:
            peer_ips[link.router_a].append(link.ip_b)
            peer_ips[link.router_b].append(link.ip_a)
            peer_names[link.router_a].append(link.router_b)
            peer_names[link.router_b].append(link.router_a)
        pools: dict[str, _RouterPool] = {}
        for name, node in network.routers.items():
            ifaces: list[str] = []
            ctrls: set[str] = set()
            bundles: list[str] = []
            for ifname in node.interfaces:
                if ifname.startswith("Multilink"):
                    bundles.append(ifname)
                elif not ifname.startswith("Loopback"):
                    ifaces.append(ifname)
                    ctrl = node.controller_of(ifname)
                    if ctrl:
                        ctrls.add(ctrl)
            pools[name] = _RouterPool(
                name=name,
                ifaces=tuple(sorted(ifaces)),
                ctrls=tuple(sorted(ctrls)),
                bundles=tuple(sorted(bundles)),
                slots=tuple(range(node.n_slots)),
                peer_ips=tuple(peer_ips[name]),
                peer_names=tuple(peer_names[name]),
            )
        return pools

    # ------------------------------------------------------------- rendering

    def _fields(
        self, builder: str, pool: _RouterPool, rng: random.Random
    ) -> dict[str, object] | None:
        """Field values for one shape; None when the pool can't supply them."""
        if builder == "iface":
            if not pool.ifaces:
                return None
            return {"iface": rng.choice(pool.ifaces)}
        if builder == "ctrl":
            if not pool.ctrls:
                return None
            return {"ctrl": rng.choice(pool.ctrls)}
        if builder == "bundle":
            if not pool.bundles:
                return None
            return {"bundle": rng.choice(pool.bundles)}
        if builder == "slot":
            return {"slot": rng.choice(pool.slots)}
        if builder == "bgp":
            if not pool.peer_ips:
                return None
            return {
                "ip": rng.choice(pool.peer_ips),
                "vrf": f"cust{rng.randrange(1, 40)}",
            }
        if builder == "ip_iface":
            if not pool.peer_ips or not pool.ifaces:
                return None
            return {
                "ip": rng.choice(pool.peer_ips),
                "iface": rng.choice(pool.ifaces),
            }
        if builder == "neighbor_iface":
            if not pool.peer_names or not pool.ifaces:
                return None
            return {
                "neighbor": rng.choice(pool.peer_names),
                "iface": rng.choice(pool.ifaces),
            }
        if builder == "cpu":
            return {
                "total": rng.randrange(80, 100),
                "intr": rng.randrange(5, 30),
                "p1": rng.randrange(100, 400),
                "u1": rng.randrange(20, 60),
                "p2": rng.randrange(100, 400),
                "u2": rng.randrange(5, 20),
                "p3": rng.randrange(100, 400),
                "u3": rng.randrange(1, 10),
            }
        if builder == "cpu_simple":
            return {
                "total": rng.randrange(20, 60),
                "intr": rng.randrange(2, 15),
            }
        if builder == "temp":
            return {
                "slot": rng.choice(pool.slots),
                "temp": rng.randrange(55, 90),
            }
        if builder == "fan":
            return {
                "slot": rng.choice(pool.slots),
                "rpm": rng.randrange(800, 2000),
            }
        if builder == "scan":
            return {
                "src_ip": _rand_ip(rng),
                "src_port": rng.randrange(1024, 65535),
                "dst_ip": _rand_ip(rng),
            }
        if builder == "scan4":
            return {
                "src_ip": _rand_ip(rng),
                "src_port": rng.randrange(1024, 65535),
                "dst_ip": _rand_ip(rng),
                "dst_port": rng.randrange(1, 1024),
            }
        if builder == "mgmt":
            return {"user": rng.choice(_USERS), "ip": _rand_ip(rng)}
        if builder == "peer_ip":
            if not pool.peer_ips:
                return None
            return {"ip": rng.choice(pool.peer_ips)}
        if builder == "rand_ip":
            return {"ip": _rand_ip(rng)}
        raise ValueError(f"unknown field builder {builder!r}")

    def _emit(
        self, ts: float, pool: _RouterPool, rng: random.Random
    ) -> SyslogMessage:
        """One rendered message for ``pool``'s router at ``ts``."""
        shapes, cum = self._shapes, self._shape_cum
        pick = rng.random() * cum[-1]
        lo = 0
        while cum[lo] < pick:  # cum is short (~30); linear scan is fine
            lo += 1
        definition, _, builder = shapes[lo]
        fields = self._fields(builder, pool, rng)
        if fields is None:
            # Inventory can't supply this shape (e.g. no bundles on an
            # access router): fall back to plain interface churn.
            definition = self._shapes[0][0]
            fields = {"iface": rng.choice(pool.ifaces)}
        return SyslogMessage(
            timestamp=ts,
            router=pool.name,
            error_code=definition.error_code,
            detail=definition.render(**fields),
            vendor="V1",
        )

    # -------------------------------------------------------------- streams

    def stream(
        self,
        n_messages: int | None = None,
        start_ts: float = SCALE_START,
        seed_salt: int = 0,
    ) -> Iterator[SyslogMessage]:
        """Yield messages in non-decreasing time order.

        ``seed_salt`` derives independent-but-deterministic streams from
        one generator (the learning corpus uses a different salt than the
        measured stream so the digest never sees its training data).
        """
        spec = self.spec
        n = spec.n_messages if n_messages is None else n_messages
        rng = random.Random((spec.seed << 8) ^ seed_salt)
        rate = n / (spec.duration_days * DAY)
        names, cum_weights = self._names, self._cum_weights
        pools = self._pools
        ts = start_ts
        emitted = 0
        while emitted < n:
            batch = min(8192, n - emitted)
            routers = rng.choices(names, cum_weights=cum_weights, k=batch)
            for router in routers:
                ts += rng.expovariate(rate)
                yield self._emit(ts, pools[router], rng)
            emitted += batch

    def chunks(
        self,
        chunk_size: int = 50_000,
        n_messages: int | None = None,
        start_ts: float = SCALE_START,
        seed_salt: int = 0,
    ) -> Iterator[list[SyslogMessage]]:
        """The same stream, in bounded slices for chunked pushing."""
        chunk: list[SyslogMessage] = []
        for message in self.stream(n_messages, start_ts, seed_salt):
            chunk.append(message)
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def learning_messages(
        self, n_messages: int = 30_000
    ) -> list[SyslogMessage]:
        """A historical corpus for template learning (disjoint stream).

        Drawn from the same shape mix and inventory, one learning window
        ahead of :data:`SCALE_START`, with an independent seed salt.
        """
        return list(
            self.stream(
                n_messages,
                start_ts=SCALE_START - 28 * DAY,
                seed_salt=0xB00C,
            )
        )
