"""Composable fault injection over collector traces (DESIGN.md §8).

Real collector feeds fail in characteristic ways: lines arrive
corrupted or truncated (UDP datagram damage), a feed stalls and then
bursts its backlog out late, messages are delivered in duplicate, and
on the compute side individual pool workers die.  Each failure mode is
a :class:`FaultProfile`; profiles compose, are deterministic under a
seed, and count everything they inject through :mod:`repro.obs`
(``syslogdigest_faults_injected_total{kind=...}``).

Profiles transform ``(line, label)`` pairs — the collector line plus an
opaque ground-truth label (e.g. the injected event id) that rides along
so benchmarks can score recall after the damage.  Line faults keep the
label attached: a truncated line that still parses keeps its ground
truth, a corrupted one simply never produces a digestible message.

The worker-fault profile injects on the *compute* path instead: it
builds the picklable shard task / stream hook the engines accept, so
``bench_faults.py`` can prove the retry-then-serial-fallback recovery
(:meth:`repro.core.parallel.ParallelGroupingEngine._run_shards`,
:meth:`repro.core.stream.DigestStream.push_many`) under real pools.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.obs import FAULTS_INJECTED, get_registry
from repro.utils.timeutils import parse_ts

#: One unit of trace: the raw collector line plus an opaque label.
LinePair = tuple[str, object]


def _count(kind: str, n: int) -> None:
    if n:
        registry = get_registry()
        if registry.enabled:
            registry.inc(FAULTS_INJECTED, n, kind=kind)


class InjectedWorkerFault(RuntimeError):
    """The deliberate exception raised by :class:`FlakyShardTask`."""


class FlakyShardTask:
    """A shard task that raises for chosen shards, then recovers.

    Instances are picklable (top-level class, plain attributes), so they
    cross the process-pool boundary.  ``fail_attempts`` bounds how many
    attempts per shard raise: 1 exercises the in-pool retry, 2 pushes
    through to the serial fallback, and because the fallback bypasses
    injected tasks entirely, any larger value still completes.
    """

    def __init__(
        self, fail_shards: tuple[int, ...], fail_attempts: int = 1
    ) -> None:
        self.fail_shards = tuple(fail_shards)
        self.fail_attempts = fail_attempts

    def __call__(self, payload, shard_id: int = 0, attempt: int = 0):
        # Imported lazily: netsim loads during package init, before
        # repro.core finishes importing (templates → netsim.catalog).
        from repro.core.parallel import timed_shard_edge_task

        if shard_id in self.fail_shards and attempt < self.fail_attempts:
            raise InjectedWorkerFault(
                f"injected fault: shard {shard_id}, attempt {attempt}"
            )
        return timed_shard_edge_task(payload)


class StreamWorkerFault:
    """Streaming fault hook: chosen shards fail cleanly at task start.

    The ``DigestStream(fault_hook=...)`` seam — raises before any shard
    state is touched, for the first ``fail_attempts`` attempts of every
    batch.  Picklable (top-level class, plain attributes) so the process
    lane can ship it to its workers at spawn.
    """

    def __init__(
        self, fail_shards: tuple[int, ...], fail_attempts: int = 1
    ) -> None:
        self.fail_shards = tuple(fail_shards)
        self.fail_attempts = fail_attempts

    def __call__(self, shard_id: int, attempt: int) -> None:
        if shard_id in self.fail_shards and attempt < self.fail_attempts:
            raise InjectedWorkerFault(
                f"injected fault: shard {shard_id}, attempt {attempt}"
            )


class DaemonCrash:
    """Process fault hook: SIGKILL the *whole process* after N arrivals.

    The serve smoke gate's crash lever (`ServeConfig.crash_after`): the
    daemon calls the hook with its cumulative arrival count; at
    ``after`` the hook delivers ``SIGKILL`` to the daemon's own pid —
    no atexit, no finally blocks, no flush, exactly the power-loss
    shape the checkpoint + event-journal protocol must survive.
    Picklable (plain attributes) like every other fault hook.
    """

    def __init__(self, after: int) -> None:
        if after < 1:
            raise ValueError("after must be >= 1")
        self.after = after

    def __call__(self, n_processed: int) -> None:
        if n_processed >= self.after:
            import os
            import signal as _signal

            _count("daemon_crash", 1)
            os.kill(os.getpid(), _signal.SIGKILL)


class MidStepFault:
    """Streaming step hook: chosen shards fail *mid-list*, after ``after``
    messages of a batch have been fully applied.

    The ``DigestStream(step_fault_hook=...)`` seam — called before each
    message's step with that message's position in the shard's batch
    list, so the raise lands with a cleanly-applied prefix behind it.
    Exactly the shape of the shard-retry corruption bug: a recovery that
    replays the prefix diverges (or trips the splitters' non-decreasing
    invariant); one that resumes at the failed message is byte-identical
    to a no-fault run.  Picklable for the process lane.
    """

    def __init__(
        self,
        fail_shards: tuple[int, ...],
        after: int,
        fail_attempts: int = 1,
    ) -> None:
        self.fail_shards = tuple(fail_shards)
        self.after = after
        self.fail_attempts = fail_attempts

    def __call__(self, shard_id: int, attempt: int, position: int) -> None:
        if (
            shard_id in self.fail_shards
            and attempt < self.fail_attempts
            and position >= self.after
        ):
            raise InjectedWorkerFault(
                f"injected mid-step fault: shard {shard_id}, "
                f"attempt {attempt}, message {position}"
            )


@dataclass(frozen=True)
class FaultProfile:
    """Base profile: the clean feed.  Applying it is a strict no-op."""

    name: str = "clean"

    def apply(self, pairs: list[LinePair]) -> list[LinePair]:
        """Return the faulted trace; the base profile changes nothing."""
        return list(pairs)

    def shard_task(self):
        """Picklable shard task for the batch engine (None = default)."""
        return None

    def stream_fault_hook(self):
        """Fault hook for ``DigestStream(fault_hook=...)`` (None = none)."""
        return None

    def stream_step_hook(self):
        """Step hook for ``DigestStream(step_fault_hook=...)`` (None =
        none)."""
        return None


@dataclass(frozen=True)
class CorruptLines(FaultProfile):
    """Datagram damage: a fraction of lines become unparseable garbage."""

    name: str = "corrupt"
    rate: float = 0.01
    seed: int = 0

    def apply(self, pairs: list[LinePair]) -> list[LinePair]:
        rng = random.Random(self.seed)
        out: list[LinePair] = []
        n = 0
        for line, label in pairs:
            if rng.random() < self.rate:
                n += 1
                line = "\x15" + line[::-1]  # NAK + reversed: never parses
            out.append((line, label))
        _count(self.name, n)
        return out


@dataclass(frozen=True)
class TruncateLines(FaultProfile):
    """Cut lines short, as a truncated datagram would arrive.

    A cut landing after the ``CODE:`` head still parses (with a
    shortened detail) — that is the realistic case and exactly what the
    digester must survive: degraded, not dead.
    """

    name: str = "truncate"
    rate: float = 0.01
    keep_fraction: float = 0.5
    seed: int = 1

    def apply(self, pairs: list[LinePair]) -> list[LinePair]:
        rng = random.Random(self.seed)
        out: list[LinePair] = []
        n = 0
        for line, label in pairs:
            if rng.random() < self.rate:
                n += 1
                line = line[: max(1, int(len(line) * self.keep_fraction))]
            out.append((line, label))
        _count(self.name, n)
        return out


@dataclass(frozen=True)
class FeedStall(FaultProfile):
    """A feed goes silent, then bursts its backlog out late.

    Lines whose timestamp falls in the stall window are held back and
    re-delivered (in order) right after the window closes — so they
    arrive behind the stream clock, exactly the shape that trips skew
    rejection and must be quarantined, not fatal.  Lines whose
    timestamp cannot be read (already corrupted upstream) pass through
    unstalled.
    """

    name: str = "stall"
    start_fraction: float = 0.5
    duration: float = 600.0

    def apply(self, pairs: list[LinePair]) -> list[LinePair]:
        stamped: list[tuple[float | None, LinePair]] = []
        times = []
        for pair in pairs:
            try:
                ts = parse_ts(pair[0][:19])
                times.append(ts)
            except ValueError:
                ts = None
            stamped.append((ts, pair))
        if not times:
            return list(pairs)
        t0 = min(times) + self.start_fraction * (max(times) - min(times))
        t1 = t0 + self.duration
        out: list[LinePair] = []
        held: list[LinePair] = []
        n = 0
        for ts, pair in stamped:
            if ts is not None and t0 <= ts < t1:
                held.append(pair)
                n += 1
                continue
            out.append(pair)
            if held and ts is not None and ts >= t1:
                # The backlog bursts out *behind* the first post-stall
                # line, so the replayed lines arrive late relative to
                # the stream clock — skew handling must absorb them.
                out.extend(held)
                held = []
        out.extend(held)  # stall ran to the end of the trace
        _count(self.name, n)
        return out


@dataclass(frozen=True)
class ReorderLines(FaultProfile):
    """Transport disorder: a fraction of lines arrive out of order.

    Selected lines get a uniform arrival delay up to ``max_skew``; the
    trace is then stably re-sorted by arrival time, so disorder is
    *bounded* — no line moves more than ``max_skew`` seconds from its
    timestamp.  An ingest front-end with ``max_reorder_delay >=
    max_skew`` must absorb this completely.  Unparseable lines ride at
    the last readable timestamp.
    """

    name: str = "reorder"
    rate: float = 0.1
    max_skew: float = 30.0
    seed: int = 3

    def apply(self, pairs: list[LinePair]) -> list[LinePair]:
        rng = random.Random(self.seed)
        stamped: list[tuple[float, int, LinePair]] = []
        last_ts = 0.0
        n = 0
        for index, pair in enumerate(pairs):
            try:
                ts = parse_ts(pair[0][:19])
                last_ts = ts
            except ValueError:
                ts = last_ts
            arrival = ts
            if rng.random() < self.rate:
                arrival += rng.uniform(0.0, self.max_skew)
                n += 1
            stamped.append((arrival, index, pair))
        stamped.sort(key=lambda item: (item[0], item[1]))
        _count(self.name, n)
        return [pair for _, _, pair in stamped]


@dataclass(frozen=True)
class LateLines(FaultProfile):
    """Straggler delivery: a fraction of lines arrive far too late.

    Unlike :class:`ReorderLines`, the fixed ``delay`` is meant to exceed
    any reasonable reorder window, so these lines arrive behind the
    flushed frontier and must be dropped as *late* (counted, not fatal).
    """

    name: str = "late"
    rate: float = 0.02
    delay: float = 3600.0
    seed: int = 4

    def apply(self, pairs: list[LinePair]) -> list[LinePair]:
        rng = random.Random(self.seed)
        stamped: list[tuple[float, int, LinePair]] = []
        last_ts = 0.0
        n = 0
        for index, pair in enumerate(pairs):
            try:
                ts = parse_ts(pair[0][:19])
                last_ts = ts
            except ValueError:
                ts = last_ts
            arrival = ts
            if rng.random() < self.rate:
                arrival += self.delay
                n += 1
            stamped.append((arrival, index, pair))
        stamped.sort(key=lambda item: (item[0], item[1]))
        _count(self.name, n)
        return [pair for _, _, pair in stamped]


@dataclass(frozen=True)
class SourceFlap(FaultProfile):
    """A feed that periodically degenerates and recovers.

    Every ``period`` seconds the feed enters a flap: it first emits
    ``garbage`` unparseable lines (label ``None`` — no ground truth is
    lost), then stays silent for ``silence`` seconds (its real lines in
    that window are dropped and counted).  Deterministic without a seed:
    flap times come from the trace's own time span.  Feeding one flapping
    source among healthy ones exercises the per-source circuit breaker —
    the garbage opens it, the recovery re-closes it.
    """

    name: str = "flap"
    period: float = 4 * 3600.0
    garbage: int = 6
    silence: float = 900.0

    def apply(self, pairs: list[LinePair]) -> list[LinePair]:
        stamped: list[tuple[float | None, LinePair]] = []
        times = []
        for pair in pairs:
            try:
                ts = parse_ts(pair[0][:19])
                times.append(ts)
            except ValueError:
                ts = None
            stamped.append((ts, pair))
        if not times:
            return list(pairs)
        t0 = min(times)
        out: list[LinePair] = []
        n = 0
        next_flap = t0 + self.period
        flap_end: float | None = None
        for ts, pair in stamped:
            if ts is not None and ts >= next_flap:
                for k in range(self.garbage):
                    out.append((f"\x15FLAP {next_flap:.0f} {k}", None))
                n += self.garbage
                flap_end = next_flap + self.silence
                next_flap += self.period
            if ts is not None and flap_end is not None and ts < flap_end:
                n += 1  # dropped in the silence window
                continue
            out.append(pair)
        _count(self.name, n)
        return out


@dataclass(frozen=True)
class DuplicateBurst(FaultProfile):
    """Retransmit storms: some lines are delivered several times in a row."""

    name: str = "duplicate"
    rate: float = 0.01
    copies: int = 3
    seed: int = 2

    def apply(self, pairs: list[LinePair]) -> list[LinePair]:
        rng = random.Random(self.seed)
        out: list[LinePair] = []
        n = 0
        for line, label in pairs:
            burst = self.copies if rng.random() < self.rate else 1
            if burst > 1:
                n += burst - 1
            out.extend([(line, label)] * burst)
        _count(self.name, n)
        return out


@dataclass(frozen=True)
class WorkerFaults(FaultProfile):
    """Compute-path faults: chosen pool workers raise on their first
    ``fail_attempts`` attempts.  Leaves the trace itself untouched.

    With ``after`` set, the streaming fault moves from task start to
    *mid-list*: the shard fails before stepping message ``after`` of a
    batch, leaving a partially-advanced shard for the recovery path to
    resume exactly (the shard-retry exactness contract).
    """

    name: str = "worker"
    fail_shards: tuple[int, ...] = (0,)
    fail_attempts: int = 1
    after: int | None = None

    def shard_task(self):
        return FlakyShardTask(self.fail_shards, self.fail_attempts)

    def stream_fault_hook(self):
        if self.after is not None:
            return None  # mid-step profile: the step hook carries it
        return StreamWorkerFault(self.fail_shards, self.fail_attempts)

    def stream_step_hook(self):
        if self.after is None:
            return None
        return MidStepFault(
            self.fail_shards, self.after, self.fail_attempts
        )


class DurableWriteFault:
    """Disk-fault hook for :func:`repro.utils.fsio.install_fault_hook`.

    Deterministic: raises ``OSError(err)`` for durable ops whose path
    contains ``match``, starting at matching attempt number ``after``
    (1-based), for ``times`` consecutive matching attempts — after
    which the "disk" recovers and writes land again.  Counts every
    injected fault through the metrics registry.  Picklable (top-level
    class, plain attributes) like every other fault hook.
    """

    def __init__(
        self,
        match: str,
        err: int,
        op: str = "write",
        after: int = 1,
        times: int = 1,
    ) -> None:
        if after < 1:
            raise ValueError("after must be >= 1 (1-based attempt)")
        if times < 1:
            raise ValueError("times must be >= 1")
        self.match = match
        self.err = err
        self.op = op
        self.after = after
        self.times = times
        self._seen = 0

    def __call__(self, op: str, path: str) -> None:
        if op != self.op or self.match not in path:
            return
        self._seen += 1
        if self.after <= self._seen < self.after + self.times:
            _count("disk", 1)
            import os as _os

            raise OSError(
                self.err, "injected: " + _os.strerror(self.err), path
            )


@dataclass(frozen=True)
class DiskFull(FaultProfile):
    """Injected ENOSPC on durable writes whose path contains ``match``.

    The trace is untouched; the damage lands at the fsio seam
    (:func:`repro.utils.fsio.check_fault`) where every checkpoint,
    journal, model-store, and quarantine write funnels through.  The
    fault fires for attempts ``[after, after + times)`` of matching
    writes, then the disk "recovers" — exactly the disk-full-then-freed
    shape the degrade-don't-crash contract covers.
    """

    name: str = "disk_full"
    match: str = ""
    after: int = 1
    times: int = 1

    def fsio_hook(self) -> DurableWriteFault:
        import errno as _errno

        return DurableWriteFault(
            self.match, _errno.ENOSPC, "write", self.after, self.times
        )


@dataclass(frozen=True)
class DiskIOError(FaultProfile):
    """Injected EIO — a failing disk rather than a full one.

    Same seam and counting as :class:`DiskFull`; ``op`` may be "read"
    to fail tail reads instead of durable writes (the tailer counts
    those per source and retries at the next poll).
    """

    name: str = "io_error"
    match: str = ""
    op: str = "write"
    after: int = 1
    times: int = 1

    def fsio_hook(self) -> DurableWriteFault:
        import errno as _errno

        return DurableWriteFault(
            self.match, _errno.EIO, self.op, self.after, self.times
        )


@dataclass(frozen=True)
class RotateLog(FaultProfile):
    """Scripted logrotate: rename the live file to ``<name>.1`` (shifting
    older rotations up) so the next write to ``path`` starts a new file.

    Not a trace transform — :meth:`fire` is called by the chaos harness
    at a chosen moment while a daemon is mid-read, which is the race
    the tailer's inode-tracking rotation protocol must win.
    """

    name: str = "rotate_log"
    path: str = ""

    def fire(self) -> None:
        import os as _os
        from pathlib import Path as _Path

        base = _Path(self.path)
        if not base.exists():
            return
        index = 1
        while base.with_name(f"{base.name}.{index}").exists():
            index += 1
        while index > 1:
            _os.replace(
                base.with_name(f"{base.name}.{index - 1}"),
                base.with_name(f"{base.name}.{index}"),
            )
            index -= 1
        _os.replace(base, base.with_name(f"{base.name}.1"))
        _count(self.name, 1)


@dataclass(frozen=True)
class TruncateLog(FaultProfile):
    """Scripted truncation: cut the live file down to ``keep_lines``
    lines in place (same inode — the copytruncate logrotate mode).

    The tailer detects the size regression and restarts the cursor at
    offset 0; with ``keep_lines=0`` the restart is unambiguous (any
    regrowth is new data, never a re-read).
    """

    name: str = "truncate_log"
    path: str = ""
    keep_lines: int = 0

    def fire(self) -> None:
        from pathlib import Path as _Path

        target = _Path(self.path)
        if not target.exists():
            return
        if self.keep_lines <= 0:
            kept = b""
        else:
            lines = target.read_bytes().splitlines(keepends=True)
            kept = b"".join(lines[: self.keep_lines])
        with open(target, "r+b") as fh:
            if kept:
                fh.write(kept)
            fh.truncate(len(kept))
        _count(self.name, 1)


def durable_fault_from_dict(data: dict) -> DurableWriteFault:
    """Build the fsio hook a serve config's ``fault`` block describes.

    Shape: ``{"kind": "disk_full" | "io_error", "match": <substring>,
    "after": N, "times": M, "op": "write" | "read"}`` — the JSON the
    chaos harness plants in a daemon config to arm deterministic disk
    faults inside the daemon process.
    """
    data = dict(data)
    kind = data.pop("kind")
    if kind == "disk_full":
        return DiskFull(**data).fsio_hook()
    if kind == "io_error":
        return DiskIOError(**data).fsio_hook()
    raise ValueError(f"unknown durable fault kind {kind!r}")


class PumpPoison:
    """Tenant-pump fault hook: a poison pill at one arrival position.

    The ``TenantRuntime.fault_hook`` seam calls this before every
    arrival push as ``hook(n_arrivals_this_life, degraded)``.  At
    position ``at`` (0-based within the current pipeline life) the hook
    either raises (``mode="raise"`` — the poison-batch shape: the
    pipeline dies, the supervisor restarts it from checkpoint, the
    replay deterministically re-poisons at the same position, and the
    crash loop escalates to degraded) or hangs (``mode="hang"`` — the
    stuck/RPC-deadline shape: the pipeline stops answering and must be
    killed from outside).

    In degraded (shed) mode the poison is inert — which is exactly what
    makes the escalation terminate: the degraded restart digests past
    the poison position and the tenant keeps serving.  Deterministic:
    keep ``at`` below ``checkpoint_every`` so every replay of the life
    starts from the same arrival.  Picklable, like every fault hook.
    """

    def __init__(self, at: int, mode: str = "raise") -> None:
        if at < 0:
            raise ValueError("at must be >= 0 (0-based arrival position)")
        if mode not in ("raise", "hang"):
            raise ValueError(f"mode must be 'raise' or 'hang', not {mode!r}")
        self.at = at
        self.mode = mode

    def __call__(self, position: int, degraded: bool) -> None:
        if degraded or position != self.at:
            return
        _count("pump_poison", 1)
        if self.mode == "hang":
            import time as _time

            while True:  # killed from outside (SIGKILL / daemon exit)
                _time.sleep(0.05)
        raise InjectedWorkerFault(
            f"injected poison arrival at position {position}"
        )


def pump_fault_from_dict(data: dict) -> PumpPoison:
    """Build the pump hook a serve config's ``pump_fault`` block describes.

    Shape: ``{"kind": "pump_poison", "tenant": <name or null>,
    "at": N, "mode": "raise" | "hang"}``.  The ``tenant`` key is
    consumed by the daemon/worker when deciding *which* runtime gets
    the hook; it is not part of the hook itself.
    """
    data = dict(data)
    data.pop("tenant", None)
    kind = data.pop("kind", "pump_poison")
    if kind != "pump_poison":
        raise ValueError(f"unknown pump fault kind {kind!r}")
    return PumpPoison(**data)


@dataclass(frozen=True)
class Compose(FaultProfile):
    """Apply several profiles in order; compute hooks come from the
    first member that provides one."""

    name: str = "composed"
    profiles: tuple[FaultProfile, ...] = field(default_factory=tuple)

    def apply(self, pairs: list[LinePair]) -> list[LinePair]:
        out = list(pairs)
        for profile in self.profiles:
            out = profile.apply(out)
        return out

    def shard_task(self):
        for profile in self.profiles:
            task = profile.shard_task()
            if task is not None:
                return task
        return None

    def stream_fault_hook(self):
        for profile in self.profiles:
            hook = profile.stream_fault_hook()
            if hook is not None:
                return hook
        return None

    def stream_step_hook(self):
        for profile in self.profiles:
            hook = profile.stream_step_hook()
            if hook is not None:
                return hook
        return None


def labeled_pairs(labeled_messages) -> list[LinePair]:
    """Turn netsim :class:`LabeledMessage` output into fault-ready pairs."""
    from repro.syslog.parse import format_line

    return [
        (format_line(lm.message), lm.event_id) for lm in labeled_messages
    ]
