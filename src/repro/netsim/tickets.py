"""Synthetic trouble tickets derived from injected incidents.

Section 6.2 validates SyslogDigest against operational trouble tickets: the
top-30 tickets (by number of investigations/updates) all matched a top-5%
digest.  We derive tickets from a subset of ground-truth incidents —
operators do not ticket every condition — with noisy creation times and
state-level locations, then let :mod:`repro.apps.ticket_match` replay the
paper's matching rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.netsim.events import Incident
from repro.utils.timeutils import MINUTE


@dataclass(frozen=True)
class TroubleTicket:
    """One operations ticket.

    ``n_updates`` approximates how many times the ticket was investigated
    and its record updated — the paper's proxy for importance.
    """

    ticket_id: str
    created_ts: float
    state: str
    kind: str
    n_updates: int
    source_event_id: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"{self.ticket_id} [{self.state}] {self.kind} "
            f"updates={self.n_updates}"
        )


# How ticket-worthy each scenario kind is, and how heavily investigated a
# ticket about it tends to be.  Hardware and multi-protocol incidents draw
# the most operator attention.
_TICKET_PROFILE: dict[str, tuple[float, int, int]] = {
    # kind: (ticket probability, min updates, max updates)
    "link_flap": (0.25, 1, 8),
    "controller_instability": (0.7, 3, 15),
    "linecard_reset": (0.9, 5, 25),
    "bgp_session_reset": (0.5, 2, 12),
    "cpu_oscillation": (0.3, 1, 6),
    "tcp_scan": (0.2, 1, 4),
    "env_temp_alarm": (0.4, 1, 6),
    "config_session": (0.02, 1, 2),
    "b_link_flap": (0.25, 1, 8),
    "b_mda_failure": (0.9, 5, 25),
    "b_pim_cascade": (0.95, 8, 30),
    "b_login_scan": (0.15, 1, 4),
    "b_bgp_flap": (0.5, 2, 12),
    "b_cpu_high": (0.3, 1, 6),
    "b_port_alarm": (0.3, 1, 6),
}


def derive_tickets(
    incidents: list[Incident], seed: int = 0
) -> list[TroubleTicket]:
    """Derive tickets from incidents, larger incidents more update-heavy.

    Creation time falls inside the incident (operators react after the
    first symptoms); the location is degraded to state level, exactly the
    granularity the paper could match at.
    """
    rng = random.Random(seed)
    tickets: list[TroubleTicket] = []
    for incident in incidents:
        prob, lo, hi = _TICKET_PROFILE.get(incident.kind, (0.1, 1, 3))
        if rng.random() > prob or not incident.states:
            continue
        # Bigger incidents (more messages) attract more investigation.
        size_boost = min(incident.n_messages // 40, hi - lo)
        n_updates = rng.randint(lo, lo + max(1, size_boost + (hi - lo) // 3))
        span = max(incident.end_ts - incident.start_ts, 1.0)
        created = incident.start_ts + min(
            rng.uniform(0.0, span), rng.uniform(1 * MINUTE, 30 * MINUTE)
        )
        created = min(created, incident.end_ts)
        tickets.append(
            TroubleTicket(
                ticket_id=f"TT{len(tickets) + 1:05d}",
                created_ts=created,
                state=rng.choice(incident.states),
                kind=incident.kind,
                n_updates=n_updates,
                source_event_id=incident.event_id,
            )
        )
    tickets.sort(key=lambda t: (-t.n_updates, t.created_ts))
    return tickets
