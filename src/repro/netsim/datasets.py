"""Dataset presets: the two networks of the paper's evaluation.

* **Dataset A** — tier-1 ISP backbone, vendor V1 (IOS-flavoured messages).
* **Dataset B** — nationwide commercial IPTV backbone, vendor V2
  (TiMOS-flavoured messages), including the primary/secondary LSP structure
  behind the Section 6.1 PIM cascade.

Both presets take a ``scale`` knob so tests can run on miniature versions
while benches use fuller ones; message *shapes* are identical at any scale.

The paper's timeline: Sep-Nov 2009 (3 months ≈ 12 weeks) for offline
learning, Dec 1-14 2009 (2 weeks) for online digesting.  We reuse those
dates for flavour; any start works.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.netsim.configgen import render_configs
from repro.netsim.generator import (
    GenerationResult,
    ScenarioSpec,
    WorkloadEngine,
    WorkloadMix,
)
from repro.netsim.topology import Network, build_network
from repro.utils.timeutils import DAY, parse_ts

LEARNING_START = parse_ts("2009-09-01 00:00:00")
LEARNING_DAYS = 84  # 12 weeks
ONLINE_START = parse_ts("2009-12-01 00:00:00")
ONLINE_DAYS = 14


@dataclass(frozen=True)
class DatasetSpec:
    """A reproducible dataset recipe."""

    name: str
    vendor: str
    n_routers: int
    mix: WorkloadMix
    seed: int

    def scaled(self, scale: float) -> DatasetSpec:
        """Shrink (or grow) router count and scenario rates together."""
        specs = [
            replace(s, rate_per_day=s.rate_per_day * scale)
            for s in self.mix.specs
        ]
        return replace(
            self,
            n_routers=max(4, int(self.n_routers * scale)),
            mix=WorkloadMix(
                specs=specs,
                noise_intensity=self.mix.noise_intensity,
            ),
        )


def dataset_a(seed: int = 1) -> DatasetSpec:
    """The ISP-backbone-like dataset (vendor V1).

    Phase-in days stagger new behaviours into weeks 2-5 so the weekly rule
    base grows before stabilizing around week 6 (Figure 8).
    """
    return DatasetSpec(
        name="A",
        vendor="V1",
        n_routers=36,
        seed=seed,
        mix=WorkloadMix(
            specs=[
                ScenarioSpec("link_flap", rate_per_day=11.0),
                ScenarioSpec("bundle_member_flap", rate_per_day=2.5),
                ScenarioSpec("controller_instability", rate_per_day=3.0),
                ScenarioSpec("linecard_reset", rate_per_day=0.8, start_day=14),
                ScenarioSpec("bgp_session_reset", rate_per_day=4.0),
                ScenarioSpec("cpu_oscillation", rate_per_day=4.0),
                ScenarioSpec("tcp_scan", rate_per_day=2.0, start_day=7),
                ScenarioSpec("env_temp_alarm", rate_per_day=1.5, start_day=21),
                ScenarioSpec("config_session", rate_per_day=3.0),
            ],
            noise_intensity=1.0,
        ),
    )


def dataset_b(seed: int = 2) -> DatasetSpec:
    """The IPTV-backbone-like dataset (vendor V2).

    Later phase-ins (up to week 7) delay rule stabilization to about week 8
    (Figure 9).
    """
    return DatasetSpec(
        name="B",
        vendor="V2",
        n_routers=30,
        seed=seed,
        mix=WorkloadMix(
            specs=[
                ScenarioSpec("b_link_flap", rate_per_day=8.0),
                ScenarioSpec("b_mda_failure", rate_per_day=0.6, start_day=14),
                ScenarioSpec("b_pim_cascade", rate_per_day=2.0),
                ScenarioSpec("b_login_scan", rate_per_day=3.0, start_day=28),
                ScenarioSpec("b_bgp_flap", rate_per_day=3.5),
                ScenarioSpec("b_cpu_high", rate_per_day=3.0),
                ScenarioSpec("b_port_alarm", rate_per_day=2.0, start_day=42),
            ],
            noise_intensity=1.0,
        ),
    )


@dataclass
class DatasetInstance:
    """A realized dataset: topology, configs and a generation engine."""

    spec: DatasetSpec
    network: Network
    configs: dict[str, str]
    engine: WorkloadEngine

    def generate(
        self,
        start_ts: float,
        days: float,
        phase_origin: float | None = None,
    ) -> GenerationResult:
        """Generate ``days`` of labelled traffic starting at ``start_ts``.

        ``phase_origin`` anchors scenario phase-in days when this window
        continues an earlier timeline (see ``WorkloadEngine.generate``).
        """
        return self.engine.generate(start_ts, days * DAY, phase_origin)


def generate_dataset(
    spec: DatasetSpec, scale: float = 1.0
) -> DatasetInstance:
    """Build the network, its configs and a workload engine for ``spec``."""
    scaled = spec.scaled(scale) if scale != 1.0 else spec
    network = build_network(
        vendor=scaled.vendor, n_routers=scaled.n_routers, seed=scaled.seed
    )
    return DatasetInstance(
        spec=scaled,
        network=network,
        configs=render_configs(network),
        engine=WorkloadEngine(network=network, mix=scaled.mix, seed=scaled.seed),
    )
