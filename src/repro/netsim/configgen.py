"""Router config generation.

Emits the config grammar :mod:`repro.locations.configparse` understands.
The simulator never hands its internal topology to the mining pipeline —
the pipeline learns locations exclusively by parsing these configs, which
keeps the two-sided contract of the paper's Section 4.1.2 honest.
"""

from __future__ import annotations

from repro.locations.hierarchy import parse_interface_name
from repro.netsim.topology import Network, RouterNode

_NETMASK_P2P = "255.255.255.252"
_NETMASK_HOST = "255.255.255.255"


def render_config(network: Network, router: RouterNode) -> str:
    """Render one router's configuration text."""
    lines: list[str] = [f"hostname {router.name}", f"site {router.site}", "!"]

    used_slots = sorted(
        {
            parsed.slot
            for ifname in router.interfaces
            if (parsed := parse_interface_name(ifname)) is not None
            and parsed.slot is not None
        }
    )
    for slot in used_slots:
        lines.append(f"card {slot} type linecard-16")
        lines.append("!")

    controllers = sorted(
        {
            ctrl
            for ifname in router.interfaces
            if (ctrl := router.controller_of(ifname)) is not None
        }
    )
    for ctrl in controllers:
        lines.append(f"controller {ctrl}")
        lines.append("!")

    bundle_members = {
        bundle.end_for(router.name)[0]: bundle.end_for(router.name)[1]
        for bundle in network.bundles
        if router.name in (bundle.router_a, bundle.router_b)
    }
    for ifname in sorted(router.interfaces):
        iface = router.interfaces[ifname]
        lines.append(f"interface {ifname}")
        if iface.peer_router and iface.peer_ifname:
            lines.append(f" description to {iface.peer_router} {iface.peer_ifname}")
        mask = _NETMASK_HOST if iface.is_loopback else _NETMASK_P2P
        lines.append(f" ip address {iface.ip} {mask}")
        for member in bundle_members.get(ifname, ()):
            lines.append(f" multilink-group member {member}")
        lines.append("!")

    neighbors = sorted(
        network.routers[peer].loopback_ip
        for a, b in network.bgp_sessions
        for peer in ((b,) if a == router.name else (a,) if b == router.name else ())
    )
    if neighbors:
        lines.append("router bgp 7018")
        for ip in neighbors:
            lines.append(f" neighbor {ip} remote-as 7018")
        lines.append("!")

    return "\n".join(lines) + "\n"


def render_configs(network: Network) -> dict[str, str]:
    """Configs for every router, keyed by router name."""
    return {
        name: render_config(network, node)
        for name, node in network.routers.items()
    }
