"""Injectable network conditions (fault scenarios).

Each scenario renders one *network condition* into the cascade of syslog
messages a real network would log for it — across time (flapping,
retries), protocol layers (layer-1 link, line protocol, IGP, BGP, PIM,
MPLS) and routers (both ends of a link, routers along a protection path).
That many-messages-per-condition structure is precisely what SyslogDigest
mines back out; the ground-truth ``event_id`` on every message lets the
evaluation score how well it does.

Scenario functions all share the signature
``(network, rng, event_id, start_ts) -> Incident``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.locations.hierarchy import parse_interface_name
from repro.locations.model import Location, LocationKind
from repro.netsim.catalog import catalog_for
from repro.netsim.topology import Link, Network
from repro.syslog.message import LabeledMessage, SyslogMessage
from repro.utils.timeutils import HOUR, MINUTE


@dataclass
class Incident:
    """Ground truth for one injected network condition."""

    event_id: str
    kind: str
    start_ts: float
    end_ts: float
    routers: tuple[str, ...]
    states: tuple[str, ...]
    messages: list[LabeledMessage] = field(default_factory=list)

    @property
    def n_messages(self) -> int:
        """Number of syslog messages this condition produced."""
        return len(self.messages)


class _Emitter:
    """Accumulates a scenario's messages with shared labels."""

    def __init__(self, network: Network, event_id: str, kind: str) -> None:
        self._network = network
        self._catalog = catalog_for(network.vendor)
        self._event_id = event_id
        self._kind = kind
        self._messages: list[LabeledMessage] = []
        self._routers: set[str] = set()

    def emit(
        self,
        template_id: str,
        ts: float,
        router: str,
        locations: tuple[Location, ...] = (),
        **fields: object,
    ) -> None:
        """Render one catalog message at ``ts`` on ``router``."""
        spec = self._catalog[template_id]
        self._routers.add(router)
        self._messages.append(
            LabeledMessage(
                message=SyslogMessage(
                    timestamp=ts,
                    router=router,
                    error_code=spec.error_code,
                    detail=spec.render(**fields),
                    vendor=spec.vendor,
                ),
                event_id=self._event_id,
                template_id=template_id,
                locations=tuple(loc.key() for loc in locations),
            )
        )

    def finish(self) -> Incident:
        """Package the accumulated messages as a ground-truth incident."""
        msgs = sorted(self._messages, key=lambda m: m.timestamp)
        states = tuple(
            sorted(
                {
                    self._network.routers[r].site
                    for r in self._routers
                    if r in self._network.routers
                }
            )
        )
        return Incident(
            event_id=self._event_id,
            kind=self._kind,
            start_ts=msgs[0].timestamp if msgs else 0.0,
            end_ts=msgs[-1].timestamp if msgs else 0.0,
            routers=tuple(sorted(self._routers)),
            states=states,
            messages=msgs,
        )


def _iface_loc(router: str, ifname: str) -> Location:
    parsed = parse_interface_name(ifname)
    kind = parsed.kind if parsed else LocationKind.ROUTER
    return Location(router, kind, ifname)


def _pick_link(network: Network, rng: random.Random) -> Link:
    weights = [
        network.routers[link.router_a].activity
        + network.routers[link.router_b].activity
        for link in network.links
    ]
    return rng.choices(network.links, weights=weights, k=1)[0]


def _pick_router(network: Network, rng: random.Random) -> str:
    names = list(network.routers)
    weights = [network.routers[n].activity for n in names]
    return rng.choices(names, weights=weights, k=1)[0]


def _flap_count(rng: random.Random, mean: float) -> int:
    """Heavy-tailed repeat count.

    Geometric with the given mean, but a small fraction of conditions are
    *chronic* — an unstable component repeating its symptom for hours
    (the paper's Figure 4 controller) — which multiplies the count.  The
    chronic tail is what pushes the mean messages-per-event high enough
    for the three-orders-of-magnitude compression the paper reports.
    """
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    count = 1
    while rng.random() > p and count < 400:
        count += 1
    if rng.random() < 0.08:
        count = min(count * rng.randint(8, 25), 2000)
    return count


def _random_external_ip(rng: random.Random) -> str:
    return (
        f"{rng.randrange(11, 100)}.{rng.randrange(256)}"
        f".{rng.randrange(256)}.{rng.randrange(1, 255)}"
    )


# --------------------------------------------------------------------------
# Dataset A (vendor V1) scenarios
# --------------------------------------------------------------------------


def link_flap(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """A link flapping a few times: the paper's Table 2 running example.

    Each flap produces LINK down/up and LINEPROTO down/up on both ends;
    sustained flapping also takes the IGP adjacency and (sometimes) the BGP
    session down.
    """
    em = _Emitter(network, event_id, "link_flap")
    link = _pick_link(network, rng)
    n_flaps = _flap_count(rng, mean=22.0)
    period = rng.uniform(8.0, 45.0)
    ts = start_ts
    igp_involved = n_flaps >= 3 and rng.random() < 0.7
    use_isis = rng.random() < 0.4

    for flap in range(n_flaps):
        down_ts = ts
        up_ts = ts + period * rng.uniform(0.3, 0.6)
        for router, ifname, _ip in link.ends():
            loc = _iface_loc(router, ifname)
            skew = rng.uniform(0.0, 0.9)
            em.emit("v1.link_down", down_ts + skew, router, (loc,), iface=ifname)
            em.emit(
                "v1.lineproto_down", down_ts + skew + rng.uniform(0.1, 1.0),
                router, (loc,), iface=ifname,
            )
            em.emit("v1.link_up", up_ts + skew, router, (loc,), iface=ifname)
            em.emit(
                "v1.lineproto_up", up_ts + skew + rng.uniform(0.1, 1.0),
                router, (loc,), iface=ifname,
            )
        if igp_involved and flap == 0:
            for router, ifname, _ip in link.ends():
                loc = _iface_loc(router, ifname)
                far = link.far_ip(router)
                if use_isis:
                    peer = (
                        link.router_b if router == link.router_a
                        else link.router_a
                    )
                    em.emit(
                        "v1.isis_down", down_ts + rng.uniform(1.0, 3.0),
                        router, (loc,), neighbor=peer, iface=ifname,
                    )
                else:
                    em.emit(
                        "v1.ospf_down", down_ts + rng.uniform(1.0, 3.0),
                        router, (loc,), ip=far, iface=ifname,
                    )
        ts += period
    if igp_involved:
        final_up = ts - period + period * rng.uniform(0.3, 0.6)
        for router, ifname, _ip in link.ends():
            loc = _iface_loc(router, ifname)
            far = link.far_ip(router)
            if use_isis:
                peer = (
                    link.router_b if router == link.router_a else link.router_a
                )
                em.emit(
                    "v1.isis_up", final_up + rng.uniform(2.0, 8.0),
                    router, (loc,), neighbor=peer, iface=ifname,
                )
            else:
                em.emit(
                    "v1.ospf_up", final_up + rng.uniform(2.0, 8.0),
                    router, (loc,), ip=far, iface=ifname,
                )
    return em.finish()


def controller_instability(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """An unstable controller going up/down many times (Figure 4).

    Long burst of CONTROLLER up/down with short, EWMA-learnable intervals;
    the channelized interface on that controller flaps along.
    """
    em = _Emitter(network, event_id, "controller_instability")
    router_name = _pick_router(network, rng)
    node = network.routers[router_name]
    channelized = [
        ifname for ifname in node.interfaces if node.controller_of(ifname)
    ]
    if not channelized:
        # Loopback-only router (cannot happen in built networks, but be safe).
        ifname = next(iter(node.interfaces))
        em.emit(
            "v1.link_down", start_ts, router_name,
            (_iface_loc(router_name, ifname),), iface=ifname,
        )
        return em.finish()
    ifname = rng.choice(channelized)
    ctrl = node.controller_of(ifname)
    assert ctrl is not None
    ctrl_loc = Location(router_name, LocationKind.PORT, ctrl.lstrip("Serial"))
    if_loc = _iface_loc(router_name, ifname)

    n_cycles = _flap_count(rng, mean=45.0) + 5
    ts = start_ts
    for _ in range(n_cycles):
        em.emit("v1.controller_down", ts, router_name, (ctrl_loc,), ctrl=ctrl)
        if rng.random() < 0.8:
            em.emit(
                "v1.link_down", ts + rng.uniform(0.2, 1.5), router_name,
                (if_loc,), iface=ifname,
            )
            em.emit(
                "v1.lineproto_down", ts + rng.uniform(0.5, 2.5), router_name,
                (if_loc,), iface=ifname,
            )
        up = ts + rng.uniform(2.0, 20.0)
        em.emit("v1.controller_up", up, router_name, (ctrl_loc,), ctrl=ctrl)
        if rng.random() < 0.8:
            em.emit(
                "v1.link_up", up + rng.uniform(0.2, 1.5), router_name,
                (if_loc,), iface=ifname,
            )
            em.emit(
                "v1.lineproto_up", up + rng.uniform(0.5, 2.5), router_name,
                (if_loc,), iface=ifname,
            )
        ts = up + rng.uniform(15.0, 60.0)
    return em.finish()


def linecard_reset(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """A line card removed and re-inserted: every port on the slot flaps,
    and every far end sees its own link go down."""
    em = _Emitter(network, event_id, "linecard_reset")
    router_name = _pick_router(network, rng)
    node = network.routers[router_name]
    by_slot: dict[int, list[str]] = {}
    for ifname in node.interfaces:
        parsed = parse_interface_name(ifname)
        if parsed is not None and parsed.slot is not None:
            by_slot.setdefault(parsed.slot, []).append(ifname)
    if not by_slot:
        em.emit(
            "v1.config_change", start_ts, router_name, (),
            user="oper", ip="192.168.255.1",
        )
        return em.finish()
    slots = sorted(by_slot)
    slot = rng.choices(slots, weights=[len(by_slot[s]) for s in slots], k=1)[0]
    slot_loc = Location(router_name, LocationKind.SLOT, str(slot))
    outage = rng.uniform(60.0, 600.0)

    em.emit("v1.card_removed", start_ts, router_name, (slot_loc,), slot=slot)
    for ifname in by_slot[slot]:
        loc = _iface_loc(router_name, ifname)
        t_down = start_ts + rng.uniform(0.5, 3.0)
        em.emit("v1.link_down", t_down, router_name, (loc,), iface=ifname)
        em.emit(
            "v1.lineproto_down", t_down + rng.uniform(0.1, 1.0), router_name,
            (loc,), iface=ifname,
        )
        iface = node.interfaces[ifname]
        if iface.peer_router and iface.peer_ifname:
            peer_loc = _iface_loc(iface.peer_router, iface.peer_ifname)
            em.emit(
                "v1.link_down", t_down + rng.uniform(0.0, 0.9),
                iface.peer_router, (peer_loc,), iface=iface.peer_ifname,
            )
            em.emit(
                "v1.lineproto_down", t_down + rng.uniform(0.2, 1.5),
                iface.peer_router, (peer_loc,), iface=iface.peer_ifname,
            )
    t_back = start_ts + outage
    em.emit("v1.card_inserted", t_back, router_name, (slot_loc,), slot=slot)
    for ifname in by_slot[slot]:
        loc = _iface_loc(router_name, ifname)
        t_up = t_back + rng.uniform(5.0, 30.0)
        em.emit("v1.link_up", t_up, router_name, (loc,), iface=ifname)
        em.emit(
            "v1.lineproto_up", t_up + rng.uniform(0.1, 1.0), router_name,
            (loc,), iface=ifname,
        )
        iface = node.interfaces[ifname]
        if iface.peer_router and iface.peer_ifname:
            peer_loc = _iface_loc(iface.peer_router, iface.peer_ifname)
            em.emit(
                "v1.link_up", t_up + rng.uniform(0.0, 0.9),
                iface.peer_router, (peer_loc,), iface=iface.peer_ifname,
            )
            em.emit(
                "v1.lineproto_up", t_up + rng.uniform(0.2, 1.5),
                iface.peer_router, (peer_loc,), iface=iface.peer_ifname,
            )
    return em.finish()


def bgp_session_reset(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """A BGP storm over many VPN VRFs on one session (Tables 3/4).

    Each VRF logs a Down with a vendor-specific reason sub-type on both
    ends (sent on one side, received on the other), then an Up.
    """
    em = _Emitter(network, event_id, "bgp_session_reset")
    link = _pick_link(network, rng)
    n_vrfs = rng.randint(15, 120)
    vrfs = [f"1000:{1000 + rng.randrange(5000)}" for _ in range(n_vrfs)]
    down_reason = rng.choice(["sent", "peerclosed", "ifflap"])
    outage = rng.uniform(30.0, 20 * MINUTE)

    for vrf in vrfs:
        t = start_ts + rng.uniform(0.0, 10.0)
        a, b = link.ends()[0], link.ends()[1]
        loc_a = _iface_loc(a[0], a[1])
        loc_b = _iface_loc(b[0], b[1])
        if down_reason == "sent":
            em.emit(
                "v1.bgp_down_sent", t, a[0], (loc_a,),
                ip=link.far_ip(a[0]), vrf=vrf,
            )
            em.emit(
                "v1.bgp_down_received", t + rng.uniform(0.0, 1.0), b[0],
                (loc_b,), ip=link.far_ip(b[0]), vrf=vrf,
            )
        elif down_reason == "ifflap":
            em.emit(
                "v1.bgp_down_ifflap", t, a[0], (loc_a,),
                ip=link.far_ip(a[0]), vrf=vrf,
            )
            em.emit(
                "v1.bgp_down_ifflap", t + rng.uniform(0.0, 1.0), b[0],
                (loc_b,), ip=link.far_ip(b[0]), vrf=vrf,
            )
        else:
            em.emit(
                "v1.bgp_down_peerclosed", t, a[0], (loc_a,),
                ip=link.far_ip(a[0]), vrf=vrf,
            )
            em.emit(
                "v1.bgp_down_peerclosed", t + rng.uniform(0.0, 1.0), b[0],
                (loc_b,), ip=link.far_ip(b[0]), vrf=vrf,
            )
        t_up = start_ts + outage + rng.uniform(0.0, 10.0)
        em.emit("v1.bgp_up", t_up, a[0], (loc_a,), ip=link.far_ip(a[0]), vrf=vrf)
        em.emit(
            "v1.bgp_up", t_up + rng.uniform(0.0, 1.0), b[0], (loc_b,),
            ip=link.far_ip(b[0]), vrf=vrf,
        )
    return em.finish()


def cpu_oscillation(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """CPU utilization crossing its threshold repeatedly (Table 1 rows 3-4)."""
    em = _Emitter(network, event_id, "cpu_oscillation")
    router_name = _pick_router(network, rng)
    loc = Location.router_level(router_name)
    n_cycles = _flap_count(rng, mean=18.0)
    ts = start_ts
    for _ in range(n_cycles):
        pids = rng.sample(range(2, 300), 3)
        utils = sorted(
            (rng.randrange(30, 80), rng.randrange(2, 20), rng.randrange(1, 8)),
            reverse=True,
        )
        em.emit(
            "v1.cpu_rising", ts, router_name, (loc,),
            total=rng.randrange(85, 100), intr=rng.randrange(0, 5),
            p1=pids[0], u1=utils[0], p2=pids[1], u2=utils[1],
            p3=pids[2], u3=utils[2],
        )
        fall = ts + rng.uniform(30.0, 8 * MINUTE)
        em.emit(
            "v1.cpu_falling", fall, router_name, (loc,),
            total=rng.randrange(10, 50), intr=rng.randrange(0, 3),
        )
        ts = fall + rng.uniform(1 * MINUTE, 10 * MINUTE)
    return em.finish()


def tcp_scan(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """Periodic TCP MD5 bad-auth messages from an outside scanner (Fig 5)."""
    em = _Emitter(network, event_id, "tcp_scan")
    router_name = _pick_router(network, rng)
    loc = Location.router_level(router_name)
    node = network.routers[router_name]
    src = _random_external_ip(rng)
    period = rng.uniform(30.0, 120.0)
    n_probes = rng.randint(100, 600)
    ts = start_ts
    for _ in range(n_probes):
        em.emit(
            "v1.tcp_badauth", ts, router_name, (loc,),
            src_ip=src, src_port=rng.randrange(1024, 65535),
            dst_ip=node.loopback_ip,
        )
        if rng.random() < 0.9:
            em.emit(
                "v1.acl_deny", ts + rng.uniform(0.0, 3.0), router_name, (loc,),
                src_ip=src, src_port=rng.randrange(1024, 65535),
                dst_ip=node.loopback_ip, dst_port=rng.choice([22, 23, 179]),
            )
        ts += period * rng.uniform(0.85, 1.15)
    return em.finish()


def env_temp_alarm(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """Recurring temperature alarms on one slot."""
    em = _Emitter(network, event_id, "env_temp_alarm")
    router_name = _pick_router(network, rng)
    node = network.routers[router_name]
    slot = rng.randrange(node.n_slots)
    loc = Location(router_name, LocationKind.SLOT, str(slot))
    ts = start_ts
    for _ in range(rng.randint(8, 40)):
        em.emit(
            "v1.env_temp", ts, router_name, (loc,),
            slot=slot, temp=rng.randrange(58, 75),
        )
        if rng.random() < 0.8:
            em.emit(
                "v1.env_fan", ts + rng.uniform(0.5, 4.0), router_name,
                (loc,), slot=slot, rpm=rng.randrange(1500, 4000),
            )
        ts += rng.uniform(4 * MINUTE, 6 * MINUTE)
    return em.finish()


def config_session(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """An operator config session (a small but operator-caused event)."""
    em = _Emitter(network, event_id, "config_session")
    router_name = _pick_router(network, rng)
    user = rng.choice(["oper1", "oper2", "neteng", "provision"])
    src = f"192.168.255.{rng.randrange(1, 254)}"
    ts = start_ts
    for _ in range(rng.randint(1, 5)):
        em.emit(
            "v1.config_change", ts, router_name,
            (Location.router_level(router_name),), user=user, ip=src,
        )
        ts += rng.uniform(20.0, 4 * MINUTE)
    return em.finish()


def bundle_member_flap(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """A member of a multilink bundle flapping.

    Each member flap logs LINK/LINEPROTO on the member interface of both
    ends plus MLPPP degraded/restored on the *bundle* interface — the
    logical-configuration case of Figure 3: grouping must relate the
    member (physical) and bundle (logical) locations through multilink
    membership.
    """
    em = _Emitter(network, event_id, "bundle_member_flap")
    if not network.bundles:
        return link_flap(network, rng, event_id, start_ts)
    bundle = rng.choice(network.bundles)
    member_idx = rng.randrange(len(bundle.members_a))
    n_flaps = _flap_count(rng, mean=10.0)
    period = rng.uniform(15.0, 60.0)
    ts = start_ts
    for _ in range(n_flaps):
        up_ts = ts + period * rng.uniform(0.3, 0.6)
        for router in (bundle.router_a, bundle.router_b):
            bname, members = bundle.end_for(router)
            ifname = members[member_idx]
            member_loc = _iface_loc(router, ifname)
            bundle_loc = Location(router, LocationKind.MULTILINK, bname)
            skew = rng.uniform(0.0, 0.9)
            em.emit(
                "v1.link_down", ts + skew, router, (member_loc,),
                iface=ifname,
            )
            em.emit(
                "v1.lineproto_down", ts + skew + rng.uniform(0.1, 1.0),
                router, (member_loc,), iface=ifname,
            )
            em.emit(
                "v1.mlp_degraded", ts + skew + rng.uniform(0.5, 2.0),
                router, (bundle_loc,), bundle=bname,
            )
            em.emit(
                "v1.link_up", up_ts + skew, router, (member_loc,),
                iface=ifname,
            )
            em.emit(
                "v1.lineproto_up", up_ts + skew + rng.uniform(0.1, 1.0),
                router, (member_loc,), iface=ifname,
            )
            em.emit(
                "v1.mlp_restored", up_ts + skew + rng.uniform(0.5, 2.0),
                router, (bundle_loc,), bundle=bname,
            )
        ts += period
    return em.finish()


# --------------------------------------------------------------------------
# Dataset B (vendor V2) scenarios
# --------------------------------------------------------------------------


def b_link_flap(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """IPTV backbone link flap: SNMP linkDown/linkup plus SAP updates."""
    em = _Emitter(network, event_id, "b_link_flap")
    link = _pick_link(network, rng)
    n_flaps = _flap_count(rng, mean=24.0)
    period = rng.uniform(10.0, 60.0)
    ts = start_ts
    for _ in range(n_flaps):
        up_ts = ts + period * rng.uniform(0.3, 0.6)
        for router, ifname, _ip in link.ends():
            loc = _iface_loc(router, ifname)
            skew = rng.uniform(0.0, 0.9)
            em.emit("v2.link_down", ts + skew, router, (loc,), port=ifname)
            em.emit(
                "v2.sap_change", ts + skew + rng.uniform(0.2, 2.0), router,
                (loc,), port=ifname,
            )
            em.emit("v2.link_up", up_ts + skew, router, (loc,), port=ifname)
            em.emit(
                "v2.sap_change", up_ts + skew + rng.uniform(0.2, 2.0), router,
                (loc,), port=ifname,
            )
        ts += period
    return em.finish()


def b_mda_failure(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """An MDA (media dependent adapter) failing: all its ports go down."""
    em = _Emitter(network, event_id, "b_mda_failure")
    router_name = _pick_router(network, rng)
    node = network.routers[router_name]
    by_mda: dict[tuple[int, int], list[str]] = {}
    for ifname in node.interfaces:
        parsed = parse_interface_name(ifname)
        if parsed is not None and parsed.slot is not None and parsed.port is not None:
            by_mda.setdefault((parsed.slot, parsed.port), []).append(ifname)
    if not by_mda:
        em.emit(
            "v2.config_save", start_ts, router_name,
            (Location.router_level(router_name),), user="admin",
        )
        return em.finish()
    mdas = sorted(by_mda)
    slot, mda = rng.choices(
        mdas, weights=[len(by_mda[m]) for m in mdas], k=1
    )[0]
    ports = by_mda[(slot, mda)]
    slot_loc = Location(router_name, LocationKind.SLOT, str(slot))
    outage = rng.uniform(2 * MINUTE, 30 * MINUTE)

    em.emit(
        "v2.mda_fail", start_ts, router_name, (slot_loc,), slot=slot, mda=mda
    )
    for ifname in ports:
        loc = _iface_loc(router_name, ifname)
        t = start_ts + rng.uniform(0.5, 3.0)
        em.emit("v2.link_down", t, router_name, (loc,), port=ifname)
        em.emit(
            "v2.sap_change", t + rng.uniform(0.2, 2.0), router_name, (loc,),
            port=ifname,
        )
        iface = node.interfaces[ifname]
        if iface.peer_router and iface.peer_ifname:
            em.emit(
                "v2.link_down", t + rng.uniform(0.0, 0.9), iface.peer_router,
                (_iface_loc(iface.peer_router, iface.peer_ifname),),
                port=iface.peer_ifname,
            )
    t_back = start_ts + outage
    em.emit(
        "v2.mda_clear", t_back, router_name, (slot_loc,), slot=slot, mda=mda
    )
    for ifname in ports:
        loc = _iface_loc(router_name, ifname)
        t = t_back + rng.uniform(1.0, 10.0)
        em.emit("v2.link_up", t, router_name, (loc,), port=ifname)
        iface = node.interfaces[ifname]
        if iface.peer_router and iface.peer_ifname:
            em.emit(
                "v2.link_up", t + rng.uniform(0.0, 0.9), iface.peer_router,
                (_iface_loc(iface.peer_router, iface.peer_ifname),),
                port=iface.peer_ifname,
            )
    return em.finish()


def b_pim_cascade(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """The Section 6.1 dual-failure PIM neighbor-loss cascade.

    The secondary LSP path has been failing to set up, retrying every five
    minutes; when the primary link later fails, FRR has nothing to switch
    to, so the LSP goes down and the PIM neighbor session is lost —
    messages spanning six protocols and several routers.
    """
    em = _Emitter(network, event_id, "b_pim_cascade")
    if not network.lsp_paths:
        return b_link_flap(network, rng, event_id, start_ts)
    path = rng.choice(network.lsp_paths)
    link = network.links[path.primary_link]
    src_node = network.routers[path.src]
    dst_node = network.routers[path.dst]

    # Phase 1: the secondary path quietly failing, retrying every 5 min.
    retry_period = 5 * MINUTE
    n_retries = rng.randint(6, 36)
    ts = start_ts
    for attempt in range(1, n_retries + 1):
        em.emit(
            "v2.lsp_retry", ts, path.src, (Location.router_level(path.src),),
            lsp=path.name, attempt=attempt,
        )
        ts += retry_period * rng.uniform(0.98, 1.02)

    # Phase 2: the primary link fails.
    fail_ts = ts + rng.uniform(1.0, 60.0)
    for router, ifname, _ip in link.ends():
        loc = _iface_loc(router, ifname)
        skew = rng.uniform(0.0, 0.9)
        em.emit("v2.link_down", fail_ts + skew, router, (loc,), port=ifname)
        em.emit(
            "v2.sap_change", fail_ts + skew + rng.uniform(0.2, 2.0), router,
            (loc,), port=ifname,
        )
    em.emit(
        "v2.frr_switch", fail_ts + rng.uniform(0.1, 1.0), path.src,
        (Location.router_level(path.src),), lsp=path.name,
    )
    em.emit(
        "v2.lsp_down", fail_ts + rng.uniform(1.0, 3.0), path.src,
        (Location.router_level(path.src),), lsp=path.name,
    )
    # The failed switch-over immediately re-signals the secondary path: a
    # quick burst of retries right after the FRR event.  This is what lets
    # rule mining associate the retry template with the cascade, so the
    # digest event signature exposes the broken secondary path — the crux
    # of the paper's Section 6.1 troubleshooting story.
    for burst in range(rng.randint(2, 4)):
        attempt_ts = fail_ts + rng.uniform(2.0, 25.0) + burst * rng.uniform(3.0, 8.0)
        em.emit(
            "v2.lsp_retry", attempt_ts, path.src,
            (Location.router_level(path.src),),
            lsp=path.name, attempt=n_retries + 1 + burst,
        )
    # PIM session between the ends dies; BGP follows.
    pim_ts = fail_ts + rng.uniform(2.0, 5.0)
    em.emit(
        "v2.pim_nbr_loss", pim_ts, path.src,
        (_iface_loc(path.src, link.ifname_a),),
        ip=dst_node.loopback_ip, port=link.ifname_a,
    )
    em.emit(
        "v2.pim_nbr_loss", pim_ts + rng.uniform(0.0, 1.0), path.dst,
        (_iface_loc(path.dst, link.ifname_b),),
        ip=src_node.loopback_ip, port=link.ifname_b,
    )
    em.emit(
        "v2.bgp_down", pim_ts + rng.uniform(5.0, 30.0), path.src,
        (Location.router_level(path.src),), ip=dst_node.loopback_ip,
    )
    em.emit(
        "v2.bgp_down", pim_ts + rng.uniform(5.0, 30.0), path.dst,
        (Location.router_level(path.dst),), ip=src_node.loopback_ip,
    )
    # More retries while the link is out.
    repair_ts = fail_ts + rng.uniform(10 * MINUTE, 2 * HOUR)
    t = fail_ts + retry_period
    attempt = n_retries + 1
    while t < repair_ts:
        em.emit(
            "v2.lsp_retry", t, path.src, (Location.router_level(path.src),),
            lsp=path.name, attempt=attempt,
        )
        attempt += 1
        t += retry_period * rng.uniform(0.98, 1.02)

    # Phase 3: repair.
    for router, ifname, _ip in link.ends():
        loc = _iface_loc(router, ifname)
        skew = rng.uniform(0.0, 0.9)
        em.emit("v2.link_up", repair_ts + skew, router, (loc,), port=ifname)
    em.emit(
        "v2.lsp_up", repair_ts + rng.uniform(1.0, 5.0), path.src,
        (Location.router_level(path.src),), lsp=path.name,
    )
    up_ts = repair_ts + rng.uniform(3.0, 10.0)
    em.emit(
        "v2.pim_nbr_up", up_ts, path.src,
        (_iface_loc(path.src, link.ifname_a),),
        ip=dst_node.loopback_ip, port=link.ifname_a,
    )
    em.emit(
        "v2.pim_nbr_up", up_ts + rng.uniform(0.0, 1.0), path.dst,
        (_iface_loc(path.dst, link.ifname_b),),
        ip=src_node.loopback_ip, port=link.ifname_b,
    )
    em.emit(
        "v2.bgp_up", up_ts + rng.uniform(10.0, 60.0), path.src,
        (Location.router_level(path.src),), ip=dst_node.loopback_ip,
    )
    em.emit(
        "v2.bgp_up", up_ts + rng.uniform(10.0, 60.0), path.dst,
        (Location.router_level(path.dst),), ip=src_node.loopback_ip,
    )
    return em.finish()


def b_login_scan(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """Paired FTP/SSH login-failure probes ~35 s apart.

    Reproduces the dataset-B association the paper reports appearing only
    once the mining window reaches 30-40 s.
    """
    em = _Emitter(network, event_id, "b_login_scan")
    router_name = _pick_router(network, rng)
    loc = Location.router_level(router_name)
    src = _random_external_ip(rng)
    user = rng.choice(["root", "admin", "test", "ubnt"])
    ts = start_ts
    for _ in range(rng.randint(30, 160)):
        em.emit("v2.ftp_fail", ts, router_name, (loc,), user=user, ip=src)
        em.emit(
            "v2.ssh_fail", ts + rng.uniform(30.0, 40.0), router_name, (loc,),
            user=user, ip=src,
        )
        ts += rng.uniform(60.0, 180.0)
    return em.finish()


def b_bgp_flap(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """A BGP peer bouncing between Established and Idle."""
    em = _Emitter(network, event_id, "b_bgp_flap")
    link = _pick_link(network, rng)
    a_name, b_name = link.router_a, link.router_b
    a_loop = network.routers[a_name].loopback_ip
    b_loop = network.routers[b_name].loopback_ip
    n_cycles = _flap_count(rng, mean=16.0)
    ts = start_ts
    for _ in range(n_cycles):
        em.emit(
            "v2.bgp_down", ts, a_name, (Location.router_level(a_name),),
            ip=b_loop,
        )
        em.emit(
            "v2.bgp_down", ts + rng.uniform(0.0, 1.0), b_name,
            (Location.router_level(b_name),), ip=a_loop,
        )
        up = ts + rng.uniform(30.0, 5 * MINUTE)
        em.emit(
            "v2.bgp_up", up, a_name, (Location.router_level(a_name),),
            ip=b_loop,
        )
        em.emit(
            "v2.bgp_up", up + rng.uniform(0.0, 1.0), b_name,
            (Location.router_level(b_name),), ip=a_loop,
        )
        ts = up + rng.uniform(MINUTE, 15 * MINUTE)
    return em.finish()


def b_cpu_high(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """CPU high-watermark oscillation on an IPTV router."""
    em = _Emitter(network, event_id, "b_cpu_high")
    router_name = _pick_router(network, rng)
    loc = Location.router_level(router_name)
    ts = start_ts
    for _ in range(_flap_count(rng, mean=18.0)):
        em.emit(
            "v2.cpu_high", ts, router_name, (loc,), pct=rng.randrange(85, 100)
        )
        clear = ts + rng.uniform(30.0, 6 * MINUTE)
        em.emit(
            "v2.cpu_clear", clear, router_name, (loc,),
            pct=rng.randrange(40, 80),
        )
        ts = clear + rng.uniform(MINUTE, 8 * MINUTE)
    return em.finish()


def b_port_alarm(
    network: Network, rng: random.Random, event_id: str, start_ts: float
) -> Incident:
    """Ethernet remote-fault alarms raising and clearing on one port."""
    em = _Emitter(network, event_id, "b_port_alarm")
    link = _pick_link(network, rng)
    router, ifname, _ip = link.ends()[rng.randrange(2)]
    loc = _iface_loc(router, ifname)
    ts = start_ts
    for _ in range(_flap_count(rng, mean=24.0)):
        em.emit("v2.port_degraded", ts, router, (loc,), port=ifname)
        clear = ts + rng.uniform(5.0, 35.0)
        em.emit("v2.port_cleared", clear, router, (loc,), port=ifname)
        ts = clear + rng.uniform(20.0, 5 * MINUTE)
    return em.finish()


SCENARIOS_V1 = {
    "bundle_member_flap": bundle_member_flap,
    "link_flap": link_flap,
    "controller_instability": controller_instability,
    "linecard_reset": linecard_reset,
    "bgp_session_reset": bgp_session_reset,
    "cpu_oscillation": cpu_oscillation,
    "tcp_scan": tcp_scan,
    "env_temp_alarm": env_temp_alarm,
    "config_session": config_session,
}

SCENARIOS_V2 = {
    "b_link_flap": b_link_flap,
    "b_mda_failure": b_mda_failure,
    "b_pim_cascade": b_pim_cascade,
    "b_login_scan": b_login_scan,
    "b_bgp_flap": b_bgp_flap,
    "b_cpu_high": b_cpu_high,
    "b_port_alarm": b_port_alarm,
}


def scenarios_for(vendor: str):
    """Scenario registry for a vendor tag."""
    if vendor == "V1":
        return SCENARIOS_V1
    if vendor == "V2":
        return SCENARIOS_V2
    raise KeyError(f"unknown vendor {vendor!r}")
