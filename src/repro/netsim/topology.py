"""Network topology model and random backbone builder.

A :class:`Network` holds routers (with slots, ports, interfaces and
loopbacks), point-to-point links with /30 subnets, iBGP sessions between
loopbacks, and (dataset B) primary/secondary LSP path pairs used by the
Section 6.1 PIM fail-over cascade.

The builder produces a connected random backbone: a random spanning tree
plus extra chords, which yields the mix of degree-1 access routers and
high-degree hubs that drives the Figure 13 per-router volume skew.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.netsim.names import router_names


@dataclass
class Interface:
    """A configured logical interface (one end of a link, or a loopback)."""

    router: str
    name: str
    ip: str
    peer_router: str | None = None
    peer_ifname: str | None = None

    @property
    def is_loopback(self) -> bool:
        """True for the router's Loopback interface."""
        return self.name.startswith("Loopback")


@dataclass
class RouterNode:
    """One router: identity, hardware inventory, and configured interfaces."""

    name: str
    site: str
    vendor: str
    n_slots: int
    loopback_ip: str
    interfaces: dict[str, Interface] = field(default_factory=dict)
    # Relative propensity to host injected conditions (heavy-tailed).
    activity: float = 1.0
    # Per-slot port allocation cursor: (slot, port, channel) next free.
    _next_port: dict[int, int] = field(default_factory=dict)

    def allocate_ifname(self, rng: random.Random) -> str:
        """Allocate the next free interface name on a random slot.

        Vendor V1 uses ``Serial{slot}/{port}/{chan}:0`` (logical channel on
        a channelized physical interface); vendor V2 uses bare
        ``{slot}/{mda}/{port}`` port names.
        """
        slot = rng.randrange(self.n_slots)
        port = self._next_port.get(slot, 0)
        self._next_port[slot] = port + 1
        if self.vendor == "V1":
            return f"Serial{slot}/{port}/10:0"
        return f"{slot}/{port % 2 + 1}/{port // 2 + 1}"

    def controller_of(self, ifname: str) -> str | None:
        """Controller (port-level) name for a V1 channelized interface."""
        if self.vendor != "V1" or "/" not in ifname:
            return None
        head = ifname.split(":", 1)[0]
        parts = head.split("/")
        if len(parts) < 2:
            return None
        return "/".join(parts[:2])


@dataclass
class Link:
    """A point-to-point link between two router interfaces."""

    router_a: str
    ifname_a: str
    ip_a: str
    router_b: str
    ifname_b: str
    ip_b: str

    def ends(self) -> tuple[tuple[str, str, str], tuple[str, str, str]]:
        """Both (router, ifname, local_ip) ends."""
        return (
            (self.router_a, self.ifname_a, self.ip_a),
            (self.router_b, self.ifname_b, self.ip_b),
        )

    def far_ip(self, router: str) -> str:
        """IP of the end *not* on ``router``."""
        if router == self.router_a:
            return self.ip_b
        if router == self.router_b:
            return self.ip_a
        raise ValueError(f"{router} is not an end of this link")


@dataclass
class Bundle:
    """A multilink bundle: parallel member links aggregated logically.

    Members are parallel: ``members_a[i]`` connects to ``members_b[i]``.
    The bundle interface itself (``Multilink<n>``) carries the layer-3
    address; Figure 3's "logical configuration" arm of the hierarchy.
    """

    router_a: str
    name_a: str
    members_a: list[str]
    router_b: str
    name_b: str
    members_b: list[str]

    def end_for(self, router: str) -> tuple[str, list[str]]:
        """(bundle name, member interface names) on ``router``."""
        if router == self.router_a:
            return self.name_a, self.members_a
        if router == self.router_b:
            return self.name_b, self.members_b
        raise ValueError(f"{router} is not an end of this bundle")


@dataclass
class LspPath:
    """A primary/secondary LSP pair between two routers (dataset B).

    ``primary_link`` is the index of the direct link; ``secondary_via`` is
    the intermediate router of the protection path.
    """

    name: str
    src: str
    dst: str
    primary_link: int
    secondary_via: str | None


@dataclass
class Network:
    """The full simulated network."""

    vendor: str
    routers: dict[str, RouterNode]
    links: list[Link]
    bgp_sessions: list[tuple[str, str]]
    lsp_paths: list[LspPath] = field(default_factory=list)
    bundles: list[Bundle] = field(default_factory=list)

    def bundle_of_interface(self, router: str, ifname: str) -> Bundle | None:
        """The bundle containing member ``ifname`` on ``router``, if any."""
        for bundle in self.bundles:
            if router == bundle.router_a and ifname in bundle.members_a:
                return bundle
            if router == bundle.router_b and ifname in bundle.members_b:
                return bundle
        return None

    def link_between(self, a: str, b: str) -> Link | None:
        """The first direct link between routers ``a`` and ``b``, if any."""
        for link in self.links:
            if {link.router_a, link.router_b} == {a, b}:
                return link
        return None

    def links_of(self, router: str) -> list[Link]:
        """All links with one end on ``router``."""
        return [
            link
            for link in self.links
            if router in (link.router_a, link.router_b)
        ]

    def neighbors_of(self, router: str) -> list[str]:
        """Directly linked routers."""
        out = []
        for link in self.links_of(router):
            out.append(
                link.router_b if link.router_a == router else link.router_a
            )
        return out


class _IpAllocator:
    """Sequential allocator: /30 link subnets and /32 loopbacks."""

    def __init__(self, link_base: str = "10.0.0.0", loop_base: str = "192.168.0.0"):
        self._link_counter = 0
        self._loop_counter = 0
        self._link_base = self._to_int(link_base)
        self._loop_base = self._to_int(loop_base)

    @staticmethod
    def _to_int(ip: str) -> int:
        a, b, c, d = (int(x) for x in ip.split("."))
        return (a << 24) | (b << 16) | (c << 8) | d

    @staticmethod
    def _to_str(value: int) -> str:
        return ".".join(
            str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
        )

    def link_pair(self) -> tuple[str, str]:
        """Two usable addresses of the next /30."""
        base = self._link_base + self._link_counter * 4
        self._link_counter += 1
        return self._to_str(base + 1), self._to_str(base + 2)

    def loopback(self) -> str:
        """Allocate the next /32 loopback address."""
        self._loop_counter += 1
        return self._to_str(self._loop_base + self._loop_counter)


def build_network(
    vendor: str,
    n_routers: int,
    seed: int,
    router_prefix: str | None = None,
    extra_link_fraction: float = 0.5,
    pareto_shape: float = 1.2,
) -> Network:
    """Build a connected random backbone.

    Parameters
    ----------
    vendor:
        ``"V1"`` (dataset A style) or ``"V2"`` (dataset B style).
    n_routers:
        Number of routers.
    seed:
        RNG seed — networks are fully deterministic given the seed.
    extra_link_fraction:
        Chord links added on top of the spanning tree, as a fraction of
        ``n_routers``.
    pareto_shape:
        Shape of the per-router activity weights; smaller = heavier tail.
    """
    if n_routers < 2:
        raise ValueError("need at least two routers")
    rng = random.Random(seed)
    prefix = router_prefix or ("ar" if vendor == "V1" else "br")
    ips = _IpAllocator(
        link_base="10.0.0.0" if vendor == "V1" else "10.128.0.0",
        loop_base="192.168.0.0" if vendor == "V1" else "192.168.128.0",
    )

    routers: dict[str, RouterNode] = {}
    for name, state in router_names(prefix, n_routers, rng):
        routers[name] = RouterNode(
            name=name,
            site=state,
            vendor=vendor,
            n_slots=rng.choice([4, 8, 16]),
            loopback_ip=ips.loopback(),
            activity=rng.paretovariate(pareto_shape),
        )

    names = list(routers)
    links: list[Link] = []
    linked_pairs: set[frozenset[str]] = set()

    def connect(a: str, b: str) -> None:
        pair = frozenset((a, b))
        if pair in linked_pairs:
            return
        linked_pairs.add(pair)
        if_a = routers[a].allocate_ifname(rng)
        if_b = routers[b].allocate_ifname(rng)
        ip_a, ip_b = ips.link_pair()
        routers[a].interfaces[if_a] = Interface(a, if_a, ip_a, b, if_b)
        routers[b].interfaces[if_b] = Interface(b, if_b, ip_b, a, if_a)
        links.append(Link(a, if_a, ip_a, b, if_b, ip_b))

    # Random spanning tree: attach each router to a random earlier one,
    # biased towards active routers so hubs emerge.
    for i in range(1, len(names)):
        weights = [routers[n].activity for n in names[:i]]
        target = rng.choices(names[:i], weights=weights, k=1)[0]
        connect(names[i], target)
    # Extra chords.
    n_extra = int(extra_link_fraction * n_routers)
    attempts = 0
    while n_extra > 0 and attempts < 50 * n_routers:
        attempts += 1
        a, b = rng.sample(names, 2)
        if frozenset((a, b)) not in linked_pairs:
            connect(a, b)
            n_extra -= 1

    # Multilink bundles (vendor V1): a slice of links gets a parallel
    # member plus a Multilink interface aggregating the two on each end —
    # the logical-configuration arm of the location hierarchy.
    bundles: list[Bundle] = []
    if vendor == "V1" and links:
        # Bundle a solid share of the backbone links: capacity aggregation
        # is ubiquitous, and a healthy population of distinct bundle names
        # is what lets template learning treat the name as a variable.
        n_bundles = max(2, len(links) // 2)
        chosen = rng.sample(range(len(links)), min(n_bundles, len(links)))
        # The id pool must comfortably exceed the bundle count or the
        # uniqueness rejection loop below cannot terminate; 400 matches
        # the historical pool at evaluation scale (so those networks are
        # unchanged) and grows with demand at benchmark scale.
        id_pool = max(400, 4 * len(chosen))
        used_ids: set[int] = set()
        for link_idx in sorted(chosen):
            first = links[link_idx]
            a, b = first.router_a, first.router_b
            # Second parallel member.
            if_a = routers[a].allocate_ifname(rng)
            if_b = routers[b].allocate_ifname(rng)
            ip_a, ip_b = ips.link_pair()
            routers[a].interfaces[if_a] = Interface(a, if_a, ip_a, b, if_b)
            routers[b].interfaces[if_b] = Interface(b, if_b, ip_b, a, if_a)
            links.append(Link(a, if_a, ip_a, b, if_b, ip_b))
            # The bundle interfaces carrying the aggregate.  Bundle
            # numbers come from a wide operator-style pool so names are
            # learned as variables, not absorbed into templates; ids are
            # globally unique to rule out per-router name clashes.
            bundle_id = rng.randrange(1, id_pool)
            while bundle_id in used_ids:
                bundle_id = rng.randrange(1, id_pool)
            used_ids.add(bundle_id)
            bname_a = f"Multilink{bundle_id}"
            bname_b = f"Multilink{bundle_id}"
            bip_a, bip_b = ips.link_pair()
            routers[a].interfaces[bname_a] = Interface(
                a, bname_a, bip_a, b, bname_b
            )
            routers[b].interfaces[bname_b] = Interface(
                b, bname_b, bip_b, a, bname_a
            )
            bundles.append(
                Bundle(
                    router_a=a,
                    name_a=bname_a,
                    members_a=[first.ifname_a, if_a],
                    router_b=b,
                    name_b=bname_b,
                    members_b=[first.ifname_b, if_b],
                )
            )

    # Loopbacks.
    for node in routers.values():
        node.interfaces["Loopback0"] = Interface(
            node.name, "Loopback0", node.loopback_ip
        )

    # iBGP sessions between adjacent routers (loopback-to-loopback), the
    # sessions cross-router grouping can use.
    bgp_sessions = [
        (link.router_a, link.router_b) for link in links
    ]

    # Dataset B: for each link, a protection path through a common neighbor
    # when one exists (the Section 6.1 primary/secondary pair).
    lsp_paths: list[LspPath] = []
    if vendor == "V2":
        adjacency: dict[str, set[str]] = {name: set() for name in names}
        for link in links:
            adjacency[link.router_a].add(link.router_b)
            adjacency[link.router_b].add(link.router_a)
        for idx, link in enumerate(links):
            common = sorted(
                (adjacency[link.router_a] & adjacency[link.router_b])
                - {link.router_a, link.router_b}
            )
            via = common[0] if common else None
            lsp_paths.append(
                LspPath(
                    name=f"lsp-{link.router_a}-{link.router_b}",
                    src=link.router_a,
                    dst=link.router_b,
                    primary_link=idx,
                    secondary_via=via,
                )
            )

    return Network(
        vendor=vendor,
        routers=routers,
        links=links,
        bgp_sessions=bgp_sessions,
        lsp_paths=lsp_paths,
        bundles=bundles,
    )
