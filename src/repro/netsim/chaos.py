"""Deterministic chaos harness for the serve daemon (DESIGN.md §14).

Drives a *real* ``repro serve`` process through scripted disasters —
log rotation mid-read, in-place truncation, disk-full during
checkpointing, SIGKILL mid-tail — and hands the test layer everything
it needs to assert the one property that matters: the digest a tenant
serves after surviving a disaster is ``stream_fingerprint``
byte-identical to an unfaulted run over the same data.

Determinism comes from three design facts, not from sleeping:

* faults are scripted, not random — :class:`~repro.netsim.faults.RotateLog`
  / :class:`TruncateLog` fire when the harness says, and disk faults
  (:func:`~repro.netsim.faults.durable_fault_from_dict`) count
  attempts, not wall time;
* the harness *observes* the daemon through its HTTP surface (per-source
  ``pushed`` counts, tail rotation/truncation counters) and gates each
  scripted step on observed state, so races are waited out, never
  guessed at;
* with a positive ``max_reorder_delay`` the ingest's emission order is
  invariant to arrival timing and chunking (every arrival beats the
  watermark, so emission order is the buffer's deterministic sort) —
  which is why a live faulted run can be compared byte-for-byte against
  an in-process reference that read the final file contents whole.

The pytest layer (``tests/test_chaos_smoke.py``, ``make chaos-smoke``)
composes these pieces into the scenarios the acceptance gate names.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

#: Default ceiling for every observation wait.  Generous because CI
#: boxes stall, irrelevant to determinism (gates fire on state, not
#: on the clock).
WAIT_TIMEOUT = 120.0


class ChaosTimeout(AssertionError):
    """An observation gate did not come true in time."""


class ChaosDaemon:
    """One live ``repro serve`` subprocess under harness control."""

    def __init__(
        self,
        config: dict,
        workdir: str | Path,
        seed: str = "0",
        repo_root: str | Path | None = None,
    ) -> None:
        self.config = config
        self.workdir = Path(workdir)
        self.seed = seed
        self.repo_root = Path(
            repo_root
            if repo_root is not None
            else Path(__file__).resolve().parents[3]
        )
        self.proc: subprocess.Popen | None = None
        self._stdout = ""
        self._stderr = ""

    # ----------------------------------------------------------- lifecycle

    def start(self) -> "ChaosDaemon":
        """Write the config and launch the daemon process."""
        self.workdir.mkdir(parents=True, exist_ok=True)
        config_path = self.workdir / "chaos-serve.json"
        config_path.write_text(json.dumps(self.config))
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["PYTHONHASHSEED"] = self.seed
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--config",
                str(config_path),
            ],
            cwd=str(self.repo_root),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        return self

    @property
    def port_file(self) -> Path:
        return Path(self.config["workdir"]) / "http.port"

    def wait_port(self, timeout: float = WAIT_TIMEOUT) -> int:
        """Block until the daemon binds its HTTP port; returns it."""
        deadline = time.monotonic() + timeout
        while not self.port_file.exists():
            if self.proc is not None and self.proc.poll() is not None:
                raise ChaosTimeout(
                    "daemon exited before binding: "
                    + (self.proc.communicate()[1] or "")
                )
            if time.monotonic() >= deadline:
                raise ChaosTimeout("daemon never bound its HTTP port")
            time.sleep(0.02)
        return int(self.port_file.read_text())

    def wait_exit(self, timeout: float = WAIT_TIMEOUT) -> int:
        """Block until the process ends; returns the exit code."""
        assert self.proc is not None
        self._stdout, self._stderr = self.proc.communicate(
            timeout=timeout
        )
        return self.proc.returncode

    @property
    def stderr(self) -> str:
        return self._stderr

    def kill(self) -> None:
        """Hard cleanup for test teardown paths."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate()

    # ---------------------------------------------------------------- HTTP

    def get(self, path: str):
        port = self.wait_port()
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30.0
        ) as response:
            return json.loads(response.read())

    def post(self, path: str):
        port = self.wait_port()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", data=b"", method="POST"
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return json.loads(response.read())

    def metrics_text(self) -> str:
        """The raw ``/metrics`` Prometheus text (not JSON)."""
        port = self.wait_port()
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=30.0
        ) as response:
            return response.read().decode("utf-8")

    def sources(self, tenant: str) -> list[dict]:
        """The per-source breaker/watermark/tail rows for one tenant."""
        return self.get(f"/tenants/{tenant}/sources")

    def health(self, tenant: str) -> dict:
        """One tenant's full health dict (stream/ingest/budgets/state)."""
        return self.get(f"/tenants/{tenant}/health")

    def state(self, tenant: str) -> str:
        """One tenant's supervisor state, via ``/healthz``."""
        return self.get("/healthz")["tenants"][tenant]

    def worker_pid(self, tenant: str) -> int | None:
        """The pid of the tenant's worker process (None when inline,
        dead, or between lives)."""
        return self.health(tenant).get("worker_pid")

    def drain(self) -> None:
        """Request the graceful ending (same as SIGTERM)."""
        self.post("/drain")

    # --------------------------------------------------------- observation

    def wait_for(
        self,
        predicate,
        what: str,
        timeout: float = WAIT_TIMEOUT,
    ) -> None:
        """Poll ``predicate()`` until truthy; every scripted chaos step
        gates on one of these, which is what keeps scenarios
        deterministic on arbitrarily slow machines."""
        deadline = time.monotonic() + timeout
        while True:
            if self.proc is not None and self.proc.poll() is not None:
                raise ChaosTimeout(
                    f"daemon exited while waiting for {what}: "
                    + (self.proc.communicate()[1] or "")
                )
            try:
                if predicate():
                    return
            except OSError:
                pass  # HTTP hiccup mid-poll: retry until the deadline
            if time.monotonic() >= deadline:
                raise ChaosTimeout(f"timed out waiting for {what}")
            time.sleep(0.05)

    def wait_pushed(
        self,
        tenant: str,
        counts: dict[str, int],
        timeout: float = WAIT_TIMEOUT,
    ) -> None:
        """Block until each named source has pushed >= its count."""

        def reached() -> bool:
            rows = {
                row["source"]: row for row in self.sources(tenant)
            }
            return all(
                rows[name]["pushed"] >= want
                for name, want in counts.items()
            )

        self.wait_for(
            reached, f"{tenant} pushed {counts}", timeout=timeout
        )

    def wait_counter(
        self,
        tenant: str,
        source: str,
        key: str,
        minimum: int = 1,
        timeout: float = WAIT_TIMEOUT,
    ) -> None:
        """Block until a tail counter (``rotations``/``truncations``)
        of one source row reaches ``minimum`` — i.e. until the daemon
        has *observed* a scripted file fault, so the next step cannot
        race it."""

        def reached() -> bool:
            for row in self.sources(tenant):
                if row["source"] == source:
                    return row.get(key, 0) >= minimum
            return False

        self.wait_for(
            reached,
            f"{tenant}:{source} {key} >= {minimum}",
            timeout=timeout,
        )

    def wait_state(
        self,
        tenant: str,
        states: str | tuple[str, ...],
        timeout: float = WAIT_TIMEOUT,
    ) -> None:
        """Block until the tenant's supervisor reaches one of ``states``."""
        want = (states,) if isinstance(states, str) else tuple(states)
        self.wait_for(
            lambda: self.state(tenant) in want,
            f"{tenant} state in {want}",
            timeout=timeout,
        )

    # ------------------------------------------------- partial failure

    def kill_worker(self, tenant: str) -> int:
        """SIGKILL one tenant's worker process mid-stream; returns its pid.

        The bulkhead lever: only that tenant's bulkhead takes the hit —
        the harness asserts the neighbor's run stays a strict no-op.
        """
        import signal as _signal

        pid = self.worker_pid(tenant)
        if not pid:
            raise ChaosTimeout(f"{tenant} has no live worker to kill")
        os.kill(pid, _signal.SIGKILL)
        return pid

    def wait_new_worker(
        self,
        tenant: str,
        old_pid: int,
        timeout: float = WAIT_TIMEOUT,
    ) -> int:
        """Block until the tenant runs a *different* worker process.

        The HTTP-observed restart gate: the supervisor noticed the
        death (pipe EOF + waitpid) and respawned from checkpoint.
        """
        seen: list[int] = []

        def respawned() -> bool:
            pid = self.worker_pid(tenant)
            if pid and pid != old_pid:
                seen.append(pid)
                return True
            return False

        self.wait_for(
            respawned,
            f"{tenant} worker respawn after pid {old_pid}",
            timeout=timeout,
        )
        return seen[-1]


def tenant_fingerprint(tenant_workdir: str | Path) -> str:
    """Fingerprint of everything a tenant's event journal served."""
    from repro import hotpath
    from repro.serve.journal import EventJournal
    from repro.serve.tenant import EVENTS_FILE

    journal = EventJournal(Path(tenant_workdir) / EVENTS_FILE)
    try:
        return hotpath.stream_fingerprint(journal.read_all())
    finally:
        journal.close()


def reference_fingerprint(tenant_dict: dict) -> str:
    """Unfaulted in-process reference for one tenant spec.

    Runs the exact tenant pipeline (same spec, fresh workdir) over the
    sources' *final* contents in one uninterrupted pass, and returns
    the fingerprint the faulted live run must reproduce byte-for-byte.
    """
    from repro.serve.tenant import TenantRuntime, TenantSpec

    spec = TenantSpec.from_dict(tenant_dict)
    runtime = TenantRuntime(spec)
    runtime.workdir.mkdir(parents=True, exist_ok=True)
    runtime.start()
    while runtime.pending or runtime.refill():
        while runtime.pending:
            runtime.process_batch()
    runtime.drain()
    return tenant_fingerprint(runtime.workdir)


def transition_kinds(tenant_workdir: str | Path) -> list[str]:
    """The ``kind`` field of every durable/fallback journal entry (the
    supervisor's state arcs carry ``to`` instead and are skipped)."""
    from repro.serve.tenant import SUPERVISOR_FILE

    path = Path(tenant_workdir) / SUPERVISOR_FILE
    if not path.exists():
        return []
    kinds = []
    for line in path.read_text().splitlines():
        if line.strip():
            entry = json.loads(line)
            if "kind" in entry:
                kinds.append(entry["kind"])
    return kinds


def supervisor_arc(tenant_workdir: str | Path) -> list[str]:
    """The supervisor's state transitions (``to`` values), in order."""
    from repro.serve.tenant import SUPERVISOR_FILE

    path = Path(tenant_workdir) / SUPERVISOR_FILE
    out = []
    for line in path.read_text().splitlines():
        if line.strip():
            entry = json.loads(line)
            if "to" in entry:
                out.append(entry["to"])
    return out


__all__ = [
    "WAIT_TIMEOUT",
    "ChaosDaemon",
    "ChaosTimeout",
    "reference_fingerprint",
    "supervisor_arc",
    "tenant_fingerprint",
    "transition_kinds",
]
