"""Router naming: site pools and per-dataset naming conventions.

Router names carry a metro/state suffix (``ar3.atlga`` = aggregation router
3 in Atlanta, GA) so trouble-ticket correlation can match digests at the
state level the way Section 6.2 of the paper does.
"""

from __future__ import annotations

import random

# (metro code, state code) pools, loosely North-American like the paper's
# two networks.
SITES: list[tuple[str, str]] = [
    ("atlga", "GA"),
    ("chiil", "IL"),
    ("dllstx", "TX"),
    ("hstntx", "TX"),
    ("kscymo", "MO"),
    ("laxca", "CA"),
    ("miafl", "FL"),
    ("nycny", "NY"),
    ("orldfl", "FL"),
    ("phlpa", "PA"),
    ("phnxaz", "AZ"),
    ("sttlwa", "WA"),
    ("snjsca", "CA"),
    ("washdc", "DC"),
    ("dnvrco", "CO"),
    ("bstnma", "MA"),
]

STATE_OF_METRO: dict[str, str] = dict(SITES)


def router_names(
    prefix: str, count: int, rng: random.Random
) -> list[tuple[str, str]]:
    """Generate ``count`` (router_name, state) pairs.

    Routers are spread round-robin over a shuffled site pool; numbering is
    per-site (``ar1.atlga``, ``ar2.atlga`` ...).
    """
    sites = SITES[:]
    rng.shuffle(sites)
    per_site_counter: dict[str, int] = {}
    out: list[tuple[str, str]] = []
    for i in range(count):
        metro, state = sites[i % len(sites)]
        per_site_counter[metro] = per_site_counter.get(metro, 0) + 1
        out.append((f"{prefix}{per_site_counter[metro]}.{metro}", state))
    return out
