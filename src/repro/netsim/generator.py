"""The workload engine: scenario mix -> labelled syslog stream.

Scenario instances arrive as independent Poisson processes (one per
scenario kind), are rendered into message cascades by
:mod:`repro.netsim.events`, merged with background noise, and returned
time-sorted.  A scenario kind may be *phased in* after a number of days —
modelling new software/hardware behaviours appearing mid-observation, which
is what makes the weekly rule base of Figures 8/9 grow before it
stabilizes.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.netsim.events import Incident, scenarios_for
from repro.netsim.noise import generate_noise
from repro.netsim.topology import Network
from repro.syslog.message import LabeledMessage
from repro.utils.timeutils import DAY

ScenarioFn = Callable[[Network, random.Random, str, float], Incident]


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario kind in the mix.

    Attributes
    ----------
    kind:
        Name in the vendor's scenario registry.
    rate_per_day:
        Mean arrivals per day across the whole network.
    start_day:
        First day (0-based, relative to generation start) this kind can
        occur; earlier days see none of it.
    """

    kind: str
    rate_per_day: float
    start_day: int = 0


@dataclass
class WorkloadMix:
    """A full workload description for one network."""

    specs: Sequence[ScenarioSpec]
    noise_intensity: float = 1.0


@dataclass
class GenerationResult:
    """Everything one generation run produced."""

    messages: list[LabeledMessage]
    incidents: list[Incident]
    start_ts: float
    duration: float

    @property
    def n_noise(self) -> int:
        """Messages not attributable to any injected condition."""
        return sum(1 for m in self.messages if m.event_id is None)

    def raw_messages(self):
        """The plain messages, as the pipeline would receive them."""
        return [m.message for m in self.messages]


@dataclass
class WorkloadEngine:
    """Deterministic (seeded) workload generator for one network."""

    network: Network
    mix: WorkloadMix
    seed: int = 0
    _event_counter: int = field(init=False, default=0)

    def generate(
        self,
        start_ts: float,
        duration: float,
        phase_origin: float | None = None,
    ) -> GenerationResult:
        """Generate all messages in ``[start_ts, start_ts + duration)``.

        ``phase_origin`` anchors the scenario phase-in days; it defaults
        to ``start_ts`` (each window starts its own timeline).  Pass the
        learning-period start when generating a *later* window of the same
        timeline, so behaviours that phased in during learning are active.

        Scenario cascades that *start* inside the window are emitted in
        full even if their tail crosses the window end — truncating them
        would fabricate half-events the evaluation would wrongly penalize.
        """
        registry = scenarios_for(self.network.vendor)
        incidents: list[Incident] = []
        messages: list[LabeledMessage] = []
        origin = phase_origin if phase_origin is not None else start_ts

        for spec in self.mix.specs:
            if spec.kind not in registry:
                raise KeyError(
                    f"unknown scenario {spec.kind!r} for vendor "
                    f"{self.network.vendor}"
                )
            fn: ScenarioFn = registry[spec.kind]
            # Dedicated substream per kind so adding kinds never perturbs
            # the arrival times of the others.
            sub = random.Random(f"{self.seed}:{spec.kind}")
            window_start = max(start_ts, origin + spec.start_day * DAY)
            if window_start >= start_ts + duration:
                continue
            rate_per_sec = spec.rate_per_day / DAY
            if rate_per_sec <= 0:
                continue
            ts = window_start + sub.expovariate(rate_per_sec)
            while ts < start_ts + duration:
                self._event_counter += 1
                event_id = f"ev{self._event_counter:06d}-{spec.kind}"
                incident = fn(self.network, sub, event_id, ts)
                incidents.append(incident)
                messages.extend(incident.messages)
                ts += sub.expovariate(rate_per_sec)

        messages.extend(
            generate_noise(
                self.network,
                random.Random(f"{self.seed}:noise"),
                start_ts,
                duration,
                self.mix.noise_intensity,
            )
        )
        messages.sort(key=lambda m: (m.timestamp, m.router))
        incidents.sort(key=lambda inc: inc.start_ts)
        return GenerationResult(
            messages=messages,
            incidents=incidents,
            start_ts=start_ts,
            duration=duration,
        )
