"""Canary corpora for the knowledge-lifecycle promotion gate.

The gate (:mod:`repro.core.promotion`) replays a labeled corpus through
the active and candidate knowledge bases and compares quality.  This
module turns netsim ground truth into exactly the shape the gate wants:

* :func:`labeled_canary` — messages in the pipeline's deterministic
  order plus a per-message condition-id truth vector aligned to it
  (``None`` marking background noise), matching how
  :func:`repro.core.promotion.replay_quality` indexes truth by the
  augmented message's global index;
* :func:`drift_messages` — a synthetic stream of a *novel* error code,
  simulating the config/hardware churn (new line formats appearing)
  that the paper's periodic offline refresh exists to absorb.
"""

from __future__ import annotations

from repro.netsim.generator import GenerationResult, LabeledMessage
from repro.syslog.message import SyslogMessage


def labeled_canary(
    labeled: GenerationResult | list[LabeledMessage],
) -> tuple[list[SyslogMessage], list[str | None]]:
    """Split netsim output into sorted messages + aligned truth labels.

    The messages come back in the pipeline's canonical
    ``(timestamp, router, error_code)`` order and ``truth[i]`` is the
    injected condition id of ``messages[i]`` (``None`` for noise) — the
    exact alignment :func:`repro.core.promotion.replay_quality` assumes,
    because the digester assigns global index ``i`` to the ``i``-th
    sorted message of a fresh run.
    """
    items = (
        labeled.messages
        if isinstance(labeled, GenerationResult)
        else list(labeled)
    )
    ordered = sorted(
        items,
        key=lambda lm: (
            lm.message.timestamp,
            lm.message.router,
            lm.message.error_code,
        ),
    )
    return (
        [lm.message for lm in ordered],
        [lm.event_id for lm in ordered],
    )


def drift_messages(
    routers: list[str],
    start_ts: float,
    n_messages: int = 120,
    period: float = 30.0,
    error_code: str = "DRIFT-4-STATE",
    vendor: str = "V1",
) -> list[SyslogMessage]:
    """A stream of a novel error code no learned template set has seen.

    Cycles through ``routers`` at a fixed ``period`` with a small
    structured detail (one varying field), so a refresh over this
    stream learns one clean new template for ``error_code`` while an
    un-refreshed base can only file every line under the
    ``<code>/other`` fallback — which is what drags its template-match
    rate down in the drift-response benchmark.
    """
    if not routers:
        raise ValueError("drift_messages needs at least one router")
    out = []
    for i in range(n_messages):
        out.append(
            SyslogMessage(
                timestamp=start_ts + i * period,
                router=routers[i % len(routers)],
                error_code=error_code,
                detail=(
                    f"subsystem drift state changed to S{i % 3} "
                    f"on slot {i % 4}"
                ),
                vendor=vendor,
            )
        )
    return out
