"""Command-line interface: ``syslogdigest <generate|learn|digest|report>``.

A thin operational wrapper over the library so the full workflow runs from
a shell::

    syslogdigest generate --dataset A --days 14 --scale 0.3 --out work/
    syslogdigest learn --log work/history.log --configs work/configs --kb work/kb.json
    syslogdigest digest --log work/online.log --kb work/kb.json --top 20
    syslogdigest stats --log work/online.log --kb work/kb.json --format prom

``digest``/``report`` accept ``--metrics <path>`` to dump the metrics
registry next to their normal output (JSON when the path ends in
``.json``, Prometheus text otherwise); ``stats`` digests a log and
prints the registry itself.

Fault tolerance (DESIGN.md §8): ``digest``/``stats`` take
``--quarantine <path>`` to survive garbage lines (dead-lettered as
JSONL), ``stats --stream`` takes ``--checkpoint <path>`` to write
periodic state snapshots, and ``resume`` restarts a streaming digest
from such a checkpoint plus the log tail::

    syslogdigest stats --log work/online.log --kb work/kb.json \
        --stream --checkpoint work/digest.ckpt --quarantine work/bad.jsonl
    syslogdigest resume --checkpoint work/digest.ckpt \
        --log work/online.log --kb work/kb.json --top 20

Multi-source ingest (DESIGN.md §10): ``digest --ingest`` (or one
``--source`` per feed) pushes through the resilient front-end —
watermark reordering, per-source circuit breakers, optional
``--dedup-window`` — ``sources`` prints the per-source health table,
and ``requeue`` replays a dumped quarantine JSONL back through the
digester::

    syslogdigest digest --kb work/kb.json --source feedA.log \
        --source feedB.log --max-reorder-delay 60
    syslogdigest sources --kb work/kb.json --log feedA.log --log feedB.log
    syslogdigest requeue --kb work/kb.json --quarantine work/bad.jsonl

Knowledge lifecycle (DESIGN.md §9): ``learn``/``digest``/``resume``
accept ``--store <dir>`` (a versioned model store) in place of a bare
``--kb`` file, and the offline refresh loop runs through its own
validation-gated subcommands — a refresh only becomes the active
version when canary quality stays inside the promotion gate::

    syslogdigest learn --log work/history.log --configs work/configs \
        --store work/kbstore
    syslogdigest refresh --store work/kbstore --log work/week2.log \
        --canary work/canary.log          # exit 0 promoted, 2 rejected
    syslogdigest rollback --store work/kbstore [--to 3]
    syslogdigest kb-log --store work/kbstore
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.config import DigestConfig
from repro.core.knowledge import KnowledgeBase
from repro.core.pipeline import SyslogDigest
from repro.netsim.datasets import dataset_a, dataset_b, generate_dataset
from repro.syslog.stream import read_log, write_log
from repro.utils.timeutils import DAY, parse_ts


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = dataset_a(args.seed) if args.dataset.upper() == "A" else dataset_b(args.seed)
    data = generate_dataset(spec, scale=args.scale)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    start = parse_ts(args.start)
    result = data.generate(start, args.days)
    n = write_log(out / "syslog.log", result.raw_messages())
    config_dir = out / "configs"
    config_dir.mkdir(exist_ok=True)
    for router, text in data.configs.items():
        (config_dir / f"{router}.cfg").write_text(text, encoding="utf-8")
    print(
        f"wrote {n} messages ({len(result.incidents)} injected conditions) "
        f"to {out / 'syslog.log'}, {len(data.configs)} configs to {config_dir}"
    )
    return 0


def _cmd_learn(args: argparse.Namespace) -> int:
    if args.kb is None and args.store is None:
        print("learn needs --kb and/or --store", file=sys.stderr)
        return 1
    messages = list(read_log(args.log))
    configs = [
        path.read_text(encoding="utf-8")
        for path in sorted(Path(args.configs).glob("*.cfg"))
    ]
    if not configs:
        print(f"no *.cfg files under {args.configs}", file=sys.stderr)
        return 1
    system = SyslogDigest.learn(
        messages, configs, DigestConfig(), fit_temporal=not args.no_fit
    )
    destinations = []
    if args.kb is not None:
        system.kb.save(args.kb)
        destinations.append(args.kb)
    if args.store is not None:
        from repro.core.modelstore import KnowledgeStore

        info = KnowledgeStore(args.store).commit(
            system.kb, note=f"learned from {args.log}", activate=True
        )
        destinations.append(f"{args.store} (v{info.version}, active)")
    stats = system.kb.dictionary.stats()
    print(
        f"learned {len(system.kb.templates)} templates, "
        f"{len(system.kb.rules)} rules, "
        f"alpha={system.kb.temporal.alpha} beta={system.kb.temporal.beta}, "
        f"{stats['components']} locations -> {', '.join(destinations)}"
    )
    return 0


def _maybe_write_metrics(path: str | None) -> None:
    if path is None:
        return
    from repro.obs import get_registry, write_metrics

    write_metrics(path, get_registry())
    print(f"# metrics written to {path}", file=sys.stderr)


def _dump_quarantine(quarantine, path: str) -> None:
    kept = quarantine.dump(path)
    summary = quarantine.summary()
    print(
        f"# quarantined {summary['total']} inputs "
        f"({kept} kept, {summary['overflow']} overflowed) -> {path}",
        file=sys.stderr,
    )


def _kb_from_args(
    args: argparse.Namespace,
) -> tuple[KnowledgeBase, int | None]:
    """Resolve (kb, version) from --kb or --store (active version).

    The version is None for a bare --kb file; store-served knowledge
    carries its version so streaming checkpoints can record it.
    """
    if getattr(args, "kb", None) is not None:
        return KnowledgeBase.load(args.kb), None
    if getattr(args, "store", None) is not None:
        from repro.core.modelstore import KnowledgeStore

        kb, info = KnowledgeStore(args.store).load_active()
        print(
            f"# serving store version v{info.version} "
            f"({info.fingerprint[:12]})",
            file=sys.stderr,
        )
        return kb, info.version
    raise SystemExit("need --kb or --store")


def _run_ingest(args: argparse.Namespace, kb, kb_version=None):
    """Drive a streaming digest through the ingest front-end.

    Returns ``(ingest, events, quarantine, interrupted)``.  Normally the
    stream is closed with all events finalized; under SIGTERM/SIGINT the
    run instead checkpoints (when ``--checkpoint`` was given) and stops
    cleanly mid-feed — open groups stay open inside the checkpoint, and
    ``interrupted`` is True.
    """
    from repro.core.config import IngestConfig
    from repro.core.stream import DigestStream
    from repro.serve.drain import GracefulShutdown
    from repro.syslog.collector import interleave_arrivals
    from repro.syslog.ingest import MultiSourceIngest
    from repro.syslog.resilient import Quarantine
    from repro.syslog.tail import TailSet

    paths = list(args.source) if args.source else [args.log]
    if paths == [None]:
        raise SystemExit("need --log or at least one --source")
    config = DigestConfig(
        n_workers=args.workers,
        stream_workers=getattr(args, "stream_workers", "threads"),
    )
    ingest_config = IngestConfig(
        max_reorder_delay=args.max_reorder_delay,
        dedup_window=args.dedup_window,
    )
    stream = DigestStream(kb, config, kb_version=kb_version)
    quarantine = Quarantine()
    stream.attach_quarantine(quarantine)
    ingest = MultiSourceIngest(
        stream, ingest_config, quarantine=quarantine
    )
    # The one-shot CLI reads through the same byte-offset tailers the
    # serve daemon follows live files with (one poll of a static file
    # reads it whole), so `syslogdigest sources` reports tail cursors.
    tails = TailSet(paths)
    ingest.attach_tails(tails)
    checkpoint_path = getattr(args, "checkpoint", None)
    events = []
    tails.poll()
    arrivals = interleave_arrivals(
        tails.take_new(), key=lambda pair: pair[0]
    )
    with GracefulShutdown() as stop:
        for source, (_ts, line) in arrivals:
            if stop:
                _checkpoint_on_signal(stream, checkpoint_path, stop)
                return ingest, events, quarantine, True
            events.extend(ingest.push_line(source, line))
            tails.note_pushed(source)
    events.extend(ingest.close())
    return ingest, events, quarantine, False


def _checkpoint_on_signal(stream, checkpoint_path, stop) -> None:
    """Checkpoint-then-exit on SIGTERM/SIGINT (long-running CLI paths)."""
    if checkpoint_path is not None:
        from repro.core.checkpoint import write_checkpoint

        info = write_checkpoint(checkpoint_path, stream)
        print(
            f"# {stop.signal_name}: checkpointed {info.n_admitted} "
            f"admitted / {info.n_open} open messages to "
            f"{checkpoint_path}; resume with `syslogdigest resume`",
            file=sys.stderr,
        )
    else:
        print(
            f"# {stop.signal_name}: stopping cleanly (no --checkpoint, "
            "state discarded)",
            file=sys.stderr,
        )


def _push_interruptible(
    stream, messages, checkpoint_path, chunk: int = 2048
) -> tuple[list, bool]:
    """Push ``messages`` in chunks, honoring SIGTERM/SIGINT between them.

    Returns ``(events, interrupted)``; on interrupt the stream is
    checkpointed (when a path is configured) instead of dying mid-batch.
    """
    from repro.serve.drain import GracefulShutdown

    events: list = []
    with GracefulShutdown() as stop:
        for i in range(0, len(messages), chunk):
            if stop:
                _checkpoint_on_signal(stream, checkpoint_path, stop)
                return events, True
            events.extend(stream.push_many(messages[i : i + chunk]))
    return events, False


def _cmd_digest(args: argparse.Namespace) -> int:
    kb, kb_version = _kb_from_args(args)
    if args.ingest or args.source:
        from repro.core.present import present_digest

        ingest, events, quarantine, interrupted = _run_ingest(
            args, kb, kb_version
        )
        health = ingest.health()
        n_messages = sum(ingest.pushed_counts().values())
        partial = " (interrupted)" if interrupted else ""
        print(
            f"# {n_messages} arrivals over {health['sources']} sources -> "
            f"{len(events)} events{partial} (late {health['late_dropped']}, "
            f"dedup {health['deduplicated']}, "
            f"breaker-rejected {health['breaker_rejected']})"
        )
        events.sort(key=lambda e: (-e.score, e.start_ts, e.indices))
        print(present_digest(events, top=args.top))
        if args.quarantine is not None:
            _dump_quarantine(quarantine, args.quarantine)
        _maybe_write_metrics(args.metrics)
        return 0
    if args.log is None:
        print("digest needs --log (or --source feeds)", file=sys.stderr)
        return 1
    system = SyslogDigest(kb, DigestConfig(n_workers=args.workers))
    if args.quarantine is not None:
        with open(args.log, "r", encoding="utf-8") as fh:
            result = system.digest_lines(fh, source=str(args.log))
        _dump_quarantine(result.quarantine, args.quarantine)
    else:
        messages = list(read_log(args.log))
        result = system.digest(messages)
    print(
        f"# {result.n_messages} messages -> {result.n_events} events "
        f"(ratio {result.compression_ratio:.2e})"
    )
    print(result.render(top=args.top))
    _maybe_write_metrics(args.metrics)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Resume a streaming digest from a checkpoint plus log-tail replay.

    The checkpoint records how many messages had been admitted; replay
    skips exactly that many from the (sorted) log and pushes the rest,
    which makes the resumed output identical to an uninterrupted run —
    the property ``tests/test_core_checkpoint.py`` pins.
    """
    from repro.core.checkpoint import checkpoint_info, restore_stream
    from repro.core.present import present_digest
    from repro.syslog.stream import sort_messages

    if args.kb is not None:
        stream = restore_stream(
            args.checkpoint,
            KnowledgeBase.load(args.kb),
            stream_workers=args.stream_workers,
        )
    elif args.store is not None:
        from repro.core.modelstore import KnowledgeStore

        stream = restore_stream(
            args.checkpoint,
            store=KnowledgeStore(args.store),
            stream_workers=args.stream_workers,
        )
        print(
            f"# resumed under store version v{stream.kb_version}",
            file=sys.stderr,
        )
    else:
        print("resume needs --kb or --store", file=sys.stderr)
        return 1
    info = checkpoint_info(args.checkpoint)
    ordered = sort_messages(read_log(args.log))
    tail = ordered[info.n_admitted :]
    print(
        f"# checkpoint {args.checkpoint}: {info.n_admitted} messages "
        f"already digested, {info.n_open} open; replaying "
        f"{len(tail)} of {len(ordered)}",
        file=sys.stderr,
    )
    events, interrupted = _push_interruptible(
        stream, tail, args.checkpoint
    )
    if interrupted:
        print(
            f"# resumed digest interrupted: {len(events)} events so far"
        )
        print(present_digest(events, top=args.top))
        _maybe_write_metrics(args.metrics)
        return 0
    events.extend(stream.close())
    events.sort(key=lambda e: (-e.score, e.start_ts, e.indices))
    print(f"# resumed digest: {len(events)} newly finalized events")
    print(present_digest(events, top=args.top))
    _maybe_write_metrics(args.metrics)
    return 0


def _cmd_refresh(args: argparse.Namespace) -> int:
    """Refresh the active knowledge over a new period, gated by canary.

    Exit code 0 when the candidate was promoted (or was a zero-drift
    no-op), 2 when the gate rejected it — the old version keeps serving
    either way, so a cron wrapper can alert on 2 without any cleanup.
    """
    from repro.core.modelstore import KnowledgeStore
    from repro.core.promotion import KnowledgeLifecycle

    store = KnowledgeStore(args.store)
    period = list(read_log(args.log))
    canary = (
        list(read_log(args.canary))
        if args.canary is not None
        else list(period)
    )
    configs = None
    if args.configs is not None:
        configs = [
            path.read_text(encoding="utf-8")
            for path in sorted(Path(args.configs).glob("*.cfg"))
        ]
    half_life = None if args.half_life == 0 else args.half_life
    decision, _info = KnowledgeLifecycle(store).refresh_and_promote(
        period,
        canary,
        configs=configs,
        frequency_half_life_days=half_life,
        note=args.note,
    )
    print(decision.summary())
    if not decision.accepted:
        print(
            f"# still serving v{store.active_version()}", file=sys.stderr
        )
        return 2
    print(f"# active version: v{store.active_version()}")
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    """Gate a pre-built candidate kb file against the active version."""
    from repro.core.modelstore import KnowledgeStore
    from repro.core.promotion import KnowledgeLifecycle

    store = KnowledgeStore(args.store)
    candidate = KnowledgeBase.load(args.candidate)
    canary = list(read_log(args.canary))
    decision, _info = KnowledgeLifecycle(store).promote_candidate(
        candidate, canary, note=args.note or f"promoted {args.candidate}"
    )
    print(decision.summary())
    if not decision.accepted:
        print(
            f"# still serving v{store.active_version()}", file=sys.stderr
        )
        return 2
    print(f"# active version: v{store.active_version()}")
    return 0


def _cmd_rollback(args: argparse.Namespace) -> int:
    """Atomically re-activate a previously served version."""
    from repro.core.modelstore import KnowledgeStore

    store = KnowledgeStore(args.store)
    info = store.rollback(to=args.to)
    print(
        f"rolled back to v{info.version} "
        f"({info.fingerprint[:12]}, {info.n_templates} templates, "
        f"{info.n_rules} rules)"
    )
    return 0


def _cmd_kb_log(args: argparse.Namespace) -> int:
    """Print the store's version table and lifecycle journal."""
    import json as _json
    from datetime import datetime, timezone

    from repro.core.modelstore import KnowledgeStore

    store = KnowledgeStore(args.store)
    if args.json:
        print(
            _json.dumps(
                {
                    "active": store.active_version(),
                    "versions": [v.to_dict() for v in store.versions()],
                    "log": store.log(),
                },
                indent=1,
            )
        )
        return 0
    active = store.active_version()
    for info in store.versions():
        marker = "*" if info.version == active else " "
        when = datetime.fromtimestamp(
            info.created_ts, tz=timezone.utc
        ).strftime("%Y-%m-%d %H:%M:%S")
        print(
            f"{marker} v{info.version:<4} {when}  "
            f"{info.n_templates:>4} templates {info.n_rules:>5} rules  "
            f"{info.fingerprint[:12]}  {info.note}"
        )
    for entry in store.log():
        when = datetime.fromtimestamp(
            entry["ts"], tz=timezone.utc
        ).strftime("%Y-%m-%d %H:%M:%S")
        version = entry.get("version")
        detail = ""
        if entry["kind"] == "reject":
            detail = "; ".join(entry.get("reasons", []))
        elif entry["kind"] == "prune":
            detail = f"pruned {entry.get('pruned')}"
        elif entry.get("note"):
            detail = entry["note"]
        target = f"v{version}" if version is not None else "-"
        print(f"  {when}  {entry['kind']:<9} {target:<6} {detail}")
    return 0


def _cmd_sources(args: argparse.Namespace) -> int:
    """Digest multi-source feeds and report per-source ingest health."""
    from repro.utils.textable import render_table

    kb, kb_version = _kb_from_args(args)
    args.source = list(args.log)
    args.log = None
    ingest, events, _quarantine, _interrupted = _run_ingest(
        args, kb, kb_version
    )
    summaries = ingest.source_summaries()
    rows = [list(summary.values()) for summary in summaries]
    headers = list(summaries[0]) if summaries else []
    print(
        render_table(headers, rows, title="per-source ingest health")
    )
    health = ingest.health()
    print(
        f"# {sum(ingest.pushed_counts().values())} arrivals -> "
        f"{len(events)} events; peak buffer {health['peak_buffered']}, "
        f"{health['breaker_transitions']} breaker transitions"
    )
    if args.journal:
        for entry in ingest.journal():
            print(
                f"# {entry['clock']}: {entry['source']} "
                f"{entry['from']} -> {entry['to']} ({entry['reason']})"
            )
    _maybe_write_metrics(args.metrics)
    return 0


def _cmd_requeue(args: argparse.Namespace) -> int:
    """Replay a dumped quarantine JSONL back through the digester.

    Exit 0 when every record requeued cleanly, 2 when any failed again
    (the survivors are re-dumped over the input file unless --keep).
    """
    from repro.core.present import present_digest
    from repro.core.stream import DigestStream
    from repro.syslog.resilient import (
        Quarantine,
        requeue_records,
        rotated_quarantine_paths,
    )

    kb, kb_version = _kb_from_args(args)
    stream = DigestStream(
        kb, DigestConfig(n_workers=args.workers), kb_version=kb_version
    )
    quarantine = Quarantine()
    stream.attach_quarantine(quarantine)
    events, n_ok, n_failed = requeue_records(
        args.quarantine, stream, quarantine
    )
    events.extend(stream.close())
    events.sort(key=lambda e: (-e.score, e.start_ts, e.indices))
    print(
        f"# requeued {n_ok} of {n_ok + n_failed} quarantined inputs "
        f"({n_failed} failed again) -> {len(events)} events"
    )
    print(present_digest(events, top=args.top))
    if not args.keep:
        # Rotated dumps were fully consumed by the replay; survivors
        # (if any) are re-dumped into the base file alone.  Leaving the
        # rotations behind would double-replay them on the next requeue.
        for part in rotated_quarantine_paths(args.quarantine):
            part.unlink()
        if n_failed:
            _dump_quarantine(quarantine, args.quarantine)
    return 0 if n_failed == 0 else 2


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the supervised multi-tenant serve daemon (DESIGN.md §13).

    Blocks until drained (SIGTERM/SIGINT, ``POST /drain``, or — with
    ``--once`` — all sources exhausted); exits 0 after every tenant got
    its final checkpoint and quarantine dump.
    """
    from dataclasses import replace

    from repro.serve import ServeConfig, run_daemon

    config = ServeConfig.from_file(args.config)
    if args.once:
        config = replace(config, once=True)
    if args.port is not None:
        config = replace(config, port=args.port)
    if args.placement is not None:
        # Override every tenant's placement (bulkhead on/off from the
        # command line; clean runs are fingerprint-identical either way).
        config = replace(
            config,
            tenants=tuple(
                replace(spec, placement=args.placement)
                for spec in config.tenants
            ),
        )
    return run_daemon(config)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.apps.reportgen import daily_report

    kb = KnowledgeBase.load(args.kb)
    system = SyslogDigest(kb, DigestConfig(n_workers=args.workers))
    messages = list(read_log(args.log))
    result = system.digest(messages)
    origin = messages[0].timestamp - (messages[0].timestamp % DAY)
    print(daily_report(result, origin))
    _maybe_write_metrics(args.metrics)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Digest a log and print the pipeline metrics registry."""
    from repro.core.stream import DigestStream
    from repro.obs import get_registry, stage_timer, to_json, to_prom_text
    from repro.syslog.stream import sort_messages

    registry = get_registry()
    registry.reset()
    kb, kb_version = _kb_from_args(args)
    config = DigestConfig(
        n_workers=args.workers,
        stream_workers=args.stream_workers,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=(
            args.checkpoint_interval if args.checkpoint else 0.0
        ),
    )
    quarantine = None
    if args.quarantine is not None:
        from repro.syslog.resilient import Quarantine, resilient_read_log

        quarantine = Quarantine()
        messages = resilient_read_log(args.log, quarantine)
    else:
        messages = list(read_log(args.log))
    if args.stream:
        from repro.syslog.resilient import push_safe

        stream = DigestStream(kb, config, kb_version=kb_version)
        if quarantine is not None:
            stream.attach_quarantine(quarantine)
        from repro.serve.drain import GracefulShutdown

        with stage_timer("sort"):
            ordered = sort_messages(messages)
        interrupted = False
        with stage_timer("stream_push"):
            if quarantine is not None:
                events = []
                with GracefulShutdown() as stop:
                    for message in ordered:
                        if stop:
                            _checkpoint_on_signal(
                                stream, args.checkpoint, stop
                            )
                            interrupted = True
                            break
                        events.extend(
                            push_safe(stream, message, quarantine)
                        )
            else:
                events, interrupted = _push_interruptible(
                    stream, ordered, args.checkpoint
                )
        if not interrupted:
            with stage_timer("stream_close"):
                events.extend(stream.close())
        n_events = len(events)
    else:
        result = SyslogDigest(kb, config).digest(messages)
        n_events = result.n_events
    if quarantine is not None:
        _dump_quarantine(quarantine, args.quarantine)
    print(
        f"# {len(messages)} messages -> {n_events} events",
        file=sys.stderr,
    )
    if args.format == "json":
        print(to_json(registry))
    else:
        print(to_prom_text(registry), end="")
    return 0


def _augmented(kb_path: str, log_path: str):
    from repro.core.syslogplus import Augmenter

    kb = KnowledgeBase.load(kb_path)
    messages = list(read_log(log_path))
    augmenter = Augmenter(kb.templates, kb.dictionary)
    return messages, augmenter.augment_all(messages)


def _cmd_trends(args: argparse.Namespace) -> int:
    from repro.apps.trending import detect_shifts

    messages, stream = _augmented(args.kb, args.log)
    if not messages:
        print("empty log", file=sys.stderr)
        return 1
    origin = messages[0].timestamp - (messages[0].timestamp % DAY)
    n_days = int((messages[-1].timestamp - origin) // DAY) + 1
    shifts = detect_shifts(
        stream, origin, n_days, min_factor=args.min_factor
    )
    if not shifts:
        print("no level shifts detected")
        return 0
    for shift in shifts[: args.top]:
        print(
            f"{shift.router:<18} {shift.template_key:<36} "
            f"day {shift.day:>3} {shift.direction:<4} "
            f"{shift.before_mean:8.2f} -> {shift.after_mean:8.2f} "
            f"({shift.describe_factor()})"
        )
    return 0


def _cmd_rhythms(args: argparse.Namespace) -> int:
    from repro.mining.periodicity import rhythm_report

    _messages, stream = _augmented(args.kb, args.log)
    series: dict[tuple, list[float]] = {}
    for plus in stream:
        key = (plus.router, plus.template_key)
        series.setdefault(key, []).append(plus.timestamp)
    for (router, template), profile in rhythm_report(series, top=args.top):
        period = (
            f"period={profile.period:7.1f}s"
            if profile.period is not None
            else "period=      -"
        )
        print(
            f"{router:<18} {template:<36} {profile.kind.value:<9} "
            f"n={profile.n:<6} {period}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI (exposed for shell-completion tooling)."""
    parser = argparse.ArgumentParser(
        prog="syslogdigest",
        description="SyslogDigest: mine network events from router syslogs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("--dataset", choices=["A", "B", "a", "b"], default="A")
    p.add_argument("--days", type=float, default=14.0)
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--start", default="2009-12-01 00:00:00")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("learn", help="offline domain-knowledge learning")
    p.add_argument("--log", required=True)
    p.add_argument("--configs", required=True)
    p.add_argument("--kb", default=None, help="write the kb to this JSON file")
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="also commit + activate the kb in this versioned model store",
    )
    p.add_argument("--no-fit", action="store_true", help="skip alpha/beta sweep")
    p.set_defaults(fn=_cmd_learn)

    p = sub.add_parser("digest", help="digest a log with a learned kb")
    p.add_argument("--log", default=None)
    p.add_argument("--kb", default=None)
    p.add_argument(
        "--ingest",
        action="store_true",
        help="push through the resilient ingest front-end (watermark "
        "reordering, per-source breakers) instead of the direct path",
    )
    p.add_argument(
        "--source",
        action="append",
        default=None,
        metavar="PATH",
        help="a per-source log feed (repeatable; implies --ingest, "
        "feeds are interleaved by timestamp)",
    )
    p.add_argument(
        "--max-reorder-delay",
        type=float,
        default=60.0,
        help="ingest reorder window in seconds (default 60)",
    )
    p.add_argument(
        "--dedup-window",
        type=float,
        default=0.0,
        help="suppress content-identical arrivals within this many "
        "seconds (default 0 = off)",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="serve the active version of this model store instead of --kb",
    )
    p.add_argument("--top", type=int, default=20)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard grouping by router over N processes (0 = all cores)",
    )
    p.add_argument(
        "--stream-workers",
        choices=["serial", "threads", "processes"],
        default="threads",
        help="streaming executor lane for the sharded steps (with "
        "--ingest/--source): 'processes' keeps one persistent worker "
        "process per shard; all lanes group identically",
    )
    p.add_argument(
        "--metrics",
        default=None,
        help="dump pipeline metrics to this path (*.json = JSON, "
        "else Prometheus text)",
    )
    p.add_argument(
        "--quarantine",
        default=None,
        metavar="PATH",
        help="quarantine unparseable lines to this JSONL file instead "
        "of aborting on the first bad line",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="with --ingest/--source: on SIGTERM/SIGINT, write the "
        "stream state here and exit cleanly instead of dying mid-batch",
    )
    p.set_defaults(fn=_cmd_digest)

    p = sub.add_parser(
        "serve",
        help="run the supervised multi-tenant serve daemon "
        "(HTTP health/events/admin API; SIGTERM drains gracefully)",
    )
    p.add_argument(
        "--config",
        required=True,
        metavar="PATH",
        help="JSON daemon config (see repro.serve.ServeConfig)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="drain automatically when every tenant's sources are "
        "exhausted (batch mode)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=None,
        help="override the config's HTTP port (0 = ephemeral; the "
        "bound port is written to <workdir>/http.port)",
    )
    p.add_argument(
        "--placement",
        choices=("inline", "process"),
        default=None,
        help="override every tenant's placement: inline (daemon's own "
        "loop) or process (one supervised worker process per tenant)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "resume",
        help="resume a streaming digest from a checkpoint + log tail",
    )
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--log", required=True)
    p.add_argument("--kb", default=None)
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="reload the exact store version the checkpoint was taken "
        "under instead of passing --kb",
    )
    p.add_argument(
        "--stream-workers",
        choices=["serial", "threads", "processes"],
        default=None,
        help="override the executor lane for the resumed stream "
        "(default: the lane the checkpoint was taken under; the lane "
        "never changes output, so any checkpoint resumes on any lane)",
    )
    p.add_argument("--top", type=int, default=20)
    p.add_argument(
        "--metrics",
        default=None,
        help="dump pipeline metrics to this path (*.json = JSON, "
        "else Prometheus text)",
    )
    p.set_defaults(fn=_cmd_resume)

    p = sub.add_parser("report", help="daily/per-router digest report")
    p.add_argument("--log", required=True)
    p.add_argument("--kb", required=True)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard grouping by router over N processes (0 = all cores)",
    )
    p.add_argument(
        "--metrics",
        default=None,
        help="dump pipeline metrics to this path (*.json = JSON, "
        "else Prometheus text)",
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "stats",
        help="digest a log and print pipeline metrics "
        "(stage timings, shard balance, stream health)",
    )
    p.add_argument("--log", required=True)
    p.add_argument("--kb", default=None)
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="serve the active version of this model store instead of "
        "--kb (checkpoints then record the version for resume --store)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard grouping by router over N processes (0 = all cores)",
    )
    p.add_argument(
        "--stream-workers",
        choices=["serial", "threads", "processes"],
        default="threads",
        help="with --stream: executor lane for the sharded steps "
        "('processes' = one persistent worker process per shard)",
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help="run the streaming digester instead of batch "
        "(adds DigestStream health metrics)",
    )
    p.add_argument(
        "--format", choices=["prom", "json"], default="prom"
    )
    p.add_argument(
        "--quarantine",
        default=None,
        metavar="PATH",
        help="read the log resiliently, quarantining bad lines (and "
        "with --stream, skew-rejected messages) to this JSONL file",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="with --stream: write periodic checkpoints here "
        "(resume later with `syslogdigest resume`)",
    )
    p.add_argument(
        "--checkpoint-interval",
        type=float,
        default=3600.0,
        help="stream-clock seconds between checkpoints (default 3600)",
    )
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "sources",
        help="digest multi-source feeds through the ingest front-end "
        "and report per-source health (breakers, late drops, dedup)",
    )
    p.add_argument(
        "--log",
        action="append",
        required=True,
        metavar="PATH",
        help="a per-source log feed (repeat once per source)",
    )
    p.add_argument("--kb", default=None)
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="serve the active version of this model store instead of --kb",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard grouping by router over N threads",
    )
    p.add_argument(
        "--max-reorder-delay",
        type=float,
        default=60.0,
        help="ingest reorder window in seconds (default 60)",
    )
    p.add_argument(
        "--dedup-window",
        type=float,
        default=0.0,
        help="suppress content-identical arrivals within this many "
        "seconds (default 0 = off)",
    )
    p.add_argument(
        "--journal",
        action="store_true",
        help="also print every breaker transition",
    )
    p.add_argument(
        "--metrics",
        default=None,
        help="dump pipeline metrics to this path (*.json = JSON, "
        "else Prometheus text)",
    )
    p.set_defaults(fn=_cmd_sources)

    p = sub.add_parser(
        "requeue",
        help="replay a dumped quarantine JSONL through the digester "
        "(exit 0 all requeued, 2 some failed again)",
    )
    p.add_argument(
        "--quarantine",
        required=True,
        metavar="PATH",
        help="quarantine JSONL previously written by "
        "digest/stats --quarantine",
    )
    p.add_argument("--kb", default=None)
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="serve the active version of this model store instead of --kb",
    )
    p.add_argument("--top", type=int, default=20)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard grouping by router over N threads",
    )
    p.add_argument(
        "--keep",
        action="store_true",
        help="leave the input file untouched even when records fail "
        "again (default: re-dump the survivors over it)",
    )
    p.set_defaults(fn=_cmd_requeue)

    p = sub.add_parser(
        "refresh",
        help="refresh the active kb over a new period, gated by canary "
        "replay (exit 0 promoted, 2 rejected)",
    )
    p.add_argument("--store", required=True, metavar="DIR")
    p.add_argument("--log", required=True, help="the new period's syslog")
    p.add_argument(
        "--canary",
        default=None,
        help="canary log replayed through both versions (default: the "
        "period log itself)",
    )
    p.add_argument(
        "--configs",
        default=None,
        metavar="DIR",
        help="re-parse router configs from this directory",
    )
    p.add_argument(
        "--half-life",
        type=float,
        default=56.0,
        help="frequency decay half life in days (0 disables decay)",
    )
    p.add_argument("--note", default="", help="journal note for this refresh")
    p.set_defaults(fn=_cmd_refresh)

    p = sub.add_parser(
        "promote",
        help="gate a pre-built candidate kb file against the active "
        "version (exit 0 promoted, 2 rejected)",
    )
    p.add_argument("--store", required=True, metavar="DIR")
    p.add_argument("--candidate", required=True, help="candidate kb JSON")
    p.add_argument("--canary", required=True, help="canary log to replay")
    p.add_argument("--note", default="", help="journal note")
    p.set_defaults(fn=_cmd_promote)

    p = sub.add_parser(
        "rollback", help="re-activate a previously served kb version"
    )
    p.add_argument("--store", required=True, metavar="DIR")
    p.add_argument(
        "--to",
        type=int,
        default=None,
        help="target version (default: the previously active one)",
    )
    p.set_defaults(fn=_cmd_rollback)

    p = sub.add_parser(
        "kb-log", help="show a model store's versions and lifecycle journal"
    )
    p.add_argument("--store", required=True, metavar="DIR")
    p.add_argument("--json", action="store_true", help="machine-readable dump")
    p.set_defaults(fn=_cmd_kb_log)

    p = sub.add_parser(
        "trends", help="MERCURY-style template frequency level shifts"
    )
    p.add_argument("--log", required=True)
    p.add_argument("--kb", required=True)
    p.add_argument("--min-factor", type=float, default=3.0)
    p.add_argument("--top", type=int, default=20)
    p.set_defaults(fn=_cmd_trends)

    p = sub.add_parser(
        "rhythms", help="temporal rhythm profile per (router, template)"
    )
    p.add_argument("--log", required=True)
    p.add_argument("--kb", required=True)
    p.add_argument("--top", type=int, default=20)
    p.set_defaults(fn=_cmd_rhythms)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
