"""Reference-path switch for the compiled per-message hot path.

The per-message pipeline (signature match → location parse → grouping
passes) has two implementations that must be byte-identical:

* the **compiled path** (default): indexed template matching, memoized
  augmentation with one-pass tokenization, a combined-regex prefilter in
  location extraction, and cached hierarchy/spatial queries in the
  location dictionary;
* the **reference path**: the straightforward per-template /
  per-pattern / uncached implementations the compiled path was derived
  from.

:func:`reference_mode` flips every optimized component back to the
reference implementation at once.  ``make check`` digests a reference
trace under both modes (serial and ``--workers 4``) and asserts the
outputs are byte-identical, so no optimization can silently change
behavior; the scale benchmark uses the same switch to measure the
speedup honestly against the unoptimized path.

The flag is read at *call* time by the few functions whose algorithm
differs between modes, and at *construction* time by components that
build per-instance caches — so enter the context manager before
constructing the ``Augmenter``/``SyslogDigest`` under test.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager

_reference = False


def reference_enabled() -> bool:
    """True while the uncompiled reference path is forced on."""
    return _reference


@contextmanager
def reference_mode():
    """Force the reference (pre-optimization) per-message path.

    Nestable and exception-safe; the previous state is restored on exit.
    """
    global _reference
    previous = _reference
    _reference = True
    try:
        yield
    finally:
        _reference = previous


def digest_fingerprint(result) -> str:
    """Canonical SHA-256 over everything a digest run computed.

    Covers, per message: index, identity fields, matched template key,
    every extracted location and the primary location; per event: member
    indices, label and score; plus the set of rules that fired.  Two runs
    whose fingerprints match produced byte-identical digests — this is
    the equality the ``make check`` identity gate and the scale benchmark
    both assert between the compiled and reference paths (and between
    serial and multi-worker runs).

    Duck-typed over :class:`repro.core.pipeline.DigestResult` so this
    module keeps zero intra-package imports (it sits below everything).
    """
    h = hashlib.sha256()
    _hash_events(h, result.events)
    h.update(repr(sorted(result.active_rules)).encode())
    h.update(repr((result.n_messages, result.n_events)).encode())
    return h.hexdigest()


def stream_fingerprint(events) -> str:
    """Canonical SHA-256 over a streaming run's finalized events.

    Same per-event and per-message coverage as :func:`digest_fingerprint`
    (member indices, identity fields, template, locations, label, score),
    minus the batch-only active-rule set, which a stream does not track.
    Two streaming runs whose fingerprints match emitted byte-identical
    events in the same order — the equality the serial ≡ threads ≡
    processes executor-lane gate asserts in ``make check``.
    """
    h = hashlib.sha256()
    _hash_events(h, events)
    h.update(repr(len(events)).encode())
    return h.hexdigest()


def _hash_events(h, events) -> None:
    for event in events:
        h.update(b"E")
        h.update(repr((event.label, event.score)).encode())
        for plus in event.messages:
            loc = plus.primary_location
            h.update(
                repr(
                    (
                        plus.index,
                        plus.timestamp,
                        plus.router,
                        plus.message.error_code,
                        plus.message.detail,
                        plus.template_key,
                        (loc.router, loc.kind.value, loc.name),
                        tuple(
                            (
                                e.location.router,
                                e.location.kind.value,
                                e.location.name,
                                e.role,
                                e.source_text,
                            )
                            for e in plus.locations
                        ),
                    )
                ).encode()
            )
