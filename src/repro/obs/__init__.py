"""Pipeline observability: metrics registry, stage timers, exporters.

Dependency-free instrumentation for SyslogDigest.  The process-wide
registry (:func:`get_registry`) is default-on; hot paths report at stage
or sweep granularity so overhead stays within the <5% bound measured by
``benchmarks/bench_throughput.py`` (see ``results/metrics_overhead.txt``).
Swap in a :class:`NullRegistry` via :func:`set_registry` /
:func:`scoped_registry` to turn all instrumentation into no-ops.
"""

from repro.obs.export import to_dict, to_json, to_prom_text, write_metrics
from repro.obs.registry import (
    COLLECTOR_DELIVERED,
    COLLECTOR_DROPPED,
    COLLECTOR_DUPLICATED,
    COLLECTOR_JITTERED,
    DEFAULT_BUCKETS,
    DIGEST_EVENTS,
    DIGEST_MESSAGES,
    DIGEST_RUNS,
    SHARD_IMBALANCE,
    SHARD_MESSAGES,
    SHARD_SECONDS,
    SHARD_TASK_SECONDS,
    STAGE_SECONDS,
    STREAM_EVICTED,
    STREAM_FINALIZED,
    STREAM_OPEN_MESSAGES,
    STREAM_PRUNED,
    STREAM_SKEW_CLAMPED,
    STREAM_SKEW_REJECTED,
    STREAM_SPLITTERS,
    STREAM_WATERMARK_LAG,
    STREAM_WINDOW_ENTRIES,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    set_registry,
    stage_timer,
)

__all__ = [
    "COLLECTOR_DELIVERED",
    "COLLECTOR_DROPPED",
    "COLLECTOR_DUPLICATED",
    "COLLECTOR_JITTERED",
    "DEFAULT_BUCKETS",
    "DIGEST_EVENTS",
    "DIGEST_MESSAGES",
    "DIGEST_RUNS",
    "SHARD_IMBALANCE",
    "SHARD_MESSAGES",
    "SHARD_SECONDS",
    "SHARD_TASK_SECONDS",
    "STAGE_SECONDS",
    "STREAM_EVICTED",
    "STREAM_FINALIZED",
    "STREAM_OPEN_MESSAGES",
    "STREAM_PRUNED",
    "STREAM_SKEW_CLAMPED",
    "STREAM_SKEW_REJECTED",
    "STREAM_SPLITTERS",
    "STREAM_WATERMARK_LAG",
    "STREAM_WINDOW_ENTRIES",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "scoped_registry",
    "set_registry",
    "stage_timer",
    "to_dict",
    "to_json",
    "to_prom_text",
    "write_metrics",
]
