"""The metrics registry: counters, gauges, streaming histograms, timers.

Dependency-free runtime instrumentation for the digest pipeline.  One
process-wide :class:`MetricsRegistry` (see :func:`get_registry`) is the
default sink; hot paths accumulate into plain ints and flush at stage or
sweep granularity, so the enabled path stays near-free and the
:class:`NullRegistry` path is a handful of attribute lookups.

Metric naming follows Prometheus conventions: counters end in
``_total``, timers are histograms in seconds, labels carry the variable
part (``stage=\"rule_pass\"``, ``shard=\"3\"``).  Exposition formats live
in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections.abc import Sequence
from contextlib import contextmanager
from time import perf_counter

# Label sets are canonicalized to sorted (key, value) tuples so the same
# labels always address the same series.
LabelItems = tuple[tuple[str, str], ...]
SeriesKey = tuple[str, LabelItems]

# ----------------------------------------------------------------- metric names

#: Per-stage wall time of the offline/online pipeline stages (seconds).
STAGE_SECONDS = "syslogdigest_stage_seconds"

#: Sharded engine: messages assigned to each shard (gauge, label shard=).
SHARD_MESSAGES = "syslogdigest_shard_messages"
#: Sharded engine: wall seconds of each shard's task (gauge, label shard=).
SHARD_SECONDS = "syslogdigest_shard_seconds"
#: Sharded engine: per-task wall time distribution (histogram).
SHARD_TASK_SECONDS = "syslogdigest_shard_task_seconds"
#: LPT plan imbalance: heaviest shard / mean shard load (gauge, >= 1).
SHARD_IMBALANCE = "syslogdigest_shard_imbalance"

#: DigestStream health gauges/counters (updated at every finalize sweep).
STREAM_OPEN_MESSAGES = "syslogdigest_stream_open_messages"
STREAM_SPLITTERS = "syslogdigest_stream_splitters"
STREAM_WINDOW_ENTRIES = "syslogdigest_stream_window_entries"
STREAM_WATERMARK_LAG = "syslogdigest_stream_watermark_lag_seconds"
STREAM_EVICTED = "syslogdigest_stream_evicted_splitters_total"
STREAM_PRUNED = "syslogdigest_stream_pruned_entries_total"
STREAM_SKEW_CLAMPED = "syslogdigest_stream_skew_clamped_total"
STREAM_SKEW_REJECTED = "syslogdigest_stream_skew_rejected_total"
STREAM_FINALIZED = "syslogdigest_stream_finalized_events_total"

#: Load shedding (bounded-memory streaming): force-finalized groups and
#: the messages inside them.
STREAM_SHED_EVENTS = "syslogdigest_stream_shed_events_total"
STREAM_SHED_MESSAGES = "syslogdigest_stream_shed_messages_total"
#: Checkpointing: snapshots written, plus the stream-clock age of the
#: newest one (gauge; -1 before the first checkpoint).
CHECKPOINT_WRITES = "syslogdigest_checkpoint_writes_total"
CHECKPOINT_AGE = "syslogdigest_checkpoint_age_seconds"
CHECKPOINT_BYTES = "syslogdigest_checkpoint_bytes"

#: Quarantine (dead-letter queue for unparseable/rejected input).
QUARANTINED = "syslogdigest_quarantined_total"
QUARANTINE_DEPTH = "syslogdigest_quarantine_depth"
QUARANTINE_OVERFLOW = "syslogdigest_quarantine_overflow_total"

#: Resilient source reading: retries taken and sources abandoned after
#: the retry budget ran out.
INGEST_RETRIES = "syslogdigest_ingest_retries_total"
INGEST_FAILURES = "syslogdigest_ingest_failed_sources_total"

#: Sharded engine fault recovery: worker tasks retried after an
#: exception and tasks that fell back to in-process serial execution.
SHARD_RETRIES = "syslogdigest_shard_retries_total"
SHARD_FALLBACKS = "syslogdigest_shard_fallbacks_total"

#: Streaming worker processes (DESIGN.md §12): parent <-> worker
#: command round-trips (labelled ``cmd=``), their fan-out wall time,
#: and how many worker processes are currently alive.
STREAM_WORKER_ROUNDTRIPS = "syslogdigest_stream_worker_roundtrips_total"
STREAM_WORKER_RTT_SECONDS = "syslogdigest_stream_worker_roundtrip_seconds"
STREAM_WORKER_PROCS = "syslogdigest_stream_worker_processes"

#: Multi-source ingest front-end (DESIGN.md §10).  Per-source series
#: carry a ``source=`` label; the breaker-state gauge encodes
#: closed=0, half_open=1, open=2.
INGEST_BUFFERED = "syslogdigest_ingest_buffered_messages"
INGEST_WATERMARK_LAG = "syslogdigest_ingest_watermark_lag_seconds"
INGEST_ADMITTED = "syslogdigest_ingest_admitted_total"
INGEST_LATE_DROPPED = "syslogdigest_ingest_late_dropped_total"
INGEST_DEDUPLICATED = "syslogdigest_ingest_deduplicated_total"
INGEST_SEQ_GAPS = "syslogdigest_ingest_sequence_gaps_total"
INGEST_FORCED_FLUSHES = "syslogdigest_ingest_forced_flushes_total"
INGEST_ADMISSION_SHED = "syslogdigest_ingest_admission_shed_total"
BREAKER_STATE = "syslogdigest_ingest_breaker_state"
BREAKER_TRANSITIONS = "syslogdigest_ingest_breaker_transitions_total"
BREAKER_REJECTED = "syslogdigest_ingest_breaker_rejected_total"

#: Fault-injection harness: faults applied, labelled by kind.
FAULTS_INJECTED = "syslogdigest_faults_injected_total"

#: Collector-path degradation counters.
COLLECTOR_DELIVERED = "syslogdigest_collector_delivered_total"
COLLECTOR_DROPPED = "syslogdigest_collector_dropped_total"
COLLECTOR_DUPLICATED = "syslogdigest_collector_duplicated_total"
COLLECTOR_JITTERED = "syslogdigest_collector_jittered_total"

#: Batch digest totals.
DIGEST_RUNS = "syslogdigest_digest_runs_total"
DIGEST_MESSAGES = "syslogdigest_digest_messages_total"
DIGEST_EVENTS = "syslogdigest_digest_events_total"

#: Knowledge lifecycle (DESIGN.md §9): the versioned model store and the
#: validation-gated promotion path.  ``KB_ACTIVE_VERSION`` is an info
#: gauge holding the currently served version id; promotions are counted
#: by outcome (``outcome="accepted"|"rejected"``); churn gauges hold the
#: last gate evaluation's rule-pair add/delete counts
#: (``kind="added"|"deleted"``); canary quality gauges hold the last
#: replay's numbers per side (``side="active"|"candidate"``,
#: ``metric="compression_ratio"|"template_match_rate"|"event_recall"``).
KB_ACTIVE_VERSION = "syslogdigest_kb_active_version"
KB_PROMOTIONS = "syslogdigest_kb_promotions_total"
KB_ROLLBACKS = "syslogdigest_kb_rollbacks_total"
KB_RULE_CHURN = "syslogdigest_kb_rule_churn"
KB_QUALITY = "syslogdigest_kb_canary_quality"

#: Live hot-swap of a promoted knowledge base into a running stream:
#: completed epoch-boundary swaps, plus whether one is still deferred.
STREAM_KB_SWAPS = "syslogdigest_stream_kb_swaps_total"
STREAM_KB_SWAP_PENDING = "syslogdigest_stream_kb_swap_pending"

#: Serve daemon (DESIGN.md §13): per-tenant supervision and HTTP API.
#: ``SERVE_TENANT_STATE`` is a gauge holding the supervisor state as an
#: index into ``repro.serve.supervisor.STATES`` (same idiom as
#: ``BREAKER_STATE``); transitions are counted per target state.
SERVE_TENANT_STATE = "syslogdigest_serve_tenant_state"
SERVE_TRANSITIONS = "syslogdigest_serve_transitions_total"
SERVE_RESTARTS = "syslogdigest_serve_restarts_total"
SERVE_ARRIVALS = "syslogdigest_serve_arrivals_total"
SERVE_EVENTS = "syslogdigest_serve_events_total"
SERVE_HTTP_REQUESTS = "syslogdigest_serve_http_requests_total"

#: Live tailing (byte-offset cursors over rotating source logs) and
#: disk-fault degradation.  Rotations/truncations count per source;
#: lag is a gauge of unread bytes behind the cursor; durable-write
#: failures count degrade-don't-crash events per tenant and site.
TAIL_ROTATIONS = "syslogdigest_tail_rotations_total"
TAIL_TRUNCATIONS = "syslogdigest_tail_truncations_total"
TAIL_LAG_BYTES = "syslogdigest_tail_lag_bytes"
DURABLE_WRITE_FAILURES = "syslogdigest_durable_write_failures_total"

#: Bulkhead tenant placement (DESIGN.md §15): per-tenant worker
#: processes and resource budgets.  ``BUDGET_LIMIT``/``BUDGET_USED``
#: are gauge pairs per ``{tenant, budget}`` (0 limit = unbounded);
#: breaches count deterministic budget violations that degraded — not
#: killed — the tenant.  Worker deaths count per ``{tenant, reason}``
#: (``exit`` | ``stuck`` | ``rpc-deadline`` | ``spawn``); the workers
#: gauge holds live per-tenant worker processes.  HTTP rejections
#: count hardening refusals per ``{reason}`` (``deadline`` | ``headers``
#: | ``body`` | ``waiters``); the long-poll gauge holds blocked event
#: subscribers per tenant.
BUDGET_LIMIT = "syslogdigest_tenant_budget_limit"
BUDGET_USED = "syslogdigest_tenant_budget_used"
BUDGET_BREACHES = "syslogdigest_tenant_budget_breaches_total"
OVER_BUDGET = "syslogdigest_tenant_over_budget"
PLACEMENT_WORKERS = "syslogdigest_placement_workers"
PLACEMENT_WORKER_DEATHS = "syslogdigest_placement_worker_deaths_total"
SERVE_HTTP_REJECTED = "syslogdigest_http_rejected_total"
SERVE_LONGPOLL_WAITERS = "syslogdigest_longpoll_waiters"

#: Default histogram bounds, tuned for stage timings (10 us .. 5 min).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2,
    0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)


class Histogram:
    """Fixed-bucket streaming histogram with quantile estimates.

    Buckets are cumulative-``le`` style (Prometheus exposition);
    quantiles are linearly interpolated inside the bucket the rank falls
    into, clamped to the observed min/max so small samples cannot report
    values outside the data.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (q in [0, 1]) of the observed samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cum + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else self.vmin
                upper = (
                    self.bounds[i] if i < len(self.bounds) else self.vmax
                )
                frac = (rank - cum) / n
                value = lower + frac * (upper - lower)
                return min(max(value, self.vmin), self.vmax)
            cum += n
        return self.vmax

    def snapshot(self) -> dict[str, float]:
        """JSON-friendly summary of the distribution."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.vmin,
            "max": self.vmax,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


def _series_key(name: str, labels: dict[str, str]) -> SeriesKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class _Timer:
    """Context manager observing its wall time into a histogram."""

    __slots__ = ("_registry", "_name", "_labels", "_t0")

    def __init__(
        self, registry: MetricsRegistry, name: str, labels: dict[str, str]
    ) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels

    def __enter__(self) -> _Timer:
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe(
            self._name, perf_counter() - self._t0, **self._labels
        )


class _NullTimer:
    """Shared do-nothing context manager for the no-op registry path."""

    __slots__ = ()

    def __enter__(self) -> _NullTimer:
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms.

    Series are addressed by (metric name, sorted label items); all
    mutation goes through :meth:`inc` / :meth:`set_gauge` /
    :meth:`observe` under one lock, which the streaming thread pool in
    :meth:`repro.core.stream.DigestStream.push_many` relies on.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[SeriesKey, float] = {}
        self._gauges: dict[SeriesKey, float] = {}
        self._histograms: dict[SeriesKey, Histogram] = {}

    # ------------------------------------------------------------- mutation

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Add ``value`` to the counter series (creating it at 0)."""
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set the gauge series to ``value``."""
        key = _series_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record ``value`` into the histogram series."""
        key = _series_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    def timer(self, name: str, **labels: str):
        """Context manager timing its block into histogram ``name``."""
        return _Timer(self, name, labels)

    def reset(self) -> None:
        """Drop every series (tests, fresh CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------ inspection

    def counters(self) -> dict[SeriesKey, float]:
        """Snapshot of all counter series."""
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[SeriesKey, float]:
        """Snapshot of all gauge series."""
        with self._lock:
            return dict(self._gauges)

    def histograms(self) -> dict[SeriesKey, Histogram]:
        """Snapshot of all histogram series (live objects; read-only use)."""
        with self._lock:
            return dict(self._histograms)

    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of one counter series (0.0 if absent)."""
        with self._lock:
            return self._counters.get(_series_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: str) -> float | None:
        """Current value of one gauge series (None if absent)."""
        with self._lock:
            return self._gauges.get(_series_key(name, labels))

    def histogram(self, name: str, **labels: str) -> Histogram | None:
        """One histogram series (None if absent)."""
        with self._lock:
            return self._histograms.get(_series_key(name, labels))


class NullRegistry(MetricsRegistry):
    """A registry that records nothing — the measured-zero-overhead path."""

    enabled = False

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        pass

    def observe(self, name: str, value: float, **labels: str) -> None:
        pass

    def timer(self, name: str, **labels: str):
        return _NULL_TIMER


# The process-wide default sink.  Default-on: operators get metrics
# without opting in; `set_registry(NullRegistry())` turns the pipeline's
# instrumentation into no-ops.
_REGISTRY: MetricsRegistry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module reports to."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def scoped_registry(registry: MetricsRegistry):
    """Temporarily swap the process-wide registry (tests, benches)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def stage_timer(stage: str, registry: MetricsRegistry | None = None):
    """Time one pipeline stage into ``syslogdigest_stage_seconds{stage=}``."""
    reg = registry if registry is not None else _REGISTRY
    return reg.timer(STAGE_SECONDS, stage=stage)
