"""Registry exposition: Prometheus text format and JSON documents.

Two consumers, two shapes.  Scrape-style monitoring gets the Prometheus
exposition format (``to_prom_text``); integration code gets plain dicts
with stable field names (``to_dict`` / ``to_json``), following the same
conventions as :mod:`repro.apps.api`.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.registry import Histogram, LabelItems, MetricsRegistry


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(labels: LabelItems, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = labels + extra
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prom_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus exposition format (text/plain 0.0.4)."""
    lines: list[str] = []

    counters = registry.counters()
    for name in sorted({name for name, _ in counters}):
        lines.append(f"# TYPE {name} counter")
        for (series, labels), value in sorted(counters.items()):
            if series == name:
                lines.append(
                    f"{name}{_label_text(labels)} {_format_value(value)}"
                )

    gauges = registry.gauges()
    for name in sorted({name for name, _ in gauges}):
        lines.append(f"# TYPE {name} gauge")
        for (series, labels), value in sorted(gauges.items()):
            if series == name:
                lines.append(
                    f"{name}{_label_text(labels)} {_format_value(value)}"
                )

    histograms = registry.histograms()
    for name in sorted({name for name, _ in histograms}):
        lines.append(f"# TYPE {name} histogram")
        for (series, labels), hist in sorted(histograms.items()):
            if series != name:
                continue
            cum = 0
            for bound, count in zip(
                (*hist.bounds, math.inf), hist.bucket_counts
            ):
                cum += count
                le = (("le", _format_value(bound)),)
                lines.append(
                    f"{name}_bucket{_label_text(labels, le)} {cum}"
                )
            lines.append(
                f"{name}_sum{_label_text(labels)} {repr(hist.total)}"
            )
            lines.append(f"{name}_count{_label_text(labels)} {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _series_entry(labels: LabelItems, **fields) -> dict:
    return {"labels": dict(labels), **fields}


def to_dict(registry: MetricsRegistry) -> dict:
    """The registry as one JSON-serializable document.

    Series are grouped by metric name and sorted, so two dumps of the
    same registry are byte-identical — the same stability contract as
    :func:`repro.apps.api.digest_to_dict`.
    """
    out: dict[str, dict[str, list[dict]]] = {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for (name, labels), value in sorted(registry.counters().items()):
        out["counters"].setdefault(name, []).append(
            _series_entry(labels, value=value)
        )
    for (name, labels), value in sorted(registry.gauges().items()):
        out["gauges"].setdefault(name, []).append(
            _series_entry(labels, value=value)
        )
    for (name, labels), hist in sorted(registry.histograms().items()):
        out["histograms"].setdefault(name, []).append(
            _series_entry(labels, **hist.snapshot())
        )
    return out


def to_json(registry: MetricsRegistry) -> str:
    """JSON text of :func:`to_dict`."""
    return json.dumps(to_dict(registry), indent=1)


def write_metrics(path: str | Path, registry: MetricsRegistry) -> Path:
    """Dump the registry to ``path``: JSON for ``*.json``, else Prometheus."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        text = to_json(registry)
    else:
        text = to_prom_text(registry)
    path.write_text(text + ("\n" if not text.endswith("\n") else ""),
                    encoding="utf-8")
    return path
