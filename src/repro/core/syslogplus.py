"""Syslog+ — raw messages augmented with template and location (Section 3.1).

The augmentation is the same offline (preparing historical Syslog+ for
mining) and online (feeding the groupers), so both share this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.locations.dictionary import LocationDictionary
from repro.locations.extract import ExtractedLocation, LocationExtractor
from repro.locations.model import Location
from repro.obs import stage_timer
from repro.syslog.message import SyslogMessage
from repro.templates.learner import TemplateSet
from repro.templates.signature import Template


@dataclass(frozen=True)
class SyslogPlus:
    """One augmented message.

    ``index`` is the message's position in the processed stream; digests
    carry index lists so the raw messages of an event can be retrieved
    (the paper's "index field").
    """

    index: int
    message: SyslogMessage
    template: Template
    locations: tuple[ExtractedLocation, ...]
    primary_location: Location

    @property
    def timestamp(self) -> float:
        """The raw message's timestamp."""
        return self.message.timestamp

    @property
    def router(self) -> str:
        """The raw message's originating router."""
        return self.message.router

    @property
    def template_key(self) -> str:
        """Key of the matched template."""
        return self.template.key

    def local_locations(self) -> tuple[Location, ...]:
        """Locations owned by the originating router or a direct neighbor."""
        return tuple(
            item.location
            for item in self.locations
            if item.role in ("local", "neighbor", "router")
        )


class Augmenter:
    """Signature matching + location parsing -> Syslog+ stream."""

    def __init__(
        self, templates: TemplateSet, dictionary: LocationDictionary
    ) -> None:
        self._templates = templates
        self._extractor = LocationExtractor(dictionary)
        self._counter = 0

    def augment(self, message: SyslogMessage) -> SyslogPlus:
        """Augment one message, assigning the next stream index."""
        template = self._templates.match(message)
        locations = tuple(
            self._extractor.extract(message.router, message.detail)
        )
        primary = next(
            (i.location for i in locations if i.role == "local"),
            Location.router_level(message.router),
        )
        plus = SyslogPlus(
            index=self._counter,
            message=message,
            template=template,
            locations=locations,
            primary_location=primary,
        )
        self._counter += 1
        return plus

    def augment_all(self, messages) -> list[SyslogPlus]:
        """Augment a whole (time-sorted) sequence.

        Batch form of :meth:`augment` with the two augmentation stages
        timed separately (``stage="signature_match"`` and
        ``stage="location_parse"``); results are identical.
        """
        messages = list(messages)
        with stage_timer("signature_match"):
            templates = [self._templates.match(m) for m in messages]
        with stage_timer("location_parse"):
            out: list[SyslogPlus] = []
            for message, template in zip(messages, templates):
                locations = tuple(
                    self._extractor.extract(message.router, message.detail)
                )
                primary = next(
                    (i.location for i in locations if i.role == "local"),
                    Location.router_level(message.router),
                )
                out.append(
                    SyslogPlus(
                        index=self._counter,
                        message=message,
                        template=template,
                        locations=locations,
                        primary_location=primary,
                    )
                )
                self._counter += 1
        return out
