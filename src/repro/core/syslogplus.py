"""Syslog+ — raw messages augmented with template and location (Section 3.1).

The augmentation is the same offline (preparing historical Syslog+ for
mining) and online (feeding the groupers), so both share this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hotpath import reference_enabled
from repro.locations.dictionary import LocationDictionary
from repro.locations.extract import ExtractedLocation, LocationExtractor
from repro.locations.model import Location
from repro.obs import stage_timer
from repro.syslog.message import SyslogMessage
from repro.templates.learner import TemplateSet
from repro.templates.signature import Template
from repro.templates.tokenize import tokenize

#: Bound on the per-augmenter memo of (router, code, detail) results.
#: Message text is external input, so the memo clears wholesale when full
#: rather than growing without bound.
_MAX_AUGMENT_CACHE = 1 << 17


@dataclass(frozen=True)
class SyslogPlus:
    """One augmented message.

    ``index`` is the message's position in the processed stream; digests
    carry index lists so the raw messages of an event can be retrieved
    (the paper's "index field").
    """

    index: int
    message: SyslogMessage
    template: Template
    locations: tuple[ExtractedLocation, ...]
    primary_location: Location

    @property
    def timestamp(self) -> float:
        """The raw message's timestamp."""
        return self.message.timestamp

    @property
    def router(self) -> str:
        """The raw message's originating router."""
        return self.message.router

    @property
    def template_key(self) -> str:
        """Key of the matched template."""
        return self.template.key

    def local_locations(self) -> tuple[Location, ...]:
        """Locations owned by the originating router or a direct neighbor."""
        return tuple(
            item.location
            for item in self.locations
            if item.role in ("local", "neighbor", "router")
        )


class Augmenter:
    """Signature matching + location parsing -> Syslog+ stream.

    Syslog is extremely repetitive — a flapping interface emits the same
    ``(router, code, detail)`` thousands of times — so the augmenter
    memoizes the template/location result per distinct message body and
    tokenizes each detail exactly once.  The memo is per-instance, and
    augmenters are rebuilt whenever the knowledge base is swapped, so a
    cached result can never outlive the templates or dictionary it was
    computed from.  Reference mode bypasses the memo (and the compiled
    matcher underneath) entirely.
    """

    def __init__(
        self, templates: TemplateSet, dictionary: LocationDictionary
    ) -> None:
        self._templates = templates
        self._extractor = LocationExtractor(dictionary)
        self._counter = 0
        self._memo: dict[
            tuple[str, str, str],
            tuple[Template, tuple[ExtractedLocation, ...], Location],
        ] = {}

    def _compute(
        self, message: SyslogMessage
    ) -> tuple[Template, tuple[ExtractedLocation, ...], Location]:
        """Template, locations, and primary location of one message."""
        template = self._templates.match_words(
            message.error_code, tokenize(message.detail)
        )
        locations = tuple(
            self._extractor.extract(message.router, message.detail)
        )
        primary = next(
            (i.location for i in locations if i.role == "local"),
            Location.router_level(message.router),
        )
        return template, locations, primary

    def _augmentation(
        self, message: SyslogMessage
    ) -> tuple[Template, tuple[ExtractedLocation, ...], Location]:
        """Memoized :meth:`_compute` (uncached under reference mode)."""
        if reference_enabled():
            return self._compute(message)
        key = (message.router, message.error_code, message.detail)
        hit = self._memo.get(key)
        if hit is None:
            if len(self._memo) >= _MAX_AUGMENT_CACHE:
                self._memo.clear()
            hit = self._compute(message)
            self._memo[key] = hit
        return hit

    def augment(self, message: SyslogMessage) -> SyslogPlus:
        """Augment one message, assigning the next stream index."""
        template, locations, primary = self._augmentation(message)
        plus = SyslogPlus(
            index=self._counter,
            message=message,
            template=template,
            locations=locations,
            primary_location=primary,
        )
        self._counter += 1
        return plus

    def augment_all(self, messages) -> list[SyslogPlus]:
        """Augment a whole (time-sorted) sequence.

        Batch form of :meth:`augment` with the two augmentation stages
        timed (``stage="signature_match"`` and ``stage="location_parse"``;
        memo hits are attributed to the first stage); results are
        identical.

        Index assignment is exception-safe: ``self._counter`` only
        advances once the *whole* batch has augmented, so a mid-batch
        failure (e.g. location parsing raising on one message) leaves the
        stream position untouched and a retry of the same batch reuses
        the same indices instead of desynchronizing them.
        """
        messages = list(messages)
        with stage_timer("signature_match"):
            parts = [self._augmentation(m) for m in messages]
        with stage_timer("location_parse"):
            start = self._counter
            out = [
                SyslogPlus(
                    index=start + i,
                    message=message,
                    template=template,
                    locations=locations,
                    primary_location=primary,
                )
                for i, (message, (template, locations, primary)) in enumerate(
                    zip(messages, parts)
                )
            ]
            self._counter = start + len(out)
        return out
