"""Event prioritization (Section 4.2.4).

``score = sum over messages m of  l_m / log(f_m)``

* ``l_m`` — location weight: 10x per hierarchy level, so a router-level
  symptom outweighs an interface-level one;
* ``f_m`` — historical frequency of the message's signature on its router:
  rare signatures matter more; the logarithm keeps very rare ones from
  utterly dominating the ranking.

Deviation from the paper noted in DESIGN.md: ``log(f_m)`` is non-positive
for ``f_m <= 1``, so we use ``log(e + f_m)`` which is >= 1 and preserves
monotonicity.  Operators can reweigh via ``template_weights``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.events import NetworkEvent
from repro.core.knowledge import KnowledgeBase


@dataclass
class Prioritizer:
    """Scores and ranks events against learned historical frequencies."""

    kb: KnowledgeBase
    # Optional operator overrides: template_key -> multiplicative weight.
    template_weights: dict[str, float] = field(default_factory=dict)

    def message_weight(self, router: str, template_key: str, level: int) -> float:
        """Contribution of one message to its event's score."""
        frequency = self.kb.frequency(router, template_key)
        location_weight = 10.0 ** (level - 1)
        operator_weight = self.template_weights.get(template_key, 1.0)
        return operator_weight * location_weight / math.log(math.e + frequency)

    def score(self, event: NetworkEvent) -> float:
        """The paper's additive score over the event's messages."""
        return sum(
            self.message_weight(
                plus.router, plus.template_key, plus.primary_location.level
            )
            for plus in event.messages
        )

    def rank(self, events: list[NetworkEvent]) -> list[NetworkEvent]:
        """Fill in scores and return events sorted most-important-first.

        The key is total and deterministic: score (descending), then
        start time, then the full message-index tuple.  Distinct events
        never share a message index, so equal-score, equal-start ties
        still order the same way on every run.
        """
        for event in events:
            event.score = self.score(event)
        return sorted(
            events, key=lambda e: (-e.score, e.start_ts, e.indices)
        )
