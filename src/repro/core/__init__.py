"""SyslogDigest core: the paper's primary contribution.

Offline, :func:`SyslogDigest.learn` builds a
:class:`~repro.core.knowledge.KnowledgeBase` (templates, locations,
temporal parameters, association rules, historical frequencies) from
historical syslog plus router configs.  Online, :class:`SyslogDigest`
augments the live stream into Syslog+, applies temporal / rule-based /
cross-router grouping, and emits prioritized :class:`NetworkEvent` digests.
"""

from repro.core.config import DigestConfig
from repro.core.events import NetworkEvent
from repro.core.grouping import GroupingEngine
from repro.core.knowledge import KnowledgeBase
from repro.core.pipeline import DigestResult, SyslogDigest
from repro.core.present import LabelRegistry, present_event
from repro.core.refresh import KnowledgeRefresher, RefreshReport
from repro.core.syslogplus import Augmenter, SyslogPlus

__all__ = [
    "Augmenter",
    "DigestConfig",
    "DigestResult",
    "GroupingEngine",
    "KnowledgeBase",
    "KnowledgeRefresher",
    "LabelRegistry",
    "RefreshReport",
    "NetworkEvent",
    "SyslogDigest",
    "SyslogPlus",
    "present_event",
]
