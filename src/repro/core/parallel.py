"""Sharded parallel execution of the digest grouping passes.

The temporal and rule passes only ever relate messages on the *same*
router, so partitioning the Syslog+ stream by router and running those
passes per shard produces exactly the edges the serial engine would —
edges are expressed over global message indices, and the union-find merge
of the paper's Section 4.2.3 is order-invariant, so unioning per-shard
edge sets afterwards yields identical connected components.  Only the
cross-router pass needs the merged stream; it runs once, serially, after
the shards.

Batch parallelism uses a process pool (the passes are pure Python, so
threads gain nothing under the GIL); each task ships one shard's messages
plus the read-only knowledge it needs and returns plain edge lists, which
keeps the payloads picklable.  If a pool cannot be created or a payload
cannot be pickled (restricted sandboxes, exotic platforms), the engine
degrades to running the same shard tasks serially in-process — the result
is identical either way, a property the tests pin.  Individual worker
failures are survivable too: a shard task that raises is retried once on
the pool, then falls back to in-process serial execution for that shard
(see :meth:`ParallelGroupingEngine._run_shards`), so a dying worker
degrades throughput, never correctness.

Streaming parallelism lives in :meth:`repro.core.stream.DigestStream.push_many`
and shares the same shard axis, but its state machines are *stateful*
across batches, so shipping them per call would swamp any win.  Instead
:class:`StreamWorkerPool` (below) runs one persistent worker process per
shard: each worker owns its :class:`~repro.core.stream.ShardState` for
the stream's whole lifetime, the knowledge base crosses the process
boundary once at spawn (and again only on an epoch-boundary hot swap),
and every batch ships only slim step items out and plain edge lists
back.  ``DigestConfig.stream_workers`` picks between that lane, the
thread lane, and fully serial stepping — all three group byte-identically
(gated in ``make check``).
"""

from __future__ import annotations

import os
import pickle
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter

from repro.core.config import DigestConfig
from repro.core.grouping import (
    Edge,
    GroupingEngine,
    GroupingOutcome,
    build_rule_partners,
    collect_outcome,
    cross_router_edges,
    rule_edges,
    temporal_edges,
)
from repro.core.knowledge import KnowledgeBase
from repro.core.syslogplus import SyslogPlus
from repro.mining.temporal import TemporalParams
from repro.obs import (
    SHARD_FALLBACKS,
    SHARD_IMBALANCE,
    SHARD_MESSAGES,
    SHARD_RETRIES,
    SHARD_SECONDS,
    SHARD_TASK_SECONDS,
    STREAM_WORKER_ROUNDTRIPS,
    STREAM_WORKER_RTT_SECONDS,
    get_registry,
    stage_timer,
)
from repro.utils.unionfind import DenseUnionFind


def resolve_workers(n_workers: int) -> int:
    """Turn the config knob into a concrete worker count (0 = all cores)."""
    if n_workers == 0:
        return os.cpu_count() or 1
    return n_workers


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of routers to shards."""

    n_shards: int
    shard_of: dict[str, int]

    def split(self, stream: list[SyslogPlus]) -> list[list[SyslogPlus]]:
        """Partition a time-sorted stream into per-shard sorted streams."""
        shards: list[list[SyslogPlus]] = [[] for _ in range(self.n_shards)]
        for plus in stream:
            shards[self.shard_of[plus.router]].append(plus)
        return shards


def plan_shards(stream: list[SyslogPlus], n_shards: int) -> ShardPlan:
    """Greedy balanced assignment of routers to at most ``n_shards`` shards.

    Routers are placed heaviest-first onto the least-loaded shard
    (longest-processing-time heuristic), with deterministic tie-breaks so
    the same stream always yields the same plan.
    """
    counts = Counter(plus.router for plus in stream)
    n = max(1, min(n_shards, len(counts)))
    loads = [0] * n
    shard_of: dict[str, int] = {}
    for router, count in sorted(
        counts.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        shard = min(range(n), key=lambda s: (loads[s], s))
        shard_of[router] = shard
        loads[shard] += count
    return ShardPlan(n_shards=n, shard_of=shard_of)


def shard_edge_task(
    payload: tuple[
        list[SyslogPlus],
        TemporalParams,
        float,
        dict[str, tuple[str, ...]],
        float,
        object,
        bool,
        bool,
    ]
) -> tuple[list[Edge], set[tuple[str, str]]]:
    """Run the shard-local passes over one shard; top-level for pickling."""
    (
        shard,
        temporal_params,
        reset_after,
        partners,
        window,
        dictionary,
        enable_temporal,
        enable_rules,
    ) = payload
    edges: list[Edge] = []
    active: set[tuple[str, str]] = set()
    if enable_temporal:
        edges.extend(temporal_edges(shard, temporal_params, reset_after))
    if enable_rules:
        rule, active = rule_edges(shard, partners, window, dictionary)
        edges.extend(rule)
    return edges, active


def timed_shard_edge_task(
    payload,
) -> tuple[list[Edge], set[tuple[str, str]], float]:
    """:func:`shard_edge_task` plus its wall time, measured in the worker.

    The duration rides back with the result so per-shard timings survive
    the process boundary (a child's registry writes would be lost).
    """
    t0 = perf_counter()
    edges, active = shard_edge_task(payload)
    return edges, active, perf_counter() - t0


def default_shard_task(payload, shard_id: int = 0, attempt: int = 0):
    """The production shard task; top-level so the pool can pickle it.

    ``shard_id``/``attempt`` exist for fault-injecting wrappers (see
    :class:`repro.netsim.faults.FlakyShardTask`) — the real computation
    ignores both, so retries are trivially deterministic: shard tasks
    are pure functions of their payload.
    """
    return timed_shard_edge_task(payload)


class ParallelGroupingEngine:
    """Router-sharded grouping with the same contract as GroupingEngine.

    ``group`` returns a :class:`GroupingOutcome` identical — including
    group membership, group order and member order — to what the serial
    engine produces on the same stream.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        config: DigestConfig,
        task=None,
    ) -> None:
        self._kb = kb
        self._config = config
        self._partners = build_rule_partners(kb.rule_pairs())
        # The shard task must be a picklable top-level callable of
        # (payload, shard_id, attempt); overriding it is the seam the
        # fault-injection harness uses to make workers raise on demand.
        self._task = task if task is not None else default_shard_task

    def group(self, stream: list[SyslogPlus]) -> GroupingOutcome:
        """Group the whole stream; input must be time-sorted."""
        cfg = self._config
        n_workers = resolve_workers(cfg.n_workers)
        if n_workers <= 1 or not cfg.shard_by_router or not stream:
            return GroupingEngine(self._kb, cfg).group(stream)

        plan = plan_shards(stream, n_workers)
        shard_ids: list[int] = []
        payloads = []
        for shard_id, shard in enumerate(plan.split(stream)):
            if not shard:
                continue
            shard_ids.append(shard_id)
            payloads.append(
                (
                    shard,
                    self._kb.temporal,
                    cfg.flush_after,
                    self._partners,
                    cfg.window,
                    self._kb.dictionary,
                    cfg.enable_temporal,
                    cfg.enable_rules,
                )
            )

        registry = get_registry()
        sizes = [len(payload[0]) for payload in payloads]
        if registry.enabled and sizes:
            for shard_id, size in zip(shard_ids, sizes):
                registry.set_gauge(
                    SHARD_MESSAGES, size, shard=str(shard_id)
                )
            # LPT imbalance: heaviest shard over the mean shard load.
            # 1.0 is a perfectly balanced plan.
            registry.set_gauge(
                SHARD_IMBALANCE, max(sizes) * len(sizes) / sum(sizes)
            )

        # Dense merge over batch positions; shard edges come back in
        # global indices and translate through one dict hop per endpoint.
        pos = {plus.index: i for i, plus in enumerate(stream)}
        uf = DenseUnionFind(len(stream))
        active_rules: set[tuple[str, str]] = set()
        with stage_timer("shard_passes", registry):
            results = self._run_shards(payloads, shard_ids)
        for shard_id, (edges, active, seconds) in zip(shard_ids, results):
            if registry.enabled:
                registry.set_gauge(
                    SHARD_SECONDS, seconds, shard=str(shard_id)
                )
                registry.observe(SHARD_TASK_SECONDS, seconds)
            for a, b in edges:
                uf.union(pos[a], pos[b])
            active_rules |= active

        if cfg.enable_cross_router:
            with stage_timer("cross_router_pass", registry):
                for a, b in cross_router_edges(
                    stream, cfg.cross_router_window, self._kb.dictionary
                ):
                    uf.union(pos[a], pos[b])
        with stage_timer("collect", registry):
            return collect_outcome(stream, uf, active_rules, pos)

    def _run_shards(self, payloads, shard_ids):
        """Run shard tasks on a process pool with per-task recovery.

        Three layers of defense, so one bad worker can never kill the
        digest:

        1. a task that raises is retried once on the pool (transient
           worker death, OOM kill, flaky interpreter state);
        2. a task that fails its retry runs serially in-process using
           the *production* task (bypassing any injected fault wrapper);
        3. if the pool itself cannot be created or payloads cannot be
           pickled, every task runs serially in-process.

        Shard tasks are pure functions of their payload, so a retry or
        fallback produces exactly the result the first attempt would
        have — determinism tests pin this.
        """
        n = len(payloads)
        results: list = [None] * n
        pending = list(range(n))
        registry = get_registry()
        if n > 1:
            try:
                with ProcessPoolExecutor(max_workers=n) as pool:
                    for attempt in (0, 1):
                        futures = {
                            i: pool.submit(
                                self._task,
                                payloads[i],
                                shard_ids[i],
                                attempt,
                            )
                            for i in pending
                        }
                        still_failed = []
                        for i, future in futures.items():
                            try:
                                results[i] = future.result()
                            except Exception:
                                still_failed.append(i)
                        if still_failed and attempt == 0:
                            if registry.enabled:
                                registry.inc(
                                    SHARD_RETRIES,
                                    len(still_failed),
                                    engine="batch",
                                )
                        pending = still_failed
                        if not pending:
                            break
            except (
                OSError,
                ValueError,
                RuntimeError,
                TypeError,
                AttributeError,
                pickle.PicklingError,
            ):
                # No process support (sandboxed platform) or pool setup
                # failure: same tasks, same results, one process.
                pass
        if pending and registry.enabled:
            registry.inc(SHARD_FALLBACKS, len(pending), engine="batch")
        for i in pending:
            # In-process serial fallback runs the production task
            # directly: injected worker faults model *worker* failures
            # and must not survive into the trusted serial path.
            results[i] = timed_shard_edge_task(payloads[i])
        return results


# --------------------------------------------------------------------------
# Streaming worker processes (DESIGN.md §12)


class WorkerProcessDied(RuntimeError):
    """A streaming shard worker process died mid-conversation.

    Unlike a *task* exception (which the stream retries in place), a
    dead worker takes its shard's grouping state with it — the live
    stream cannot recover transparently.  Resume from the last
    checkpoint (``repro resume``), which rebuilds every shard from the
    snapshot.
    """


def _stream_worker_main(conn, shard_id: int) -> None:
    """Command loop of one streaming shard worker process.

    The worker owns its :class:`~repro.core.stream.ShardState` for the
    whole stream lifetime; every request mutates that state and replies
    over the pipe.  Replies are ``("ok", value)``, ``("fault", repr,
    done, edges)`` for a step fault after ``done`` fully-applied
    messages (so the parent can retry from exactly the next one), or
    ``("err", repr)`` for non-step failures.  Top-level so the spawn
    start method can import it.
    """
    # Imported lazily: stream.py imports this module's pool at call
    # time, so a top-level import here would be circular.
    from repro.core.stream import ShardState

    state: ShardState | None = None
    fault_hook = step_hook = None
    ppid = os.getppid()
    while True:
        try:
            # Orphan watchdog: under the fork start method every worker
            # inherits the parent ends of all the lane's pipes (its own
            # included), so a SIGKILLed parent never produces EOF here —
            # the workers would outlive the daemon forever, pinning its
            # stdio pipes.  Re-parenting is the signal EOF can't give.
            while not conn.poll(2.0):
                if os.getppid() != ppid:
                    return
            request = conn.recv()
        except (EOFError, OSError):
            break
        cmd = request[0]
        try:
            if cmd == "stop":
                conn.send(("ok", None))
                break
            elif cmd == "init":
                _, kb, config, partners, fault_hook, step_hook = request
                state = ShardState(shard_id, kb, config, partners)
                conn.send(("ok", None))
            elif cmd == "steps":
                _, items, attempt, use_hooks, base = request
                edges: list[Edge] = []
                done = 0
                try:
                    if use_hooks and fault_hook is not None:
                        fault_hook(shard_id, attempt)
                    for plus, now in items:
                        if use_hooks and step_hook is not None:
                            step_hook(shard_id, attempt, base + done)
                        edges.extend(state.step(plus, now))
                        # Only a fully-applied step advances the cursor:
                        # the retry resumes at the failed message, never
                        # replaying one into partially-advanced state.
                        done += 1
                except Exception as exc:
                    conn.send(("fault", repr(exc), done, edges))
                else:
                    conn.send(("ok", edges))
            elif cmd == "adopt":
                _, kb, config, partners, reset_splitters = request
                state.adopt(kb, config, partners, reset_splitters)
                conn.send(("ok", None))
            elif cmd == "evict":
                conn.send(("ok", state.evict_idle(request[1])))
            elif cmd == "prune":
                conn.send(("ok", state.prune(request[1])))
            elif cmd == "snapshot":
                conn.send(("ok", state.snapshot()))
            elif cmd == "restore":
                state.restore(request[1])
                conn.send(("ok", None))
            elif cmd == "counts":
                conn.send(
                    ("ok", (state.n_splitters, state.n_window_entries))
                )
            else:
                conn.send(("err", f"unknown command {cmd!r}"))
        except Exception as exc:  # non-step failure: report, keep serving
            try:
                conn.send(("err", repr(exc)))
            except (OSError, BrokenPipeError):
                break
    conn.close()


def _terminate_workers(processes, connections) -> None:
    """Kill worker processes; module-level so weakref.finalize can hold it."""
    for conn in connections:
        try:
            conn.close()
        except OSError:
            pass
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=2.0)


class StreamWorkerPool:
    """Persistent per-shard worker processes for the streaming engine.

    One daemon process per shard, spawned once and reused for every
    batch.  Commands fan out over pipes to all addressed shards before
    any reply is read, so shards genuinely step concurrently; replies
    are collected in shard order, which keeps the merge deterministic.
    Forked where the platform allows it (cheapest, and inherits the
    parent's interpreter state); ``spawn`` otherwise.

    Raises :class:`WorkerProcessDied` if a worker vanishes mid-call —
    its shard state is gone, so the stream must be rebuilt from a
    checkpoint rather than limp on with a silently reset shard.
    """

    def __init__(self, n_shards: int) -> None:
        import multiprocessing as mp
        import weakref

        method = (
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        ctx = mp.get_context(method)
        self._conns = []
        self._procs = []
        for shard_id in range(n_shards):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_stream_worker_main,
                args=(child_conn, shard_id),
                daemon=True,
                name=f"stream-shard-{shard_id}",
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
        # Daemon workers die with the interpreter regardless; the
        # finalizer reclaims them as soon as the pool itself is dropped.
        self._finalizer = weakref.finalize(
            self, _terminate_workers, list(self._procs), list(self._conns)
        )

    @property
    def n_workers(self) -> int:
        """Live worker processes."""
        return sum(1 for p in self._procs if p.is_alive())

    def call_all(self, requests: dict[int, tuple]) -> dict[int, tuple]:
        """Fan one request per shard out, gather one reply per shard.

        All requests are written before any reply is read — the
        concurrency of the lane lives here.  Replies come back exactly
        as the worker sent them (``("ok", ...)`` / ``("fault", ...)``);
        protocol-level ``("err", ...)`` replies raise.
        """
        if not requests:
            return {}
        t0 = perf_counter()
        shard_order = sorted(requests)
        cmd = requests[shard_order[0]][0]
        for shard_id in shard_order:
            try:
                self._conns[shard_id].send(requests[shard_id])
            except (OSError, BrokenPipeError) as exc:
                raise WorkerProcessDied(
                    f"stream worker {shard_id} is gone "
                    f"(send {cmd!r} failed: {exc}); resume from the "
                    "last checkpoint"
                ) from exc
        replies: dict[int, tuple] = {}
        for shard_id in shard_order:
            try:
                reply = self._conns[shard_id].recv()
            except (EOFError, OSError) as exc:
                raise WorkerProcessDied(
                    f"stream worker {shard_id} died during {cmd!r}; "
                    "its shard state is lost — resume from the last "
                    "checkpoint"
                ) from exc
            if reply[0] == "err":
                raise RuntimeError(
                    f"stream worker {shard_id} failed {cmd!r}: {reply[1]}"
                )
            replies[shard_id] = reply
        registry = get_registry()
        if registry.enabled:
            registry.inc(
                STREAM_WORKER_ROUNDTRIPS, len(shard_order), cmd=cmd
            )
            registry.observe(
                STREAM_WORKER_RTT_SECONDS, perf_counter() - t0, cmd=cmd
            )
        return replies

    def broadcast(self, request: tuple) -> dict[int, tuple]:
        """Send the same request to every shard; gather all replies."""
        return self.call_all(
            {shard_id: request for shard_id in range(len(self._conns))}
        )

    def shutdown(self) -> None:
        """Stop every worker cleanly; idempotent."""
        for shard_id, conn in enumerate(self._conns):
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                continue
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
        self._finalizer()
