"""The end-to-end SyslogDigest pipeline (Figure 1).

Offline: :meth:`SyslogDigest.learn` runs signature identification, location
extraction from configs, temporal-pattern fitting and association-rule
mining over historical data, producing a :class:`KnowledgeBase`.

Online: :meth:`SyslogDigest.digest` augments a real-time stream into
Syslog+, applies the three grouping passes, and returns prioritized
events.  For message-by-message processing use
:class:`repro.core.stream.DigestStream`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.config import DigestConfig
from repro.core.events import NetworkEvent
from repro.core.grouping import GroupingEngine
from repro.core.knowledge import KnowledgeBase
from repro.core.present import event_label, present_digest
from repro.core.priority import Prioritizer
from repro.core.syslogplus import Augmenter
from repro.locations.configparse import parse_configs
from repro.mining.fit import fit_temporal_params
from repro.mining.rules import RuleMiner
from repro.mining.rulestore import RuleStore
from repro.mining.temporal import TemporalParams
from repro.obs import (
    DIGEST_EVENTS,
    DIGEST_MESSAGES,
    DIGEST_RUNS,
    get_registry,
    stage_timer,
)
from repro.syslog.message import SyslogMessage
from repro.syslog.stream import sort_messages
from repro.templates.learner import TemplateLearner
from repro.utils.timeutils import DAY


@dataclass
class DigestResult:
    """Output of one online digest run."""

    events: list[NetworkEvent]  # ranked, most important first
    n_messages: int
    active_rules: set[tuple[str, str]] = field(default_factory=set)
    # Set by SyslogDigest.digest_lines: the dead-letter queue holding
    # whatever failed to parse (None for message-level digests).
    quarantine: object | None = None

    @property
    def n_events(self) -> int:
        """Number of digested events."""
        return len(self.events)

    @property
    def compression_ratio(self) -> float:
        """Events divided by raw messages — the paper's headline metric.

        An empty digest compresses nothing: the ratio is 0.0, not 1.0,
        so empty runs cannot silently drag Table 7 / Figure 12 averages
        toward "no compression".
        """
        if self.n_messages == 0:
            return 0.0
        return self.n_events / self.n_messages

    def per_day(self, origin: float) -> dict[int, dict[str, int]]:
        """Per-day message/event counts (events counted at start day).

        Events starting before ``origin`` (collector skew, a mischosen
        origin) are clamped into day 0 rather than emitted as negative
        day buckets that would corrupt downstream aggregates.
        """
        out: dict[int, dict[str, int]] = {}
        for event in self.events:
            day = max(int((event.start_ts - origin) // DAY), 0)
            bucket = out.setdefault(day, {"events": 0, "messages": 0})
            bucket["events"] += 1
            bucket["messages"] += event.n_messages
        return out

    def per_router(self) -> dict[str, dict[str, int]]:
        """Per-router message/event counts (an event counts once on every
        router it touches, mirroring Figure 13's per-router view)."""
        out: dict[str, dict[str, int]] = {}
        for event in self.events:
            for router in event.routers:
                bucket = out.setdefault(
                    router, {"events": 0, "messages": 0}
                )
                bucket["events"] += 1
            for plus in event.messages:
                out[plus.router]["messages"] += 1
        return out

    def render(self, top: int | None = 20) -> str:
        """The human-facing digest text."""
        return present_digest(self.events, top)


class SyslogDigest:
    """The assembled system: a knowledge base plus the online machinery."""

    def __init__(
        self, kb: KnowledgeBase, config: DigestConfig | None = None
    ) -> None:
        self.kb = kb
        self.config = config or DigestConfig()
        if self.config.temporal != kb.temporal:
            # The knowledge base carries the fitted parameters; make the
            # config agree so grouping uses what offline learning chose.
            self.config = self.config.with_temporal(kb.temporal)

    # ----------------------------------------------------------------- offline

    @classmethod
    def learn(
        cls,
        historical: Iterable[SyslogMessage],
        configs: Sequence[str],
        config: DigestConfig | None = None,
        fit_temporal: bool = True,
    ) -> SyslogDigest:
        """Offline domain-knowledge learning over historical syslog + configs.

        ``historical`` need not be sorted; ``configs`` are raw router
        config texts.  Set ``fit_temporal=False`` to keep the configured
        alpha/beta instead of sweeping them (faster; used by tests).
        """
        cfg = config or DigestConfig()
        messages = sort_messages(historical)
        if not messages:
            raise ValueError("cannot learn from an empty history")

        learner = TemplateLearner(
            k=cfg.tree_k,
            max_messages_per_code=cfg.max_messages_per_code,
            min_subtype_support=cfg.tree_min_support,
        )
        with stage_timer("learn_templates"):
            templates = learner.learn(messages)
        with stage_timer("learn_configs"):
            dictionary = parse_configs(configs)
        augmenter = Augmenter(templates, dictionary)
        plus_stream = augmenter.augment_all(messages)

        # Temporal parameter fitting over per-key interarrival series.
        series: dict[tuple, list[float]] = {}
        for plus in plus_stream:
            key = (
                plus.router,
                plus.template_key,
                plus.primary_location.key(),
            )
            series.setdefault(key, []).append(plus.timestamp)
        temporal = cfg.temporal
        if fit_temporal:
            with stage_timer("learn_fit_temporal"):
                fit = fit_temporal_params(
                    list(series.values()), base=cfg.temporal
                )
            temporal = fit.params

        # Association rules over the whole history (weekly incremental
        # updates are exercised separately by the Figure 8/9 benches).
        miner = RuleMiner(
            window=cfg.window, sp_min=cfg.sp_min, conf_min=cfg.conf_min
        )
        store = RuleStore(miner=miner)
        with stage_timer("learn_rules"):
            store.update(
                [
                    (p.timestamp, p.router, p.template_key)
                    for p in plus_stream
                ]
            )

        frequencies: dict[tuple[str, str], int] = {}
        for plus in plus_stream:
            key2 = (plus.router, plus.template_key)
            frequencies[key2] = frequencies.get(key2, 0) + 1
        span_days = max(
            (messages[-1].timestamp - messages[0].timestamp) / DAY, 1e-6
        )

        kb = KnowledgeBase(
            templates=templates,
            dictionary=dictionary,
            temporal=temporal,
            rules=store,
            frequencies=frequencies,
            history_days=span_days,
        )
        return cls(kb, cfg.with_temporal(temporal))

    # ------------------------------------------------------------------ online

    def digest(self, messages: Iterable[SyslogMessage]) -> DigestResult:
        """Digest a batch of real-time messages into ranked events.

        With ``config.n_workers != 1`` the temporal and rule passes run
        router-sharded on a process pool (see :mod:`repro.core.parallel`);
        the grouping is identical to the serial engine's.
        """
        with stage_timer("sort"):
            stream = sort_messages(messages)
        augmenter = Augmenter(self.kb.templates, self.kb.dictionary)
        plus_stream = augmenter.augment_all(stream)
        if self.config.n_workers != 1:
            from repro.core.parallel import ParallelGroupingEngine

            engine = ParallelGroupingEngine(self.kb, self.config)
        else:
            engine = GroupingEngine(self.kb, self.config)
        outcome = engine.group(plus_stream)
        events = [NetworkEvent(messages=group) for group in outcome.groups]
        with stage_timer("prioritize"):
            ranked = Prioritizer(self.kb).rank(events)
        with stage_timer("present"):
            for event in ranked:
                event.label = event_label(
                    [plus.template for plus in event.messages]
                )
        registry = get_registry()
        if registry.enabled:
            registry.inc(DIGEST_RUNS)
            registry.inc(DIGEST_MESSAGES, len(plus_stream))
            registry.inc(DIGEST_EVENTS, len(ranked))
        return DigestResult(
            events=ranked,
            n_messages=len(plus_stream),
            active_rules=outcome.active_rules,
        )

    def digest_lines(
        self,
        lines: Iterable[str],
        quarantine=None,
        source: str | None = None,
    ) -> DigestResult:
        """Digest raw collector lines, quarantining the unparseable ones.

        The resilient batch entry point: parse failures land in
        ``quarantine`` (a fresh bounded one is created when ``None``)
        instead of killing the run, and everything that parses digests
        normally.  The quarantine used is exposed afterwards as
        ``result.quarantine`` for dumping/reporting.
        """
        from repro.syslog.resilient import Quarantine, resilient_parse

        quarantine = quarantine if quarantine is not None else Quarantine()
        messages = list(resilient_parse(lines, quarantine, source=source))
        result = self.digest(messages)
        result.quarantine = quarantine
        return result
