"""Validation-gated knowledge promotion (DESIGN.md §9).

The paper keeps its weekly rule updates deliberately *conservative*
(§4.1.4) because a bad offline refresh silently degrades every
downstream digest.  :class:`PromotionGate` generalizes that caution to
the whole knowledge base: before a refreshed candidate may serve, a
canary corpus (netsim ground truth or a pinned golden log) is replayed
through **both** the active and the candidate base, and the candidate is
promoted only when every quality delta stays inside configured bounds:

* **template-match rate** — fraction of canary messages matched by a
  learned template rather than the ``<code>/other`` fallback; an
  absolute floor plus a max drop versus active;
* **compression ratio** — events per message (§5.1's headline metric);
  the candidate may not worsen it beyond a factor;
* **event recall** — when the canary carries ground-truth labels:
  fraction of injected conditions surfacing in the top-ranked events;
* **rule churn** — undirected rule-pair adds/deletes versus the active
  store, capped like the paper's weekly add/delete updates.

A rejection records its reasons (and the offending
:class:`~repro.core.refresh.RefreshReport`) in the store journal and the
old version keeps serving; an acceptance commits and activates the
candidate atomically.  An identical candidate (same fingerprint) is
trivially accepted without touching the digest path — the zero-drift
no-op the `make check` gate asserts.
"""

from __future__ import annotations

import json
import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.config import DigestConfig
from repro.core.knowledge import KnowledgeBase
from repro.core.modelstore import KnowledgeStore, VersionInfo
from repro.core.pipeline import SyslogDigest
from repro.core.refresh import RefreshReport, refresh_candidate
from repro.obs import (
    KB_PROMOTIONS,
    KB_QUALITY,
    KB_RULE_CHURN,
    get_registry,
)
from repro.syslog.message import SyslogMessage
from repro.templates.learner import TemplateLearner


@dataclass(frozen=True)
class GateConfig:
    """Bounds a candidate must stay inside to be promoted.

    Every threshold is documented in DESIGN.md §9's gate table.
    """

    # Absolute floor on the candidate's canary template-match rate.
    min_template_match_rate: float = 0.9
    # The candidate may match at most this much worse than active.
    max_match_rate_drop: float = 0.02
    # candidate compression_ratio <= active * this factor (ratio is
    # events/messages — lower is better, so >1 allows some worsening).
    max_compression_worsening: float = 1.25
    # candidate recall >= active recall + this (negative = allowed drop);
    # only enforced when the canary carries ground-truth labels.
    min_event_recall_delta: float = -0.05
    # An incident counts as recalled when one of its messages lands in
    # the top this-fraction of ranked events (§6.2-style coverage).
    recall_top_fraction: float = 0.5
    # §4.1.4-style caps on undirected rule-pair churn per refresh.
    max_rules_added: int = 50
    max_rules_deleted: int = 20

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_template_match_rate <= 1.0:
            raise ValueError("min_template_match_rate must be in [0, 1]")
        if self.max_match_rate_drop < 0:
            raise ValueError("max_match_rate_drop must be >= 0")
        if self.max_compression_worsening < 1.0:
            raise ValueError("max_compression_worsening must be >= 1.0")
        if not 0.0 < self.recall_top_fraction <= 1.0:
            raise ValueError("recall_top_fraction must be in (0, 1]")
        if self.max_rules_added < 0 or self.max_rules_deleted < 0:
            raise ValueError("rule churn caps must be >= 0")


@dataclass(frozen=True)
class CanaryQuality:
    """Quality of one knowledge base on the canary corpus."""

    n_messages: int
    n_events: int
    compression_ratio: float
    template_match_rate: float
    event_recall: float | None  # None when the canary is unlabelled

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "n_messages": self.n_messages,
            "n_events": self.n_events,
            "compression_ratio": self.compression_ratio,
            "template_match_rate": self.template_match_rate,
            "event_recall": self.event_recall,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> CanaryQuality:
        """Reconstruct from :meth:`to_dict` output."""
        return cls(**payload)


def replay_quality(
    kb: KnowledgeBase,
    canary: Sequence[SyslogMessage],
    truth: Sequence[str | None] | None = None,
    config: DigestConfig | None = None,
    recall_top_fraction: float = 0.5,
) -> CanaryQuality:
    """Digest the canary with ``kb`` and score the outcome.

    ``truth`` (optional) is the ground-truth condition id per message in
    **sorted** canary order (the order :func:`sort_messages` produces),
    ``None`` marking noise — :func:`repro.netsim.canary.labeled_canary`
    builds exactly that alignment.
    """
    result = SyslogDigest(kb, config).digest(canary)
    matched = 0
    for event in result.events:
        for plus in event.messages:
            if not plus.template_key.endswith("/other"):
                matched += 1
    match_rate = (
        matched / result.n_messages if result.n_messages else 1.0
    )
    recall: float | None = None
    if truth is not None:
        incidents = {label for label in truth if label is not None}
        if incidents:
            top_k = max(
                1, math.ceil(recall_top_fraction * result.n_events)
            )
            hit: set[str] = set()
            for event in result.events[:top_k]:
                for plus in event.messages:
                    if plus.index < len(truth):
                        label = truth[plus.index]
                        if label is not None:
                            hit.add(label)
            recall = len(hit & incidents) / len(incidents)
        else:
            recall = 1.0
    return CanaryQuality(
        n_messages=result.n_messages,
        n_events=result.n_events,
        compression_ratio=result.compression_ratio,
        template_match_rate=match_rate,
        event_recall=recall,
    )


@dataclass(frozen=True)
class PromotionDecision:
    """Outcome of one gate evaluation — JSON round-trippable."""

    accepted: bool
    trivial: bool  # identical fingerprints: nothing to validate
    reasons: tuple[str, ...]  # rejection reasons; empty when accepted
    active: CanaryQuality
    candidate: CanaryQuality
    rules_added: tuple[tuple[str, str], ...]
    rules_deleted: tuple[tuple[str, str], ...]
    refresh: dict | None = None  # embedded RefreshReport.to_dict()

    def to_dict(self) -> dict:
        """JSON-ready form (journaled on rejection)."""
        return {
            "accepted": self.accepted,
            "trivial": self.trivial,
            "reasons": list(self.reasons),
            "active": self.active.to_dict(),
            "candidate": self.candidate.to_dict(),
            "rules_added": [list(p) for p in self.rules_added],
            "rules_deleted": [list(p) for p in self.rules_deleted],
            "refresh": self.refresh,
        }

    def to_json(self) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=1)

    @classmethod
    def from_dict(cls, payload: dict) -> PromotionDecision:
        """Reconstruct a decision serialized by :meth:`to_dict`."""
        return cls(
            accepted=payload["accepted"],
            trivial=payload["trivial"],
            reasons=tuple(payload["reasons"]),
            active=CanaryQuality.from_dict(payload["active"]),
            candidate=CanaryQuality.from_dict(payload["candidate"]),
            rules_added=tuple(
                (p[0], p[1]) for p in payload["rules_added"]
            ),
            rules_deleted=tuple(
                (p[0], p[1]) for p in payload["rules_deleted"]
            ),
            refresh=payload.get("refresh"),
        )

    @classmethod
    def from_json(cls, text: str) -> PromotionDecision:
        """Reconstruct a decision serialized by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One human line for CLI output."""
        verdict = "ACCEPTED" if self.accepted else "REJECTED"
        extra = " (zero drift)" if self.trivial else ""
        lines = [
            f"{verdict}{extra}: match "
            f"{self.active.template_match_rate:.3f} -> "
            f"{self.candidate.template_match_rate:.3f}, compression "
            f"{self.active.compression_ratio:.2e} -> "
            f"{self.candidate.compression_ratio:.2e}, churn "
            f"+{len(self.rules_added)}/-{len(self.rules_deleted)}"
        ]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


@dataclass
class PromotionGate:
    """Replays the canary through active and candidate, then decides."""

    gate: GateConfig = field(default_factory=GateConfig)
    digest_config: DigestConfig | None = None

    def evaluate(
        self,
        active: KnowledgeBase,
        candidate: KnowledgeBase,
        canary: Sequence[SyslogMessage],
        truth: Sequence[str | None] | None = None,
        refresh_report: RefreshReport | None = None,
    ) -> PromotionDecision:
        """Gate ``candidate`` against ``active`` on the canary corpus."""
        refresh = (
            refresh_report.to_dict() if refresh_report is not None else None
        )
        if active.fingerprint() == candidate.fingerprint():
            quality = replay_quality(
                active,
                canary,
                truth,
                self.digest_config,
                self.gate.recall_top_fraction,
            )
            decision = PromotionDecision(
                accepted=True,
                trivial=True,
                reasons=(),
                active=quality,
                candidate=quality,
                rules_added=(),
                rules_deleted=(),
                refresh=refresh,
            )
            self._publish(decision)
            return decision

        active_q = replay_quality(
            active,
            canary,
            truth,
            self.digest_config,
            self.gate.recall_top_fraction,
        )
        candidate_q = replay_quality(
            candidate,
            canary,
            truth,
            self.digest_config,
            self.gate.recall_top_fraction,
        )
        added, deleted = active.rules.diff_pairs(candidate.rules)

        gate = self.gate
        reasons: list[str] = []
        if candidate_q.template_match_rate < gate.min_template_match_rate:
            reasons.append(
                f"template-match rate {candidate_q.template_match_rate:.3f} "
                f"below floor {gate.min_template_match_rate:.3f}"
            )
        if (
            candidate_q.template_match_rate
            < active_q.template_match_rate - gate.max_match_rate_drop
        ):
            reasons.append(
                f"template-match rate dropped "
                f"{active_q.template_match_rate:.3f} -> "
                f"{candidate_q.template_match_rate:.3f} "
                f"(max drop {gate.max_match_rate_drop:.3f})"
            )
        if (
            candidate_q.compression_ratio
            > active_q.compression_ratio * gate.max_compression_worsening
        ):
            reasons.append(
                f"compression ratio worsened "
                f"{active_q.compression_ratio:.2e} -> "
                f"{candidate_q.compression_ratio:.2e} "
                f"(max factor {gate.max_compression_worsening:g})"
            )
        if (
            candidate_q.event_recall is not None
            and active_q.event_recall is not None
            and candidate_q.event_recall
            < active_q.event_recall + gate.min_event_recall_delta
        ):
            reasons.append(
                f"event recall dropped {active_q.event_recall:.3f} -> "
                f"{candidate_q.event_recall:.3f} "
                f"(min delta {gate.min_event_recall_delta:+.3f})"
            )
        if len(added) > gate.max_rules_added:
            reasons.append(
                f"{len(added)} rule pairs added "
                f"(cap {gate.max_rules_added})"
            )
        if len(deleted) > gate.max_rules_deleted:
            reasons.append(
                f"{len(deleted)} rule pairs deleted "
                f"(cap {gate.max_rules_deleted})"
            )

        decision = PromotionDecision(
            accepted=not reasons,
            trivial=False,
            reasons=tuple(reasons),
            active=active_q,
            candidate=candidate_q,
            rules_added=added,
            rules_deleted=deleted,
            refresh=refresh,
        )
        self._publish(decision)
        return decision

    @staticmethod
    def _publish(decision: PromotionDecision) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.inc(
            KB_PROMOTIONS,
            outcome="accepted" if decision.accepted else "rejected",
        )
        registry.set_gauge(
            KB_RULE_CHURN, len(decision.rules_added), kind="added"
        )
        registry.set_gauge(
            KB_RULE_CHURN, len(decision.rules_deleted), kind="deleted"
        )
        for side, quality in (
            ("active", decision.active),
            ("candidate", decision.candidate),
        ):
            registry.set_gauge(
                KB_QUALITY,
                quality.compression_ratio,
                side=side,
                metric="compression_ratio",
            )
            registry.set_gauge(
                KB_QUALITY,
                quality.template_match_rate,
                side=side,
                metric="template_match_rate",
            )
            if quality.event_recall is not None:
                registry.set_gauge(
                    KB_QUALITY,
                    quality.event_recall,
                    side=side,
                    metric="event_recall",
                )


class KnowledgeLifecycle:
    """Store + gate wired together: the learn→validate→promote loop."""

    def __init__(
        self,
        store: KnowledgeStore,
        gate: PromotionGate | None = None,
    ) -> None:
        self.store = store
        self.gate = gate if gate is not None else PromotionGate()

    def promote_candidate(
        self,
        candidate: KnowledgeBase,
        canary: Sequence[SyslogMessage],
        truth: Sequence[str | None] | None = None,
        refresh_report: RefreshReport | None = None,
        note: str = "",
    ) -> tuple[PromotionDecision, VersionInfo | None]:
        """Gate a pre-built candidate; commit+activate only on accept.

        On rejection the candidate is *not* stored: the journal records
        the reasons (with the refresh summary embedded) and the active
        version keeps serving untouched.
        """
        active, active_info = self.store.load_active()
        decision = self.gate.evaluate(
            active, candidate, canary, truth, refresh_report
        )
        if not decision.accepted:
            self.store.record_rejection(
                decision.reasons,
                version=active_info.version,
                decision=decision.to_dict(),
            )
            return decision, None
        if decision.trivial:
            # Identical knowledge: re-activating would only churn the
            # journal; the active version already is the candidate.
            return decision, active_info
        info = self.store.commit(candidate, note=note, activate=True)
        return decision, info

    def refresh_and_promote(
        self,
        period_messages: Sequence[SyslogMessage],
        canary: Sequence[SyslogMessage],
        configs: Sequence[str] | None = None,
        truth: Sequence[str | None] | None = None,
        learner: TemplateLearner | None = None,
        frequency_half_life_days: float | None = 56.0,
        note: str = "",
    ) -> tuple[PromotionDecision, VersionInfo | None]:
        """One full offline-loop turn: refresh a clone, gate, promote."""
        active, _info = self.store.load_active()
        candidate, report = refresh_candidate(
            active,
            period_messages,
            configs,
            learner=learner,
            frequency_half_life_days=frequency_half_life_days,
        )
        return self.promote_candidate(
            candidate,
            canary,
            truth,
            refresh_report=report,
            note=note or f"refresh over {report.n_messages} messages",
        )
