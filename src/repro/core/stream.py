"""Incremental, message-by-message digesting.

:class:`DigestStream` maintains the grouping state machines online and
finalizes a group once it has been idle longer than every horizon that
could still attach a message to it (``s_max`` for temporal grouping, ``W``
for rules, the cross-router skew).  Batch :meth:`SyslogDigest.digest` and a
push-everything-then-close stream produce identical groupings; a test pins
that equivalence.
"""

from __future__ import annotations

from collections import deque

from repro.core.config import DigestConfig
from repro.core.events import NetworkEvent
from repro.core.knowledge import KnowledgeBase
from repro.core.present import event_label
from repro.core.priority import Prioritizer
from repro.core.syslogplus import Augmenter, SyslogPlus
from repro.locations.spatial import spatially_matched
from repro.mining.temporal import TemporalSplitter
from repro.syslog.message import SyslogMessage
from repro.utils.unionfind import UnionFind


class DigestStream:
    """Online digester: ``push`` messages in time order, collect events."""

    def __init__(
        self,
        kb: KnowledgeBase,
        config: DigestConfig | None = None,
        sweep_interval: float = 300.0,
    ) -> None:
        self._kb = kb
        self._config = config or DigestConfig()
        if self._config.temporal != kb.temporal:
            self._config = self._config.with_temporal(kb.temporal)
        self._augmenter = Augmenter(kb.templates, kb.dictionary)
        self._prioritizer = Prioritizer(kb)
        self._rule_pairs = kb.rule_pairs()

        self._uf: UnionFind = UnionFind()
        self._open: dict[int, SyslogPlus] = {}  # index -> message
        self._last_ts: float | None = None
        self._last_sweep: float | None = None
        self._sweep_interval = sweep_interval

        self._splitters: dict[tuple, TemporalSplitter] = {}
        self._temporal_tail: dict[tuple, int] = {}  # (key, group) -> index
        self._rule_window: dict[str, deque[tuple[float, int]]] = {}
        self._cross_window: deque[tuple[float, int]] = deque()

    @property
    def flush_after(self) -> float:
        """Idle horizon after which a group can no longer grow."""
        return max(
            self._config.idle_flush,
            self._config.temporal.s_max
            + self._config.window
            + self._config.cross_router_window,
        )

    def push(self, message: SyslogMessage) -> list[NetworkEvent]:
        """Process one message; return any events finalized by its arrival."""
        if self._last_ts is not None and message.timestamp < self._last_ts:
            raise ValueError(
                "messages must be pushed in non-decreasing time order"
            )
        self._last_ts = message.timestamp
        plus = self._augmenter.augment(message)
        index = plus.index
        self._uf.add(index)
        self._open[index] = plus

        if self._config.enable_temporal:
            self._temporal_step(plus)
        if self._config.enable_rules:
            self._rule_step(plus)
        if self._config.enable_cross_router:
            self._cross_step(plus)

        if (
            self._last_sweep is None
            or message.timestamp - self._last_sweep >= self._sweep_interval
        ):
            self._last_sweep = message.timestamp
            return self._finalize_idle(message.timestamp)
        return []

    def close(self) -> list[NetworkEvent]:
        """Finalize and return all remaining open groups."""
        events = self._collect_groups(lambda _last: True)
        return events

    # ------------------------------------------------------------- internals

    def _temporal_step(self, plus: SyslogPlus) -> None:
        key = (plus.router, plus.template_key, plus.primary_location.key())
        splitter = self._splitters.get(key)
        if splitter is None:
            splitter = TemporalSplitter(self._config.temporal)
            self._splitters[key] = splitter
        group = splitter.observe(plus.timestamp)
        group_key = (key, group)
        tail = self._temporal_tail.get(group_key)
        if tail is not None:
            self._uf.union(tail, plus.index)
        self._temporal_tail[group_key] = plus.index

    def _rule_step(self, plus: SyslogPlus) -> None:
        window = self._config.window
        queue = self._rule_window.setdefault(plus.router, deque())
        while queue and queue[0][0] < plus.timestamp - window:
            queue.popleft()
        for _ts, j in queue:
            other = self._open.get(j)
            if other is None or other.template_key == plus.template_key:
                continue
            pair = tuple(sorted((other.template_key, plus.template_key)))
            if pair not in self._rule_pairs:
                continue
            if spatially_matched(
                self._kb.dictionary,
                other.primary_location,
                plus.primary_location,
            ):
                self._uf.union(plus.index, j)
        queue.append((plus.timestamp, plus.index))

    def _cross_step(self, plus: SyslogPlus) -> None:
        window = self._config.cross_router_window
        while (
            self._cross_window
            and self._cross_window[0][0] < plus.timestamp - window
        ):
            self._cross_window.popleft()
        for _ts, j in self._cross_window:
            other = self._open.get(j)
            if (
                other is None
                or other.template_key != plus.template_key
                or other.router == plus.router
            ):
                continue
            if self._related(other, plus):
                self._uf.union(plus.index, j)
        self._cross_window.append((plus.timestamp, plus.index))

    def _related(self, a: SyslogPlus, b: SyslogPlus) -> bool:
        dictionary = self._kb.dictionary
        for loc_a in a.local_locations():
            for loc_b in b.local_locations():
                if loc_a.router == loc_b.router:
                    if spatially_matched(dictionary, loc_a, loc_b):
                        return True
                elif dictionary.connected(loc_a, loc_b):
                    return True
        return False

    def _finalize_idle(self, now: float) -> list[NetworkEvent]:
        horizon = now - self.flush_after
        return self._collect_groups(lambda last: last < horizon)

    def _collect_groups(self, should_close) -> list[NetworkEvent]:
        by_root: dict[int, list[SyslogPlus]] = {}
        for index, plus in self._open.items():
            by_root.setdefault(self._uf.find(index), []).append(plus)
        events: list[NetworkEvent] = []
        for members in by_root.values():
            last = max(p.timestamp for p in members)
            if not should_close(last):
                continue
            for plus in members:
                del self._open[plus.index]
            event = NetworkEvent(messages=members)
            event.score = self._prioritizer.score(event)
            event.label = event_label([p.template for p in members])
            events.append(event)
        # Drop temporal tails pointing at finalized messages so the dict
        # does not grow without bound.
        self._temporal_tail = {
            key: idx
            for key, idx in self._temporal_tail.items()
            if idx in self._open
        }
        events.sort(key=lambda e: (e.start_ts, e.indices[:1]))
        return events
