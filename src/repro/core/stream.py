"""Incremental, message-by-message digesting.

:class:`DigestStream` maintains the grouping state machines online and
finalizes a group once it has been idle longer than every horizon that
could still attach a message to it (``s_max`` for temporal grouping, ``W``
for rules, the cross-router skew).  Batch :meth:`SyslogDigest.digest` and a
push-everything-then-close stream produce identical groupings; a test pins
that equivalence.

Grouping state is factored into :class:`ShardState` instances holding the
per-router machinery (temporal splitters, rule windows).  Because the
temporal and rule passes never relate messages on different routers, the
stream can be partitioned by router across several shard states whose
steps are independent — :meth:`DigestStream.push_many` exploits that
through one of three executor lanes behind ``DigestConfig.stream_workers``
(DESIGN.md §12): ``serial`` steps shards inline, ``threads`` runs them on
a thread pool, and ``processes`` keeps one persistent worker process per
shard which owns its :class:`ShardState` across batches, receiving the
knowledge base once at spawn and again only on a hot swap.  The
cross-router window and the union-find stay global in every lane, and
all three lanes group byte-identically (``make check`` gates it).
Long-running streams stay bounded: splitters idle past the flush horizon
are evicted (and lazily reset on next touch, mirroring the batch engine
exactly), and window entries of finalized messages are dropped at every
finalize sweep.

Fault tolerance (DESIGN.md §8): the full grouping state can be captured
with :meth:`DigestStream.snapshot` and rebuilt with
:meth:`DigestStream.restore` (periodic atomic checkpoints via
``DigestConfig.checkpoint_path``/``checkpoint_interval``, see
:mod:`repro.core.checkpoint`) — the process lane's worker states ride
through the same snapshot, so checkpoints restore across lanes.  A shard
whose step raises mid-batch is retried once and then resumed hook-free,
always from *exactly* the first unapplied message: every lane tracks a
per-shard progress cursor plus the edges already produced, so a retry
can never replay messages into partially-advanced splitter or window
state.  ``max_open_messages`` turns on load shedding (whole groups
force-finalized early, oldest first).

Knowledge lifecycle (DESIGN.md §9): a promoted
:class:`~repro.core.knowledge.KnowledgeBase` can be hot-swapped into a
live stream with :meth:`DigestStream.request_swap`.  The swap is
deferred to an *epoch boundary* — the first moment no groups are open —
so no event ever mixes two knowledge versions; ``swap_policy="drain"``
force-finalizes the open groups instead of waiting.  A pending swap is
deliberately **not** checkpointed: a restored stream resumes under the
version it was checkpointed with, and the swap must be re-requested.
"""

from __future__ import annotations

import pickle
import time
import zlib
from collections import deque
from collections.abc import Callable, Iterable
from concurrent.futures import ThreadPoolExecutor
from typing import NamedTuple

from repro.core.config import DigestConfig
from repro.core.events import NetworkEvent
from repro.core.grouping import (
    Edge,
    _locations_touch,
    build_rule_partners,
)
from repro.core.knowledge import KnowledgeBase
from repro.core.present import event_label
from repro.core.priority import Prioritizer
from repro.core.syslogplus import Augmenter, SyslogPlus
from repro.locations.spatial import spatially_matched
from repro.mining.temporal import TemporalSplitter
from repro.obs import (
    CHECKPOINT_AGE,
    SHARD_FALLBACKS,
    SHARD_RETRIES,
    STREAM_EVICTED,
    STREAM_FINALIZED,
    STREAM_KB_SWAP_PENDING,
    STREAM_KB_SWAPS,
    STREAM_OPEN_MESSAGES,
    STREAM_PRUNED,
    STREAM_SHED_EVENTS,
    STREAM_SHED_MESSAGES,
    STREAM_SKEW_CLAMPED,
    STREAM_SKEW_REJECTED,
    STREAM_SPLITTERS,
    STREAM_WATERMARK_LAG,
    STREAM_WINDOW_ENTRIES,
    STREAM_WORKER_PROCS,
    MetricsRegistry,
    get_registry,
)
from repro.syslog.message import SyslogMessage
from repro.utils.unionfind import UnionFind

#: Snapshot format version, bumped whenever :meth:`DigestStream.snapshot`
#: changes shape; :mod:`repro.core.checkpoint` refuses mismatches.
#: v4: temporal splitter keys hold Location objects (not strings) and
#: cross-window entries carry each message's precomputed local locations.
#: v5: rule-window entries hold slim :class:`StepItem` tuples instead of
#: full Syslog+ objects (every executor lane steps on StepItems, so a
#: checkpoint written under one ``stream_workers`` lane restores
#: byte-identically under any other).
#: v6: an attached ingest snapshot carries live-tail committed cursors
#: (ingest snapshot v2), so checkpoints resume byte-offset tailing.
SNAPSHOT_VERSION = 6


class StepItem(NamedTuple):
    """The shard-step view of one admitted message.

    Exactly the fields :meth:`ShardState.step` reads, and nothing else.
    The process lane ships one of these over a pipe per message, so the
    payload stays five plain fields instead of a full Syslog+ (whose
    template and location baggage the shard passes never touch).  All
    lanes step on StepItems, so shard state — including what a
    checkpoint captures — is identical whichever lane produced it.
    """

    index: int
    timestamp: float
    router: str
    template_key: str
    primary_location: object


def _step_item(plus: SyslogPlus) -> StepItem:
    return StepItem(
        plus.index,
        plus.timestamp,
        plus.router,
        plus.template_key,
        plus.primary_location,
    )

#: Every key :meth:`DigestStream.health` reports, documented in one
#: place (DESIGN.md §8 renders this table; tests pin the key set).
HEALTH_KEYS: dict[str, str] = {
    "open_messages": "messages admitted but not yet finalized",
    "splitters": "live temporal splitters across all shards",
    "window_entries": "live rule + cross-router window entries",
    "watermark_lag_seconds": "stream clock minus oldest open timestamp",
    "evicted_splitters": "idle splitters dropped by sweeps (cumulative)",
    "pruned_entries": "window/tail entries dropped at finalize (cumulative)",
    "skew_clamped": "late-but-tolerated timestamps clamped (cumulative)",
    "skew_rejected": "pushes refused beyond skew tolerance (cumulative)",
    "finalized_events": "events emitted so far (cumulative)",
    "shed_events": "groups force-finalized by load shedding (cumulative)",
    "shed_messages": "messages inside shed groups (cumulative)",
    "quarantine_depth": "records held by the attached quarantine (0 if none)",
    "quarantine_total": "inputs ever quarantined (0 if none attached)",
    "checkpoint_age_seconds": (
        "monotonic seconds since last checkpoint (-1 if never)"
    ),
    "kb_swaps": "completed epoch-boundary knowledge swaps (cumulative)",
    "kb_swap_pending": "1 while a requested swap awaits its epoch boundary",
}


class ShardState:
    """Per-shard grouping state: temporal splitters plus rule windows.

    One shard owns a subset of the routers; all its structures are keyed
    by router (or by a router-containing key), so two shards never touch
    the same entries and their steps can run concurrently.  Steps return
    edges over global message indices instead of mutating the shared
    union-find, which keeps them side-effect free outside the shard.
    """

    def __init__(
        self,
        shard_id: int,
        kb: KnowledgeBase,
        config: DigestConfig,
        partners: dict[str, tuple[str, ...]],
    ) -> None:
        self._shard_id = shard_id
        self._kb = kb
        self._config = config
        self._partners = partners
        self._splitters: dict[tuple, TemporalSplitter] = {}
        # Splitter instance serials namespace temporal group identities,
        # so an evicted-and-recreated splitter can never union with the
        # groups of its predecessor.  (shard_id, serial) is globally
        # unique across shards.
        self._serial_of: dict[tuple, int] = {}
        self._n_created = 0
        self._temporal_tail: dict[tuple, int] = {}
        # router -> template_key -> deque of (arrival ts, step item)
        self._rule_window: dict[
            str, dict[str, deque[tuple[float, StepItem]]]
        ] = {}

    # ----------------------------------------------------------------- steps

    def step(self, plus: StepItem, now: float) -> list[Edge]:
        """Run the shard-local passes for one message; return new edges."""
        edges: list[Edge] = []
        if self._config.enable_temporal:
            edge = self._temporal_step(plus, now)
            if edge is not None:
                edges.append(edge)
        if self._config.enable_rules:
            edges.extend(self._rule_step(plus, now))
        return edges

    def _temporal_step(self, plus: StepItem, now: float) -> Edge | None:
        key = (plus.router, plus.template_key, plus.primary_location)
        splitter = self._splitters.get(key)
        if (
            splitter is not None
            and now - splitter.last_ts > self._config.flush_after
        ):
            # Lazy rhythm reset past the flush horizon — identical to the
            # batch engine's rule, so groupings stay equivalent whether or
            # not the sweep already evicted the idle splitter.
            splitter = None
        if splitter is None:
            splitter = TemporalSplitter(
                self._config.temporal,
                skew_tolerance=self._config.skew_tolerance,
            )
            self._splitters[key] = splitter
            self._serial_of[key] = self._n_created
            self._n_created += 1
        group = splitter.observe(plus.timestamp)
        group_key = (self._serial_of[key], group)
        tail = self._temporal_tail.get(group_key)
        self._temporal_tail[group_key] = plus.index
        if tail is not None:
            return (tail, plus.index)
        return None

    def _rule_step(self, plus: StepItem, now: float) -> list[Edge]:
        edges: list[Edge] = []
        window = self._config.window
        by_template = self._rule_window.setdefault(plus.router, {})
        horizon = now - window
        for partner in self._partners.get(plus.template_key, ()):
            queue = by_template.get(partner)
            if not queue:
                continue
            while queue and queue[0][0] < horizon:
                queue.popleft()
            for _ts, other in queue:
                if spatially_matched(
                    self._kb.dictionary,
                    other.primary_location,
                    plus.primary_location,
                ):
                    edges.append((other.index, plus.index))
        own = by_template.setdefault(plus.template_key, deque())
        while own and own[0][0] < horizon:
            own.popleft()
        own.append((now, plus))
        return edges

    # ------------------------------------------------------------ maintenance

    def evict_idle(self, horizon: float) -> int:
        """Drop splitters whose key has been quiet past ``horizon``.

        Safe because the lazy reset in :meth:`_temporal_step` would
        recreate them from scratch on next touch anyway.  Returns how
        many splitters were evicted (stream health accounting).
        """
        idle = [
            key
            for key, splitter in self._splitters.items()
            if splitter.last_ts < horizon
        ]
        for key in idle:
            del self._splitters[key]
            del self._serial_of[key]
        return len(idle)

    def prune(self, open_indices: set[int]) -> int:
        """Drop window/tail entries that reference finalized messages.

        Returns the number of entries dropped (stream health accounting).
        """
        dropped = 0
        kept_tails = {
            key: idx
            for key, idx in self._temporal_tail.items()
            if idx in open_indices
        }
        dropped += len(self._temporal_tail) - len(kept_tails)
        self._temporal_tail = kept_tails
        for router in list(self._rule_window):
            by_template = self._rule_window[router]
            for template in list(by_template):
                kept = deque(
                    item
                    for item in by_template[template]
                    if item[1].index in open_indices
                )
                dropped += len(by_template[template]) - len(kept)
                if kept:
                    by_template[template] = kept
                else:
                    del by_template[template]
            if not by_template:
                del self._rule_window[router]
        return dropped

    def adopt(
        self,
        kb: KnowledgeBase,
        config: DigestConfig,
        partners: dict[str, tuple[str, ...]],
        reset_splitters: bool,
    ) -> None:
        """Switch the shard to a newly promoted knowledge base.

        Called only at an epoch boundary (no open groups), when the rule
        and temporal-tail windows are already empty.  Splitters carry
        learned per-signature rhythm that stays valid across a refresh,
        so they are kept — unless the temporal parameters themselves
        changed, in which case they are dropped and will be lazily
        rebuilt.  ``_n_created`` is *never* reset: group serials must
        stay unique across the swap or a post-swap group could union
        with a pre-swap one.
        """
        self._kb = kb
        self._config = config
        self._partners = partners
        if reset_splitters:
            self._splitters = {}
            self._serial_of = {}

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """Plain-data capture of the shard's grouping state.

        Splitters are decomposed into their scalar fields rather than
        pickled as live objects, so :meth:`restore` always rebuilds
        fresh instances — an evicted-then-restored key can never
        resurrect stale EWMA state that the eviction already discarded.
        """
        return {
            "splitters": {
                key: {
                    "last_ts": splitter._last_ts,
                    "group": splitter._group,
                    "ewma_prediction": splitter._ewma.prediction,
                    "ewma_count": splitter._ewma.count,
                }
                for key, splitter in self._splitters.items()
            },
            "serial_of": dict(self._serial_of),
            "n_created": self._n_created,
            "temporal_tail": dict(self._temporal_tail),
            "rule_window": {
                router: {
                    template: list(queue)
                    for template, queue in by_template.items()
                }
                for router, by_template in self._rule_window.items()
            },
        }

    def restore(self, state: dict) -> None:
        """Rebuild the shard from a :meth:`snapshot` capture."""
        self._splitters = {}
        for key, fields in state["splitters"].items():
            splitter = TemporalSplitter(
                self._config.temporal,
                skew_tolerance=self._config.skew_tolerance,
            )
            splitter._last_ts = fields["last_ts"]
            splitter._group = fields["group"]
            splitter._ewma._prediction = fields["ewma_prediction"]
            splitter._ewma._count = fields["ewma_count"]
            self._splitters[key] = splitter
        self._serial_of = dict(state["serial_of"])
        self._n_created = state["n_created"]
        self._temporal_tail = dict(state["temporal_tail"])
        self._rule_window = {
            router: {
                template: deque(entries)
                for template, entries in by_template.items()
            }
            for router, by_template in state["rule_window"].items()
        }

    @property
    def n_splitters(self) -> int:
        """Live temporal splitters (exposed for leak tests)."""
        return len(self._splitters)

    @property
    def n_window_entries(self) -> int:
        """Live rule-window entries (exposed for leak tests)."""
        return sum(
            len(queue)
            for by_template in self._rule_window.values()
            for queue in by_template.values()
        )


class _LocalShards:
    """Serial and thread executor lanes: shard states live in-process.

    Both in-process lanes share one retry ladder with the process lane:
    attempt 0 runs with the fault hooks armed, a failed shard gets one
    retry (attempt 1, hooks still armed, counted as a shard retry), and
    a shard that fails its retry is resumed hook-free (counted as a
    fallback).  Every attempt resumes at the shard's progress cursor —
    the first message whose step did not fully apply — with the edges of
    the already-applied prefix kept, so a retry never replays a message
    into partially-advanced splitter or window state (the shard-retry
    corruption this ladder replaced).
    """

    #: In-process lanes have no worker processes (metrics gauge).
    n_worker_processes = 0

    def __init__(
        self,
        lane: str,
        states: list[ShardState],
        fault_hook: Callable[[int, int], None] | None,
        step_hook: Callable[[int, int, int], None] | None,
    ) -> None:
        self._lane = lane
        self._states = states
        self._fault_hook = fault_hook
        self._step_hook = step_hook

    def step_one(
        self, shard_id: int, item: StepItem, now: float
    ) -> list[Edge]:
        return self._states[shard_id].step(item, now)

    def step_many(
        self, per_shard: dict[int, list[tuple[StepItem, float]]]
    ) -> dict[int, list[Edge]]:
        shard_order = sorted(per_shard)
        progress = dict.fromkeys(shard_order, 0)
        edges: dict[int, list[Edge]] = {sid: [] for sid in shard_order}
        registry = get_registry()

        def run(shard_id: int, attempt: int, use_hooks: bool = True):
            state = self._states[shard_id]
            items = per_shard[shard_id]
            out = edges[shard_id]
            if use_hooks and self._fault_hook is not None:
                self._fault_hook(shard_id, attempt)
            i = progress[shard_id]
            while i < len(items):
                if use_hooks and self._step_hook is not None:
                    self._step_hook(shard_id, attempt, i)
                item, now = items[i]
                stepped = state.step(item, now)
                if stepped:
                    out.extend(stepped)
                # Only a fully-applied step advances the cursor, so the
                # next attempt resumes at the failed message.
                i += 1
                progress[shard_id] = i

        retry_failed: list[int] = []
        if self._lane == "threads" and len(shard_order) > 1:
            with ThreadPoolExecutor(max_workers=len(shard_order)) as pool:
                futures = {
                    shard_id: pool.submit(run, shard_id, 0)
                    for shard_id in shard_order
                }
                failed: list[int] = []
                for shard_id, future in futures.items():
                    try:
                        future.result()
                    except Exception:
                        failed.append(shard_id)
                for shard_id in failed:
                    if registry.enabled:
                        registry.inc(SHARD_RETRIES, engine="stream")
                    try:
                        pool.submit(run, shard_id, 1).result()
                    except Exception:
                        retry_failed.append(shard_id)
        else:
            for shard_id in shard_order:
                try:
                    run(shard_id, 0)
                except Exception:
                    if registry.enabled:
                        registry.inc(SHARD_RETRIES, engine="stream")
                    try:
                        run(shard_id, 1)
                    except Exception:
                        retry_failed.append(shard_id)
        for shard_id in retry_failed:
            # The final resume bypasses the fault hooks — injected
            # worker faults must never kill the digest — but a genuine
            # repeated step failure propagates.
            if registry.enabled:
                registry.inc(SHARD_FALLBACKS, engine="stream")
            run(shard_id, 2, use_hooks=False)
        return edges

    def evict_idle(self, horizon: float) -> int:
        return sum(state.evict_idle(horizon) for state in self._states)

    def prune(self, open_indices: set[int]) -> int:
        return sum(state.prune(open_indices) for state in self._states)

    def adopt(self, kb, config, partners, reset_splitters: bool) -> None:
        for state in self._states:
            state.adopt(kb, config, partners, reset_splitters)

    def snapshots(self) -> list[dict]:
        return [state.snapshot() for state in self._states]

    def restore_shards(self, shards: list[dict]) -> None:
        for state, captured in zip(self._states, shards):
            state.restore(captured)

    def counts(self) -> tuple[int, int]:
        return (
            sum(state.n_splitters for state in self._states),
            sum(state.n_window_entries for state in self._states),
        )

    def shutdown(self) -> None:
        pass


class _ProcessShards:
    """Process executor lane: persistent workers own the shard states.

    One :class:`~repro.core.parallel.StreamWorkerPool` worker per shard,
    spawned once when the stream is constructed.  The knowledge base and
    the (picklable) fault hooks cross the process boundary exactly once
    here — and again only when an epoch-boundary hot swap broadcasts the
    newly adopted base — so steady-state batches ship nothing but slim
    step items out and plain edge lists back.  The retry ladder matches
    :class:`_LocalShards`; the worker reports how many messages of an
    attempt fully applied, and the parent re-sends only the unapplied
    suffix.
    """

    def __init__(
        self,
        n_shards: int,
        kb: KnowledgeBase,
        config: DigestConfig,
        partners: dict[str, tuple[str, ...]],
        fault_hook,
        step_hook,
    ) -> None:
        from repro.core.parallel import StreamWorkerPool

        self._n_shards = n_shards
        self._pool = StreamWorkerPool(n_shards)
        self._pool.broadcast(
            ("init", kb, config, partners, fault_hook, step_hook)
        )

    @property
    def n_worker_processes(self) -> int:
        return self._pool.n_workers

    def step_one(
        self, shard_id: int, item: StepItem, now: float
    ) -> list[Edge]:
        reply = self._pool.call_all(
            {shard_id: ("steps", [(item, now)], 0, False, 0)}
        )[shard_id]
        if reply[0] == "fault":
            raise RuntimeError(
                f"stream worker {shard_id} step failed: {reply[1]}"
            )
        return reply[1]

    def step_many(
        self, per_shard: dict[int, list[tuple[StepItem, float]]]
    ) -> dict[int, list[Edge]]:
        registry = get_registry()
        shard_order = sorted(per_shard)
        progress = dict.fromkeys(shard_order, 0)
        edges: dict[int, list[Edge]] = {sid: [] for sid in shard_order}
        errors: dict[int, str] = {}
        pending = list(shard_order)
        for attempt, use_hooks in ((0, True), (1, True), (2, False)):
            if not pending:
                break
            if registry.enabled and attempt == 1:
                registry.inc(
                    SHARD_RETRIES, len(pending), engine="stream"
                )
            if registry.enabled and attempt == 2:
                registry.inc(
                    SHARD_FALLBACKS, len(pending), engine="stream"
                )
            replies = self._pool.call_all(
                {
                    shard_id: (
                        "steps",
                        per_shard[shard_id][progress[shard_id]:],
                        attempt,
                        use_hooks,
                        progress[shard_id],
                    )
                    for shard_id in pending
                }
            )
            still_failed: list[int] = []
            for shard_id in pending:
                reply = replies[shard_id]
                if reply[0] == "ok":
                    edges[shard_id].extend(reply[1])
                else:  # ("fault", repr, done, edges-so-far)
                    _, err, done, partial = reply
                    progress[shard_id] += done
                    edges[shard_id].extend(partial)
                    errors[shard_id] = err
                    still_failed.append(shard_id)
            pending = still_failed
        if pending:
            raise RuntimeError(
                "stream shard steps failed even after the hook-free "
                "resume: "
                + "; ".join(
                    f"shard {sid}: {errors[sid]}" for sid in pending
                )
            )
        return edges

    def evict_idle(self, horizon: float) -> int:
        replies = self._pool.broadcast(("evict", horizon))
        return sum(reply[1] for reply in replies.values())

    def prune(self, open_indices: set[int]) -> int:
        replies = self._pool.broadcast(("prune", open_indices))
        return sum(reply[1] for reply in replies.values())

    def adopt(self, kb, config, partners, reset_splitters: bool) -> None:
        self._pool.broadcast(
            ("adopt", kb, config, partners, reset_splitters)
        )

    def snapshots(self) -> list[dict]:
        replies = self._pool.broadcast(("snapshot",))
        return [replies[shard_id][1] for shard_id in range(self._n_shards)]

    def restore_shards(self, shards: list[dict]) -> None:
        self._pool.call_all(
            {
                shard_id: ("restore", captured)
                for shard_id, captured in enumerate(shards)
            }
        )

    def counts(self) -> tuple[int, int]:
        replies = self._pool.broadcast(("counts",))
        return (
            sum(reply[1][0] for reply in replies.values()),
            sum(reply[1][1] for reply in replies.values()),
        )

    def shutdown(self) -> None:
        self._pool.shutdown()


class DigestStream:
    """Online digester: ``push`` messages in time order, collect events.

    With ``config.n_workers > 1`` the per-router grouping state is
    partitioned across that many :class:`ShardState` instances and
    :meth:`push_many` runs their steps on the executor lane selected by
    ``config.stream_workers`` — inline, on a thread pool, or on
    persistent per-shard worker processes; :meth:`push` stays strictly
    sequential either way, and the grouping is identical for any worker
    count and any lane.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        config: DigestConfig | None = None,
        sweep_interval: float = 300.0,
        fault_hook: Callable[[int, int], None] | None = None,
        kb_version: int | str | None = None,
        step_fault_hook: Callable[[int, int, int], None] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._kb = kb
        self._config = config or DigestConfig()
        if self._config.temporal != kb.temporal:
            self._config = self._config.with_temporal(kb.temporal)
        self._augmenter = Augmenter(kb.templates, kb.dictionary)
        self._prioritizer = Prioritizer(kb)
        self._partners = build_rule_partners(kb.rule_pairs())

        self._uf: UnionFind = UnionFind()
        self._open: dict[int, SyslogPlus] = {}  # index -> message
        self._last_ts: float | None = None
        self._last_sweep: float | None = None
        self._sweep_interval = sweep_interval
        # Fault-injection seams for the shard step lanes.  fault_hook is
        # called as hook(shard_id, attempt) at the *start* of each shard
        # attempt, before any state is touched; step_fault_hook as
        # hook(shard_id, attempt, message_position) before *each*
        # message's step, so an injected mid-list failure lands at a
        # chosen message with the prefix cleanly applied.  Attempt 0 is
        # the first run, 1 the retry; the final hook-free resume
        # bypasses both.  The process lane ships the hooks to its
        # workers at spawn, so they must be picklable there (see
        # repro.netsim.faults.StreamWorkerFault / MidStepFault).
        self._fault_hook = fault_hook
        self._step_fault_hook = step_fault_hook

        # Health accounting: plain ints on the hot path, flushed to the
        # metrics registry only at sweep granularity.
        self._n_evicted = 0
        self._n_pruned = 0
        self._n_skew_clamped = 0
        self._n_skew_rejected = 0
        self._n_finalized_events = 0
        self._n_shed_events = 0
        self._n_shed_messages = 0
        self._emitted: dict[str, float] = {}
        self._quarantine = None  # attached via attach_quarantine()
        self._ingest = None  # attached via attach_ingest()
        self._restored_ingest: dict | None = None
        # Checkpoint bookkeeping runs on two clocks.  The *interval*
        # decision uses the stream clock (message time), so checkpoint
        # cadence is deterministic and replayable.  The *age* health key
        # uses an injected monotonic clock: message timestamps jump
        # backwards across supervisor restarts and NTP steps, so wiring
        # the age to them reported negative or absurd values.  The clock
        # is injectable so supervisors and tests can pin it.
        self._clock = clock if clock is not None else time.monotonic
        self._last_checkpoint_stream_ts: float | None = None
        self._last_checkpoint_mono: float | None = None

        # Knowledge lifecycle: the version id this stream serves (opaque
        # to the stream; the model store's integer when store-backed) and
        # the not-yet-adopted base of a deferred hot swap.
        self._kb_version = kb_version
        self._pending_kb: KnowledgeBase | None = None
        self._pending_kb_version: int | str | None = None
        self._n_swaps = 0

        n_shards = self._config.n_workers if self._config.shard_by_router else 1
        self._n_shards = max(1, n_shards)
        self._exec = self._make_executor(kb)
        # router -> shard index, so the per-message hot path hashes the
        # router name once instead of crc32-ing it on every push.  Router
        # names are external input; clear-on-full bounds the table.
        self._router_shard: dict[str, int] = {}
        # template_key -> deque of (arrival ts, message, its local
        # locations); global because the cross-router pass relates
        # messages across shards.
        self._cross_window: dict[
            str, deque[tuple[float, SyslogPlus, tuple]]
        ] = {}

    @property
    def flush_after(self) -> float:
        """Idle horizon after which a group can no longer grow."""
        return self._config.flush_after

    @property
    def stream_lane(self) -> str:
        """The executor lane actually running (may differ from the
        configured one: the process lane degrades to ``threads`` where
        worker processes cannot be spawned, and to ``serial`` with a
        single shard — the grouping is identical either way)."""
        return self._stream_lane

    def _make_executor(self, kb: KnowledgeBase):
        lane = self._config.stream_workers
        if lane == "processes" and self._n_shards > 1:
            try:
                executor = _ProcessShards(
                    self._n_shards,
                    kb,
                    self._config,
                    self._partners,
                    self._fault_hook,
                    self._step_fault_hook,
                )
                self._stream_lane = "processes"
                return executor
            except (
                OSError,
                ValueError,
                RuntimeError,
                TypeError,
                AttributeError,
                pickle.PicklingError,
            ):
                # No process support (sandboxed platform) or unpicklable
                # knowledge/hooks: degrade to the thread lane — same
                # grouping, just without the extra cores.
                lane = "threads"
        elif lane == "processes":
            lane = "serial"  # one shard: nothing to fan out
        self._stream_lane = lane
        states = [
            ShardState(shard, kb, self._config, self._partners)
            for shard in range(self._n_shards)
        ]
        return _LocalShards(
            lane, states, self._fault_hook, self._step_fault_hook
        )

    def shutdown_workers(self) -> None:
        """Stop the process lane's workers (no-op for in-process lanes).

        Daemon workers die with the interpreter anyway; this reclaims
        them promptly.  The stream must not be pushed to, swept, or
        snapshotted afterwards.
        """
        self._exec.shutdown()

    def set_shedding(
        self, max_open_messages: int, shed_policy: str = "oldest"
    ) -> list[NetworkEvent]:
        """Re-bound load shedding on a live stream (degraded mode).

        Shedding knobs are runtime memory bounds, not grouping
        parameters — tightening them mid-flight never invalidates open
        state, it only force-finalizes groups sooner from here on.  The
        serve supervisor uses this to restart a crash-looping tenant in
        shed mode from its unmodified checkpoint (a checkpoint restores
        only under a *matching* grouping config).  The new bound rides
        into subsequent snapshots, so a degraded tenant's checkpoints
        restore degraded.

        Sheds immediately when the restored state already exceeds the
        new bound, returning the force-finalized events — a degraded
        restart cannot wait for the next push, because the matching
        admission control refuses pushes until open count falls below
        the bound.
        """
        self._config = self._config.with_shedding(
            max_open_messages, shed_policy
        )
        return self._shed()

    def _shard_index(self, router: str) -> int:
        if self._n_shards == 1:
            return 0
        shard_id = self._router_shard.get(router)
        if shard_id is None:
            if len(self._router_shard) >= 1 << 16:
                self._router_shard.clear()
            shard_id = zlib.crc32(router.encode()) % self._n_shards
            self._router_shard[router] = shard_id
        return shard_id

    def _admit(self, message: SyslogMessage) -> tuple[SyslogPlus, float]:
        """Validate ordering/skew, augment, register; return (plus, now)."""
        tolerance = self._config.skew_tolerance
        if (
            self._last_ts is not None
            and message.timestamp < self._last_ts - tolerance
        ):
            self._n_skew_rejected += 1
            raise ValueError(
                "messages must be pushed in non-decreasing time order "
                f"(got {message.timestamp}, stream clock {self._last_ts}, "
                f"skew tolerance {tolerance}s)"
            )
        if self._last_ts is not None and message.timestamp < self._last_ts:
            self._n_skew_clamped += 1
        # The stream clock never runs backwards; a slightly-late message
        # is processed as if it arrived at the current clock.
        now = (
            message.timestamp
            if self._last_ts is None
            else max(message.timestamp, self._last_ts)
        )
        self._last_ts = now
        plus = self._augmenter.augment(message)
        self._uf.add(plus.index)
        self._open[plus.index] = plus
        return plus, now

    def push(self, message: SyslogMessage) -> list[NetworkEvent]:
        """Process one message; return any events finalized by its arrival."""
        swapped: list[NetworkEvent] = []
        if self._pending_kb is not None:
            # Before admitting, see whether the gap up to this message
            # put every open group past its idle horizon — if so this
            # instant is an epoch boundary and the pending base adopts.
            swapped = self._swap_boundary(message.timestamp)
        plus, now = self._admit(message)
        shard_id = self._shard_index(plus.router)
        for a, b in self._exec.step_one(shard_id, _step_item(plus), now):
            self._uf.union(a, b)
        if self._config.enable_cross_router:
            for a, b in self._cross_step(plus, now):
                self._uf.union(a, b)
        events = self._maybe_sweep(now)
        shed = self._shed()
        out = events + shed if shed else events
        return swapped + out if swapped else out

    def push_many(
        self, messages: Iterable[SyslogMessage]
    ) -> list[NetworkEvent]:
        """Push a time-ordered batch, sharding the per-router passes.

        Shard steps run concurrently on the configured executor lane
        (one unit of work per shard, each processing its messages in
        arrival order); the cross-router pass and the union-find merge
        then run once over the whole batch.  Produces the same grouping
        as message-by-message :meth:`push`.

        While a knowledge hot swap is pending, messages are processed
        one at a time through :meth:`push` until the swap adopts:
        :meth:`push` re-checks the epoch boundary before every message,
        so adoption lands at the same intra-batch instant it would under
        per-message pushing.  (Checking only at the batch head deferred
        a mid-batch boundary to the next batch — a divergence between
        ``push`` and ``push_many`` that a hot-swap test now pins.)
        Pending swaps are transient, so the per-message prefix ends at
        the adoption boundary and the batch lane resumes.
        """
        incoming = list(messages)
        out: list[NetworkEvent] = []
        start = 0
        while start < len(incoming) and self._pending_kb is not None:
            out.extend(self.push(incoming[start]))
            start += 1
        if start == len(incoming):
            return out

        batch = [self._admit(message) for message in incoming[start:]]
        per_shard: dict[int, list[tuple[StepItem, float]]] = {}
        for plus, now in batch:
            per_shard.setdefault(
                self._shard_index(plus.router), []
            ).append((_step_item(plus), now))

        edge_lists = self._exec.step_many(per_shard)
        for shard_id in sorted(edge_lists):
            for a, b in edge_lists[shard_id]:
                self._uf.union(a, b)

        if self._config.enable_cross_router:
            for plus, now in batch:
                for a, b in self._cross_step(plus, now):
                    self._uf.union(a, b)
        events = self._maybe_sweep(batch[-1][1])
        shed = self._shed()
        out.extend(events)
        out.extend(shed)
        return out

    def close(self) -> list[NetworkEvent]:
        """Finalize and return all remaining open groups."""
        events = self._collect_groups(lambda _last: True)
        if self._pending_kb is not None:
            self._adopt()  # everything finalized: trivially a boundary
        self.record_metrics()
        return events

    # ------------------------------------------------------ knowledge swap

    @property
    def kb_version(self) -> int | str | None:
        """Version id of the currently served knowledge base."""
        return self._kb_version

    @property
    def swap_pending(self) -> bool:
        """True while a requested swap awaits its epoch boundary."""
        return self._pending_kb is not None

    @property
    def n_swaps(self) -> int:
        """Completed knowledge swaps over this stream's lifetime."""
        return self._n_swaps

    def request_swap(
        self,
        kb: KnowledgeBase,
        version: int | str | None = None,
    ) -> list[NetworkEvent]:
        """Hot-swap to a newly promoted base without mixing versions.

        Under the default ``swap_policy="defer"`` the swap happens at
        the next *epoch boundary* — the first instant no groups are open
        (checked before each subsequent push, so a quiet gap longer than
        the flush horizon becomes the boundary).  Until then the stream
        keeps serving its current base; a second request simply replaces
        the pending candidate.  Under ``swap_policy="drain"`` all open
        groups are force-finalized immediately instead.

        Returns whatever events the boundary search finalized (empty
        when the swap stays pending).
        """
        self._pending_kb = kb
        self._pending_kb_version = version
        if self._config.swap_policy == "drain":
            return self.swap_now()
        if self._last_ts is None:
            self._adopt()  # nothing admitted yet: trivially a boundary
            return []
        return self._swap_boundary(self._last_ts)

    def swap_now(self) -> list[NetworkEvent]:
        """Drain: force-finalize every open group, then adopt.

        Changes output relative to a never-swapped run (groups close
        before their idle horizon) — that is the price of an immediate
        swap; :meth:`request_swap` with the default deferred policy does
        not pay it.
        """
        if self._pending_kb is None:
            raise ValueError("no swap pending; call request_swap() first")
        events = self._collect_groups(lambda _last: True)
        self._adopt()
        self.record_metrics()
        return events

    def _swap_boundary(self, upcoming_ts: float) -> list[NetworkEvent]:
        """Finalize idle groups; adopt the pending base if none remain."""
        now = (
            upcoming_ts
            if self._last_ts is None
            else max(upcoming_ts, self._last_ts)
        )
        events = self._finalize_idle(now)
        if not self._open:
            self._adopt()
        return events

    def _adopt(self) -> None:
        """Switch every component over to the pending knowledge base.

        Only called when no groups are open, which also means the rule,
        cross-router, and temporal-tail windows are empty — no event can
        mix messages augmented under different versions.  The augmenter
        counter is preserved so global message indices stay unique, and
        shard splitters keep their learned rhythm unless the temporal
        parameters changed.
        """
        kb = self._pending_kb
        assert kb is not None
        reset_splitters = kb.temporal != self._kb.temporal
        self._pending_kb = None
        self._kb = kb
        self._kb_version = self._pending_kb_version
        self._pending_kb_version = None
        if self._config.temporal != kb.temporal:
            self._config = self._config.with_temporal(kb.temporal)
        counter = self._augmenter._counter
        self._augmenter = Augmenter(kb.templates, kb.dictionary)
        self._augmenter._counter = counter
        self._prioritizer = Prioritizer(kb)
        self._partners = build_rule_partners(kb.rule_pairs())
        # The one re-broadcast of the stream's lifetime: the process
        # lane ships the adopted base to every worker here; in-process
        # lanes just re-point their shard states.
        self._exec.adopt(kb, self._config, self._partners, reset_splitters)
        self._n_swaps += 1

    # ------------------------------------------------------- snapshot/restore

    def snapshot(self) -> dict:
        """Capture the complete streaming state as a picklable dict.

        Everything the grouping depends on rides along: the stream
        clock, per-shard splitters and windows, the cross-router window,
        open messages, the union-find partition over them, the augmenter
        index counter, and the health counters.  A fresh stream restored
        from this snapshot continues *byte-identically* to one that was
        never interrupted (a test pins that).

        The served ``kb_version`` rides along so a store-backed resume
        can reload exactly the base this state was grouped under.  A
        *pending* swap does not: the knowledge lifecycle is the model
        store's domain, so a restored stream resumes under the
        checkpointed version and the swap must be re-requested.

        Only the partition over open indices is kept: once a group
        finalizes, every window/tail entry referencing it has been
        pruned, so finalized indices can never union with open ones
        again.
        """
        components: list[list[int]] = []
        for members in self._open_groups().values():
            components.append([plus.index for plus in members])
        return {
            "version": SNAPSHOT_VERSION,
            "config": self._config,
            "kb_version": self._kb_version,
            "n_shards": self._n_shards,
            "last_ts": self._last_ts,
            "last_sweep": self._last_sweep,
            "sweep_interval": self._sweep_interval,
            "n_admitted": self._augmenter._counter,
            "open": dict(self._open),
            "components": components,
            "shards": self._exec.snapshots(),
            "cross_window": {
                template: list(queue)
                for template, queue in self._cross_window.items()
            },
            "counters": {
                "evicted": self._n_evicted,
                "pruned": self._n_pruned,
                "skew_clamped": self._n_skew_clamped,
                "skew_rejected": self._n_skew_rejected,
                "finalized": self._n_finalized_events,
                "shed_events": self._n_shed_events,
                "shed_messages": self._n_shed_messages,
                "swaps": self._n_swaps,
            },
            "emitted": dict(self._emitted),
            # An attached ingest front-end rides along so one checkpoint
            # captures the stream *and* its reorder buffer consistently.
            "ingest": (
                self._ingest.snapshot() if self._ingest is not None else None
            ),
        }

    def restore(self, state: dict) -> None:
        """Rebuild a freshly constructed stream from a snapshot.

        The stream must not have been pushed to yet, and its config must
        match the snapshot's — grouping state under a different window,
        flush horizon, or shard count is not transplantable.
        """
        if state.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {state.get('version')!r} != "
                f"supported {SNAPSHOT_VERSION}"
            )
        if self._last_ts is not None or self._open:
            raise ValueError(
                "restore() requires a freshly constructed stream"
            )
        # The executor lane is an execution detail — all lanes group
        # byte-identically — so a checkpoint restores across lanes;
        # every other knob must match.
        snap_config = state["config"]
        if snap_config.with_stream_workers(
            self._config.stream_workers
        ) != self._config:
            raise ValueError(
                "snapshot config does not match this stream's config; "
                "construct the stream with the checkpointed config"
            )
        if state["n_shards"] != self._n_shards:
            raise ValueError(
                f"snapshot has {state['n_shards']} shards, "
                f"stream has {self._n_shards}"
            )
        self._last_ts = state["last_ts"]
        self._last_sweep = state["last_sweep"]
        self._sweep_interval = state["sweep_interval"]
        self._augmenter._counter = state["n_admitted"]
        self._open = dict(state["open"])
        self._uf = UnionFind()
        for component in state["components"]:
            first = component[0]
            self._uf.add(first)
            for index in component[1:]:
                self._uf.union(first, index)
        self._exec.restore_shards(state["shards"])
        self._cross_window = {
            template: deque(entries)
            for template, entries in state["cross_window"].items()
        }
        counters = state["counters"]
        self._n_evicted = counters["evicted"]
        self._n_pruned = counters["pruned"]
        self._n_skew_clamped = counters["skew_clamped"]
        self._n_skew_rejected = counters["skew_rejected"]
        self._n_finalized_events = counters["finalized"]
        self._n_shed_events = counters["shed_events"]
        self._n_shed_messages = counters["shed_messages"]
        self._n_swaps = counters["swaps"]
        self._kb_version = state["kb_version"]
        self._emitted = dict(state["emitted"])
        # Stashed, not rebuilt: reconstructing the ingest front-end needs
        # the syslog layer, so checkpoint.restore_ingest() does it on
        # demand via restored_ingest_state().
        self._restored_ingest = state.get("ingest")
        # The restored state *is* the checkpoint: age restarts at zero,
        # on the restoring process's own monotonic clock — the writing
        # process's clock (and its wall time) are meaningless here.
        self._last_checkpoint_stream_ts = self._last_ts
        self._last_checkpoint_mono = self._clock()

    @property
    def n_admitted(self) -> int:
        """Messages admitted so far (= log lines to skip on resume)."""
        return self._augmenter._counter

    def attach_quarantine(self, quarantine) -> None:
        """Surface a :class:`~repro.syslog.resilient.Quarantine` in health."""
        self._quarantine = quarantine

    def attach_ingest(self, ingest) -> None:
        """Register a :class:`~repro.syslog.ingest.MultiSourceIngest`.

        The ingest constructor calls this; from then on the front-end's
        state (reorder buffer, source breakers, dedup table) is captured
        inside :meth:`snapshot` so kill-and-resume stays byte-identical
        through the full ingest → stream path.
        """
        self._ingest = ingest

    def restored_ingest_state(self) -> dict | None:
        """Ingest state stashed by :meth:`restore` (None if the
        checkpointed stream had no ingest front-end attached)."""
        return self._restored_ingest

    # ------------------------------------------------------------- internals

    def _cross_step(self, plus: SyslogPlus, now: float) -> list[Edge]:
        edges: list[Edge] = []
        window = self._config.cross_router_window
        queue = self._cross_window.setdefault(plus.template_key, deque())
        while queue and queue[0][0] < now - window:
            queue.popleft()
        router = plus.router
        locs = plus.local_locations()
        dictionary = self._kb.dictionary
        for _ts, other, other_locs in queue:
            if other.router == router:
                continue
            if _locations_touch(dictionary, other_locs, locs):
                edges.append((other.index, plus.index))
        queue.append((now, plus, locs))
        return edges

    def _maybe_sweep(self, now: float) -> list[NetworkEvent]:
        if (
            self._last_sweep is None
            or now - self._last_sweep >= self._sweep_interval
        ):
            self._last_sweep = now
            events = self._finalize_idle(now)
            self.record_metrics()
            self._maybe_checkpoint(now)
            return events
        return []

    def _maybe_checkpoint(self, now: float) -> None:
        cfg = self._config
        if not cfg.checkpoint_path or cfg.checkpoint_interval <= 0:
            return
        if (
            self._last_checkpoint_stream_ts is not None
            and now - self._last_checkpoint_stream_ts
            < cfg.checkpoint_interval
        ):
            return
        from repro.core.checkpoint import write_checkpoint

        write_checkpoint(cfg.checkpoint_path, self)

    def note_checkpoint(self) -> None:
        """Record that the current state was just checkpointed."""
        self._last_checkpoint_stream_ts = self._last_ts
        self._last_checkpoint_mono = self._clock()

    def _finalize_idle(self, now: float) -> list[NetworkEvent]:
        horizon = now - self.flush_after
        self._n_evicted += self._exec.evict_idle(horizon)
        return self._collect_groups(lambda last: last < horizon)

    def _open_groups(self) -> dict[int, list[SyslogPlus]]:
        """Open messages bucketed by union-find root (admission order)."""
        by_root: dict[int, list[SyslogPlus]] = {}
        for index, plus in self._open.items():
            by_root.setdefault(self._uf.find(index), []).append(plus)
        return by_root

    def _collect_groups(self, should_close) -> list[NetworkEvent]:
        selected = [
            members
            for members in self._open_groups().values()
            if should_close(max(p.timestamp for p in members))
        ]
        return self._finalize_members(selected)

    def _shed(self) -> list[NetworkEvent]:
        """Force-finalize whole groups until the open bound holds again.

        Shedding is the bounded-memory escape hatch: it changes output
        (groups close before their idle horizon) and is therefore off by
        default (``max_open_messages = 0``).  Victim order follows
        ``shed_policy``: "oldest" closes the longest-idle groups first,
        "largest" the biggest first; ties break on the earliest member
        index so shedding is deterministic.
        """
        limit = self._config.max_open_messages
        if not limit or len(self._open) <= limit:
            return []
        groups = list(self._open_groups().values())
        if self._config.shed_policy == "largest":
            groups.sort(key=lambda m: (-len(m), m[0].index))
        else:
            groups.sort(
                key=lambda m: (max(p.timestamp for p in m), m[0].index)
            )
        victims: list[list[SyslogPlus]] = []
        excess = len(self._open) - limit
        removed = 0
        for members in groups:
            if removed >= excess:
                break
            victims.append(members)
            removed += len(members)
        events = self._finalize_members(victims)
        self._n_shed_events += len(events)
        self._n_shed_messages += removed
        return events

    def _finalize_members(
        self, groups: list[list[SyslogPlus]]
    ) -> list[NetworkEvent]:
        """Close the given groups: emit events, then prune dead state."""
        events: list[NetworkEvent] = []
        for members in groups:
            for plus in members:
                del self._open[plus.index]
            event = NetworkEvent(messages=members)
            event.score = self._prioritizer.score(event)
            event.label = event_label([p.template for p in members])
            events.append(event)
        # Drop state referencing finalized messages so long-running
        # streams stay bounded: temporal tails, rule windows (per shard)
        # and the cross-router window.
        open_indices = set(self._open)
        self._n_pruned += self._exec.prune(open_indices)
        for template in list(self._cross_window):
            kept = deque(
                item
                for item in self._cross_window[template]
                if item[1].index in open_indices
            )
            self._n_pruned += len(self._cross_window[template]) - len(kept)
            if kept:
                self._cross_window[template] = kept
            else:
                del self._cross_window[template]
        self._n_finalized_events += len(events)
        events.sort(key=lambda e: (e.start_ts, e.indices))
        return events

    # ------------------------------------------------------------ diagnostics

    @property
    def n_open_messages(self) -> int:
        """Messages not yet finalized into an event."""
        return len(self._open)

    @property
    def n_splitters(self) -> int:
        """Live temporal splitters across all shards (leak diagnostics)."""
        return self._exec.counts()[0]

    @property
    def n_window_entries(self) -> int:
        """Live rule + cross window entries (leak diagnostics)."""
        rule = self._exec.counts()[1]
        cross = sum(len(q) for q in self._cross_window.values())
        return rule + cross

    @property
    def watermark_lag(self) -> float:
        """Stream clock minus the oldest still-open message timestamp.

        How far behind the live edge the slowest open group trails; 0.0
        when nothing is open.  Large values mean events are being held
        open a long time before finalizing.
        """
        if not self._open or self._last_ts is None:
            return 0.0
        return self._last_ts - min(p.timestamp for p in self._open.values())

    @property
    def checkpoint_age(self) -> float:
        """Monotonic seconds since the last checkpoint (-1 if never).

        Measured on the clock injected at construction (default
        :func:`time.monotonic`), *not* on message timestamps or wall
        time: a supervisor restart or an NTP step moves those, but can
        never make this age negative or absurd.  Clamped at zero in
        case a test injects a non-monotonic fake clock.
        """
        if self._last_checkpoint_mono is None:
            return -1.0
        return max(0.0, self._clock() - self._last_checkpoint_mono)

    def health(self) -> dict[str, float]:
        """One-call health snapshot of the live stream state.

        The returned keys are exactly :data:`HEALTH_KEYS`, which is the
        single place every key is documented.
        """
        quarantine_depth = quarantine_total = 0
        if self._quarantine is not None:
            quarantine_depth = len(self._quarantine)
            quarantine_total = self._quarantine.total
        return {
            "open_messages": self.n_open_messages,
            "splitters": self.n_splitters,
            "window_entries": self.n_window_entries,
            "watermark_lag_seconds": self.watermark_lag,
            "evicted_splitters": self._n_evicted,
            "pruned_entries": self._n_pruned,
            "skew_clamped": self._n_skew_clamped,
            "skew_rejected": self._n_skew_rejected,
            "finalized_events": self._n_finalized_events,
            "shed_events": self._n_shed_events,
            "shed_messages": self._n_shed_messages,
            "quarantine_depth": quarantine_depth,
            "quarantine_total": quarantine_total,
            "checkpoint_age_seconds": self.checkpoint_age,
            "kb_swaps": self._n_swaps,
            "kb_swap_pending": 1.0 if self._pending_kb is not None else 0.0,
        }

    def record_metrics(
        self, registry: MetricsRegistry | None = None
    ) -> None:
        """Flush the health snapshot into the metrics registry.

        Called automatically at every finalize sweep and on
        :meth:`close`; cheap enough that extra manual calls are fine.
        Cumulative counts are emitted as counter *deltas* since the last
        flush, so the registry's counters stay monotonic no matter how
        often this runs.
        """
        reg = registry if registry is not None else get_registry()
        if not reg.enabled:
            return
        reg.set_gauge(STREAM_OPEN_MESSAGES, self.n_open_messages)
        reg.set_gauge(STREAM_SPLITTERS, self.n_splitters)
        reg.set_gauge(STREAM_WINDOW_ENTRIES, self.n_window_entries)
        reg.set_gauge(STREAM_WATERMARK_LAG, self.watermark_lag)
        reg.set_gauge(CHECKPOINT_AGE, self.checkpoint_age)
        reg.set_gauge(STREAM_WORKER_PROCS, self._exec.n_worker_processes)
        reg.set_gauge(
            STREAM_KB_SWAP_PENDING,
            1.0 if self._pending_kb is not None else 0.0,
        )
        for name, total in (
            (STREAM_EVICTED, self._n_evicted),
            (STREAM_PRUNED, self._n_pruned),
            (STREAM_SKEW_CLAMPED, self._n_skew_clamped),
            (STREAM_SKEW_REJECTED, self._n_skew_rejected),
            (STREAM_FINALIZED, self._n_finalized_events),
            (STREAM_SHED_EVENTS, self._n_shed_events),
            (STREAM_SHED_MESSAGES, self._n_shed_messages),
            (STREAM_KB_SWAPS, self._n_swaps),
        ):
            delta = total - self._emitted.get(name, 0)
            if delta:
                reg.inc(name, delta)
                self._emitted[name] = total
