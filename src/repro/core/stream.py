"""Incremental, message-by-message digesting.

:class:`DigestStream` maintains the grouping state machines online and
finalizes a group once it has been idle longer than every horizon that
could still attach a message to it (``s_max`` for temporal grouping, ``W``
for rules, the cross-router skew).  Batch :meth:`SyslogDigest.digest` and a
push-everything-then-close stream produce identical groupings; a test pins
that equivalence.

Grouping state is factored into :class:`ShardState` instances holding the
per-router machinery (temporal splitters, rule windows).  Because the
temporal and rule passes never relate messages on different routers, the
stream can be partitioned by router across several shard states whose
steps are independent — :meth:`DigestStream.push_many` exploits that to
run them on a thread pool, while the cross-router window and the
union-find stay global.  Long-running streams stay bounded: splitters
idle past the flush horizon are evicted (and lazily reset on next touch,
mirroring the batch engine exactly), and window entries of finalized
messages are dropped at every finalize sweep.
"""

from __future__ import annotations

import zlib
from collections import deque
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor

from repro.core.config import DigestConfig
from repro.core.events import NetworkEvent
from repro.core.grouping import (
    Edge,
    build_rule_partners,
    related_across_routers,
)
from repro.core.knowledge import KnowledgeBase
from repro.core.present import event_label
from repro.core.priority import Prioritizer
from repro.core.syslogplus import Augmenter, SyslogPlus
from repro.locations.spatial import spatially_matched
from repro.mining.temporal import TemporalSplitter
from repro.obs import (
    STREAM_EVICTED,
    STREAM_FINALIZED,
    STREAM_OPEN_MESSAGES,
    STREAM_PRUNED,
    STREAM_SKEW_CLAMPED,
    STREAM_SKEW_REJECTED,
    STREAM_SPLITTERS,
    STREAM_WATERMARK_LAG,
    STREAM_WINDOW_ENTRIES,
    MetricsRegistry,
    get_registry,
)
from repro.syslog.message import SyslogMessage
from repro.utils.unionfind import UnionFind


class ShardState:
    """Per-shard grouping state: temporal splitters plus rule windows.

    One shard owns a subset of the routers; all its structures are keyed
    by router (or by a router-containing key), so two shards never touch
    the same entries and their steps can run concurrently.  Steps return
    edges over global message indices instead of mutating the shared
    union-find, which keeps them side-effect free outside the shard.
    """

    def __init__(
        self,
        shard_id: int,
        kb: KnowledgeBase,
        config: DigestConfig,
        partners: dict[str, tuple[str, ...]],
    ) -> None:
        self._shard_id = shard_id
        self._kb = kb
        self._config = config
        self._partners = partners
        self._splitters: dict[tuple, TemporalSplitter] = {}
        # Splitter instance serials namespace temporal group identities,
        # so an evicted-and-recreated splitter can never union with the
        # groups of its predecessor.  (shard_id, serial) is globally
        # unique across shards.
        self._serial_of: dict[tuple, int] = {}
        self._n_created = 0
        self._temporal_tail: dict[tuple, int] = {}
        # router -> template_key -> deque of (arrival ts, message)
        self._rule_window: dict[
            str, dict[str, deque[tuple[float, SyslogPlus]]]
        ] = {}

    # ----------------------------------------------------------------- steps

    def step(self, plus: SyslogPlus, now: float) -> list[Edge]:
        """Run the shard-local passes for one message; return new edges."""
        edges: list[Edge] = []
        if self._config.enable_temporal:
            edge = self._temporal_step(plus, now)
            if edge is not None:
                edges.append(edge)
        if self._config.enable_rules:
            edges.extend(self._rule_step(plus, now))
        return edges

    def _temporal_step(self, plus: SyslogPlus, now: float) -> Edge | None:
        key = (plus.router, plus.template_key, plus.primary_location.key())
        splitter = self._splitters.get(key)
        if (
            splitter is not None
            and now - splitter.last_ts > self._config.flush_after
        ):
            # Lazy rhythm reset past the flush horizon — identical to the
            # batch engine's rule, so groupings stay equivalent whether or
            # not the sweep already evicted the idle splitter.
            splitter = None
        if splitter is None:
            splitter = TemporalSplitter(
                self._config.temporal,
                skew_tolerance=self._config.skew_tolerance,
            )
            self._splitters[key] = splitter
            self._serial_of[key] = self._n_created
            self._n_created += 1
        group = splitter.observe(plus.timestamp)
        group_key = (self._serial_of[key], group)
        tail = self._temporal_tail.get(group_key)
        self._temporal_tail[group_key] = plus.index
        if tail is not None:
            return (tail, plus.index)
        return None

    def _rule_step(self, plus: SyslogPlus, now: float) -> list[Edge]:
        edges: list[Edge] = []
        window = self._config.window
        by_template = self._rule_window.setdefault(plus.router, {})
        horizon = now - window
        for partner in self._partners.get(plus.template_key, ()):
            queue = by_template.get(partner)
            if not queue:
                continue
            while queue and queue[0][0] < horizon:
                queue.popleft()
            for _ts, other in queue:
                if spatially_matched(
                    self._kb.dictionary,
                    other.primary_location,
                    plus.primary_location,
                ):
                    edges.append((other.index, plus.index))
        own = by_template.setdefault(plus.template_key, deque())
        while own and own[0][0] < horizon:
            own.popleft()
        own.append((now, plus))
        return edges

    # ------------------------------------------------------------ maintenance

    def evict_idle(self, horizon: float) -> int:
        """Drop splitters whose key has been quiet past ``horizon``.

        Safe because the lazy reset in :meth:`_temporal_step` would
        recreate them from scratch on next touch anyway.  Returns how
        many splitters were evicted (stream health accounting).
        """
        idle = [
            key
            for key, splitter in self._splitters.items()
            if splitter.last_ts < horizon
        ]
        for key in idle:
            del self._splitters[key]
            del self._serial_of[key]
        return len(idle)

    def prune(self, open_indices: set[int]) -> int:
        """Drop window/tail entries that reference finalized messages.

        Returns the number of entries dropped (stream health accounting).
        """
        dropped = 0
        kept_tails = {
            key: idx
            for key, idx in self._temporal_tail.items()
            if idx in open_indices
        }
        dropped += len(self._temporal_tail) - len(kept_tails)
        self._temporal_tail = kept_tails
        for router in list(self._rule_window):
            by_template = self._rule_window[router]
            for template in list(by_template):
                kept = deque(
                    item
                    for item in by_template[template]
                    if item[1].index in open_indices
                )
                dropped += len(by_template[template]) - len(kept)
                if kept:
                    by_template[template] = kept
                else:
                    del by_template[template]
            if not by_template:
                del self._rule_window[router]
        return dropped

    @property
    def n_splitters(self) -> int:
        """Live temporal splitters (exposed for leak tests)."""
        return len(self._splitters)

    @property
    def n_window_entries(self) -> int:
        """Live rule-window entries (exposed for leak tests)."""
        return sum(
            len(queue)
            for by_template in self._rule_window.values()
            for queue in by_template.values()
        )


class DigestStream:
    """Online digester: ``push`` messages in time order, collect events.

    With ``config.n_workers > 1`` the per-router grouping state is
    partitioned across that many :class:`ShardState` instances and
    :meth:`push_many` runs their steps on a thread pool; :meth:`push`
    stays strictly sequential either way, and the grouping is identical
    for any worker count.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        config: DigestConfig | None = None,
        sweep_interval: float = 300.0,
    ) -> None:
        self._kb = kb
        self._config = config or DigestConfig()
        if self._config.temporal != kb.temporal:
            self._config = self._config.with_temporal(kb.temporal)
        self._augmenter = Augmenter(kb.templates, kb.dictionary)
        self._prioritizer = Prioritizer(kb)
        self._partners = build_rule_partners(kb.rule_pairs())

        self._uf: UnionFind = UnionFind()
        self._open: dict[int, SyslogPlus] = {}  # index -> message
        self._last_ts: float | None = None
        self._last_sweep: float | None = None
        self._sweep_interval = sweep_interval

        # Health accounting: plain ints on the hot path, flushed to the
        # metrics registry only at sweep granularity.
        self._n_evicted = 0
        self._n_pruned = 0
        self._n_skew_clamped = 0
        self._n_skew_rejected = 0
        self._n_finalized_events = 0
        self._emitted: dict[str, float] = {}

        n_shards = self._config.n_workers if self._config.shard_by_router else 1
        self._n_shards = max(1, n_shards)
        self._states = [
            ShardState(shard, kb, self._config, self._partners)
            for shard in range(self._n_shards)
        ]
        # template_key -> deque of (arrival ts, message); global because
        # the cross-router pass relates messages across shards.
        self._cross_window: dict[str, deque[tuple[float, SyslogPlus]]] = {}

    @property
    def flush_after(self) -> float:
        """Idle horizon after which a group can no longer grow."""
        return self._config.flush_after

    def _shard_of(self, router: str) -> ShardState:
        if self._n_shards == 1:
            return self._states[0]
        return self._states[zlib.crc32(router.encode()) % self._n_shards]

    def _admit(self, message: SyslogMessage) -> tuple[SyslogPlus, float]:
        """Validate ordering/skew, augment, register; return (plus, now)."""
        tolerance = self._config.skew_tolerance
        if (
            self._last_ts is not None
            and message.timestamp < self._last_ts - tolerance
        ):
            self._n_skew_rejected += 1
            raise ValueError(
                "messages must be pushed in non-decreasing time order "
                f"(got {message.timestamp}, stream clock {self._last_ts}, "
                f"skew tolerance {tolerance}s)"
            )
        if self._last_ts is not None and message.timestamp < self._last_ts:
            self._n_skew_clamped += 1
        # The stream clock never runs backwards; a slightly-late message
        # is processed as if it arrived at the current clock.
        now = (
            message.timestamp
            if self._last_ts is None
            else max(message.timestamp, self._last_ts)
        )
        self._last_ts = now
        plus = self._augmenter.augment(message)
        self._uf.add(plus.index)
        self._open[plus.index] = plus
        return plus, now

    def push(self, message: SyslogMessage) -> list[NetworkEvent]:
        """Process one message; return any events finalized by its arrival."""
        plus, now = self._admit(message)
        for a, b in self._shard_of(plus.router).step(plus, now):
            self._uf.union(a, b)
        if self._config.enable_cross_router:
            for a, b in self._cross_step(plus, now):
                self._uf.union(a, b)
        return self._maybe_sweep(now)

    def push_many(
        self, messages: Iterable[SyslogMessage]
    ) -> list[NetworkEvent]:
        """Push a time-ordered batch, sharding the per-router passes.

        Shard steps run concurrently on a thread pool (one task per shard,
        each processing its messages in arrival order); the cross-router
        pass and the union-find merge then run once over the whole batch.
        Produces the same grouping as message-by-message :meth:`push`.
        """
        batch: list[tuple[SyslogPlus, float]] = []
        for message in messages:
            batch.append(self._admit(message))
        if not batch:
            return []

        per_shard: dict[int, list[tuple[SyslogPlus, float]]] = {}
        for plus, now in batch:
            state = self._shard_of(plus.router)
            per_shard.setdefault(state._shard_id, []).append((plus, now))

        def run_shard(shard_id: int) -> list[Edge]:
            state = self._states[shard_id]
            edges: list[Edge] = []
            for plus, now in per_shard[shard_id]:
                edges.extend(state.step(plus, now))
            return edges

        if self._n_shards > 1 and len(per_shard) > 1:
            with ThreadPoolExecutor(max_workers=self._n_shards) as pool:
                edge_lists = list(pool.map(run_shard, sorted(per_shard)))
        else:
            edge_lists = [run_shard(shard) for shard in sorted(per_shard)]
        for edges in edge_lists:
            for a, b in edges:
                self._uf.union(a, b)

        if self._config.enable_cross_router:
            for plus, now in batch:
                for a, b in self._cross_step(plus, now):
                    self._uf.union(a, b)
        return self._maybe_sweep(batch[-1][1])

    def close(self) -> list[NetworkEvent]:
        """Finalize and return all remaining open groups."""
        events = self._collect_groups(lambda _last: True)
        self.record_metrics()
        return events

    # ------------------------------------------------------------- internals

    def _cross_step(self, plus: SyslogPlus, now: float) -> list[Edge]:
        edges: list[Edge] = []
        window = self._config.cross_router_window
        queue = self._cross_window.setdefault(plus.template_key, deque())
        while queue and queue[0][0] < now - window:
            queue.popleft()
        for _ts, other in queue:
            if other.router == plus.router:
                continue
            if related_across_routers(self._kb.dictionary, other, plus):
                edges.append((other.index, plus.index))
        queue.append((now, plus))
        return edges

    def _maybe_sweep(self, now: float) -> list[NetworkEvent]:
        if (
            self._last_sweep is None
            or now - self._last_sweep >= self._sweep_interval
        ):
            self._last_sweep = now
            events = self._finalize_idle(now)
            self.record_metrics()
            return events
        return []

    def _finalize_idle(self, now: float) -> list[NetworkEvent]:
        horizon = now - self.flush_after
        for state in self._states:
            self._n_evicted += state.evict_idle(horizon)
        return self._collect_groups(lambda last: last < horizon)

    def _collect_groups(self, should_close) -> list[NetworkEvent]:
        by_root: dict[int, list[SyslogPlus]] = {}
        for index, plus in self._open.items():
            by_root.setdefault(self._uf.find(index), []).append(plus)
        events: list[NetworkEvent] = []
        for members in by_root.values():
            last = max(p.timestamp for p in members)
            if not should_close(last):
                continue
            for plus in members:
                del self._open[plus.index]
            event = NetworkEvent(messages=members)
            event.score = self._prioritizer.score(event)
            event.label = event_label([p.template for p in members])
            events.append(event)
        # Drop state referencing finalized messages so long-running
        # streams stay bounded: temporal tails, rule windows (per shard)
        # and the cross-router window.
        open_indices = set(self._open)
        for state in self._states:
            self._n_pruned += state.prune(open_indices)
        for template in list(self._cross_window):
            kept = deque(
                item
                for item in self._cross_window[template]
                if item[1].index in open_indices
            )
            self._n_pruned += len(self._cross_window[template]) - len(kept)
            if kept:
                self._cross_window[template] = kept
            else:
                del self._cross_window[template]
        self._n_finalized_events += len(events)
        events.sort(key=lambda e: (e.start_ts, e.indices))
        return events

    # ------------------------------------------------------------ diagnostics

    @property
    def n_open_messages(self) -> int:
        """Messages not yet finalized into an event."""
        return len(self._open)

    @property
    def n_splitters(self) -> int:
        """Live temporal splitters across all shards (leak diagnostics)."""
        return sum(state.n_splitters for state in self._states)

    @property
    def n_window_entries(self) -> int:
        """Live rule + cross window entries (leak diagnostics)."""
        rule = sum(state.n_window_entries for state in self._states)
        cross = sum(len(q) for q in self._cross_window.values())
        return rule + cross

    @property
    def watermark_lag(self) -> float:
        """Stream clock minus the oldest still-open message timestamp.

        How far behind the live edge the slowest open group trails; 0.0
        when nothing is open.  Large values mean events are being held
        open a long time before finalizing.
        """
        if not self._open or self._last_ts is None:
            return 0.0
        return self._last_ts - min(p.timestamp for p in self._open.values())

    def health(self) -> dict[str, float]:
        """One-call health snapshot of the live stream state."""
        return {
            "open_messages": self.n_open_messages,
            "splitters": self.n_splitters,
            "window_entries": self.n_window_entries,
            "watermark_lag_seconds": self.watermark_lag,
            "evicted_splitters": self._n_evicted,
            "pruned_entries": self._n_pruned,
            "skew_clamped": self._n_skew_clamped,
            "skew_rejected": self._n_skew_rejected,
            "finalized_events": self._n_finalized_events,
        }

    def record_metrics(
        self, registry: MetricsRegistry | None = None
    ) -> None:
        """Flush the health snapshot into the metrics registry.

        Called automatically at every finalize sweep and on
        :meth:`close`; cheap enough that extra manual calls are fine.
        Cumulative counts are emitted as counter *deltas* since the last
        flush, so the registry's counters stay monotonic no matter how
        often this runs.
        """
        reg = registry if registry is not None else get_registry()
        if not reg.enabled:
            return
        reg.set_gauge(STREAM_OPEN_MESSAGES, self.n_open_messages)
        reg.set_gauge(STREAM_SPLITTERS, self.n_splitters)
        reg.set_gauge(STREAM_WINDOW_ENTRIES, self.n_window_entries)
        reg.set_gauge(STREAM_WATERMARK_LAG, self.watermark_lag)
        for name, total in (
            (STREAM_EVICTED, self._n_evicted),
            (STREAM_PRUNED, self._n_pruned),
            (STREAM_SKEW_CLAMPED, self._n_skew_clamped),
            (STREAM_SKEW_REJECTED, self._n_skew_rejected),
            (STREAM_FINALIZED, self._n_finalized_events),
        ):
            delta = total - self._emitted.get(name, 0)
            if delta:
                reg.inc(name, delta)
                self._emitted[name] = total
