"""The domain knowledge base the offline stage produces (Figure 1).

Holds everything online processing needs: the template set, the location
dictionary, fitted temporal parameters, the association-rule store, and
historical per-(router, template) frequencies used by prioritization.
Serializes to JSON so the weekly offline refresh can hand the online system
a file, as an operational deployment would.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.locations.dictionary import LocationDictionary
from repro.locations.model import Location, LocationKind
from repro.mining.rules import AssociationRule, RuleMiner
from repro.mining.rulestore import RuleStore
from repro.mining.temporal import TemporalParams
from repro.templates.learner import TemplateSet
from repro.templates.signature import Template

#: Serialization format of :meth:`KnowledgeBase.to_json`.  Version 1 is
#: the legacy payload without the ``format_version`` field; loading a
#: payload newer than this raises :class:`KnowledgeFormatError` instead
#: of failing on some missing key deep inside deserialization.
KB_FORMAT_VERSION = 2


class KnowledgeFormatError(ValueError):
    """A knowledge-base payload has an unknown/unsupported format.

    Carries the offending ``source`` (file path or ``"<string>"``) and
    the ``found`` version so operators see *what* refused to load.
    """

    def __init__(self, source: str, found: object) -> None:
        self.source = source
        self.found = found
        super().__init__(
            f"knowledge base {source} has format_version {found!r}; "
            f"this build supports up to {KB_FORMAT_VERSION}"
        )


@dataclass
class KnowledgeBase:
    """Learned domain knowledge for one network."""

    templates: TemplateSet
    dictionary: LocationDictionary
    temporal: TemporalParams
    rules: RuleStore
    # Historical occurrence count of each (router, template_key).
    frequencies: dict[tuple[str, str], int] = field(default_factory=dict)
    # Days of history behind ``frequencies`` (normalizes to per-day rates).
    history_days: float = 1.0

    def frequency(self, router: str, template_key: str) -> float:
        """Historical per-day frequency, 0 for never-seen signatures."""
        count = self.frequencies.get((router, template_key), 0)
        return count / max(self.history_days, 1e-9)

    def rule_pairs(self) -> set[tuple[str, str]]:
        """Unordered template pairs related by at least one rule."""
        return self.rules.undirected_pairs()

    # ------------------------------------------------------------- serialization

    def to_json(self) -> str:
        """Serialize to a JSON document."""
        payload = {
            "format_version": KB_FORMAT_VERSION,
            "temporal": {
                "alpha": self.temporal.alpha,
                "beta": self.temporal.beta,
                "s_min": self.temporal.s_min,
                "s_max": self.temporal.s_max,
            },
            "miner": {
                "window": self.rules.miner.window,
                "sp_min": self.rules.miner.sp_min,
                "conf_min": self.rules.miner.conf_min,
            },
            "templates": {
                code: [
                    {"key": t.key, "words": list(t.words)}
                    for t in templates
                ]
                for code, templates in self.templates.by_code.items()
            },
            "rules": [
                {
                    "x": r.x,
                    "y": r.y,
                    "support_x": r.support_x,
                    "support_pair": r.support_pair,
                    "confidence": r.confidence,
                }
                for r in self.rules.rules
            ],
            "pinned_pairs": sorted(list(p) for p in self.rules._pinned),
            "suppressed_pairs": sorted(
                list(p) for p in self.rules._suppressed
            ),
            "frequencies": [
                {"router": router, "template": template, "count": count}
                for (router, template), count in sorted(
                    self.frequencies.items()
                )
            ],
            "history_days": self.history_days,
            "dictionary": _dictionary_to_dict(self.dictionary),
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(
        cls, text: str, source: str = "<string>"
    ) -> KnowledgeBase:
        """Reconstruct a knowledge base serialized by :meth:`to_json`.

        Payloads without a ``format_version`` field are treated as the
        legacy version 1; anything newer than :data:`KB_FORMAT_VERSION`
        raises :class:`KnowledgeFormatError` naming ``source``.
        """
        payload = json.loads(text)
        found = payload.get("format_version", 1)
        if not isinstance(found, int) or found > KB_FORMAT_VERSION:
            raise KnowledgeFormatError(source, found)
        templates = TemplateSet(
            by_code={
                code: [
                    Template(
                        key=item["key"],
                        error_code=code,
                        words=tuple(item["words"]),
                    )
                    for item in items
                ]
                for code, items in payload["templates"].items()
            }
        )
        miner = RuleMiner(**payload["miner"])
        store = RuleStore(miner=miner)
        for item in payload["rules"]:
            rule = AssociationRule(**item)
            store._rules[(rule.x, rule.y)] = rule
        for x, y in payload.get("pinned_pairs", ()):
            store.pin(x, y)
        for x, y in payload.get("suppressed_pairs", ()):
            store.suppress(x, y)
        return cls(
            templates=templates,
            dictionary=_dictionary_from_dict(payload["dictionary"]),
            temporal=TemporalParams(**payload["temporal"]),
            rules=store,
            frequencies={
                (item["router"], item["template"]): item["count"]
                for item in payload["frequencies"]
            },
            history_days=payload["history_days"],
        )

    def save(self, path: str | Path) -> None:
        """Write the JSON serialization to ``path``."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> KnowledgeBase:
        """Read a knowledge base serialized by :meth:`save`."""
        return cls.from_json(
            Path(path).read_text(encoding="utf-8"), source=str(path)
        )

    def fingerprint(self) -> str:
        """Content hash of the serialized knowledge (sha256 hex).

        Computed over a canonical re-dump (sorted keys, no whitespace)
        so two bases holding the same knowledge fingerprint identically
        regardless of dict insertion order.  The model store uses this
        to detect no-op refreshes and verify versions on load.
        """
        canonical = json.dumps(
            json.loads(self.to_json()),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def clone(self) -> KnowledgeBase:
        """Deep, independent copy (via the JSON round trip).

        The refresh path mutates a *candidate* clone so the active base
        keeps serving unchanged until the promotion gate accepts.
        """
        return KnowledgeBase.from_json(self.to_json(), source="<clone>")


def _loc_to_list(loc: Location) -> list:
    return [loc.router, loc.kind.name, loc.name]


def _loc_from_list(item: list) -> Location:
    return Location(item[0], LocationKind[item[1]], item[2])


def _dictionary_to_dict(dictionary: LocationDictionary) -> dict:
    return {
        "routers": sorted(dictionary.routers),
        "sites": {
            router: dictionary.site_of(router)
            for router in sorted(dictionary.routers)
            if dictionary.site_of(router)
        },
        "components": {
            router: [
                _loc_to_list(loc)
                for loc in sorted(dictionary.components_of(router))
            ]
            for router in sorted(dictionary.routers)
        },
        "ips": {
            ip: _loc_to_list(loc)
            for ip, loc in sorted(dictionary._ip_to_location.items())
        },
        "links": [
            [_loc_to_list(a), _loc_to_list(b)]
            for a, b in sorted(dictionary.all_links())
        ],
        "multilinks": [
            [_loc_to_list(bundle), [_loc_to_list(m) for m in sorted(members)]]
            for bundle, members in sorted(
                dictionary._multilink_members.items()
            )
        ],
    }


def _dictionary_from_dict(payload: dict) -> LocationDictionary:
    dictionary = LocationDictionary()
    sites = payload.get("sites", {})
    for router in payload["routers"]:
        dictionary.add_router(router, sites.get(router))
    for router, items in payload["components"].items():
        for item in items:
            loc = _loc_from_list(item)
            dictionary._components.setdefault(router, set()).add(loc)
    for ip, item in payload["ips"].items():
        dictionary.set_ip(_loc_from_list(item), ip)
    for a_item, b_item in payload["links"]:
        dictionary.add_link(_loc_from_list(a_item), _loc_from_list(b_item))
    for bundle_item, member_items in payload.get("multilinks", []):
        bundle = _loc_from_list(bundle_item)
        for member_item in member_items:
            dictionary.add_multilink_member(
                bundle, _loc_from_list(member_item)
            )
    return dictionary
