"""All tunables of the SyslogDigest pipeline in one place (paper Table 6)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mining.temporal import TemporalParams
from repro.utils.timeutils import HOUR


@dataclass(frozen=True)
class DigestConfig:
    """Pipeline configuration.

    Defaults follow the paper's Table 6 (dataset A column); per-dataset
    values are produced by the offline fitting steps.
    """

    # Template learning.
    tree_k: int = 10
    tree_min_support: int = 3
    max_messages_per_code: int | None = 4000

    # Association-rule mining.
    window: float = 120.0
    sp_min: float = 0.0005
    conf_min: float = 0.8

    # Temporal grouping.
    temporal: TemporalParams = field(default_factory=TemporalParams)

    # Cross-router grouping: max timestamp skew between two ends of a
    # link/session observing the same condition.
    cross_router_window: float = 1.0

    # Grouping-pass toggles (Table 7 rows: T, T+R, T+R+C).
    enable_temporal: bool = True
    enable_rules: bool = True
    enable_cross_router: bool = True

    # Online mode: a group with no new message for this long is finalized.
    # Must be at least s_max or open temporal groups could still grow.
    idle_flush: float = 3 * HOUR

    # Collector clock-skew tolerance (seconds): timestamps up to this far
    # behind the stream clock are clamped instead of rejected, so a
    # jittery UDP collector path cannot kill a live digest.
    skew_tolerance: float = 2.0

    # Sharded parallel engine: number of workers the grouping passes are
    # spread over (1 = serial, 0 = one per CPU core) and whether the
    # stream is partitioned by router (the only sound shard axis for the
    # temporal and rule passes, which never relate messages on different
    # routers).
    n_workers: int = 1
    shard_by_router: bool = True

    @property
    def flush_after(self) -> float:
        """Idle horizon after which a group can no longer grow.

        Also the horizon past which per-key temporal rhythm state is
        reset; batch and streaming engines share it so their groupings
        stay identical.
        """
        return max(
            self.idle_flush,
            self.temporal.s_max + self.window + self.cross_router_window,
        )

    def __post_init__(self) -> None:
        if self.skew_tolerance < 0:
            raise ValueError("skew_tolerance must be >= 0")
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0 (0 = one per core)")

    def with_temporal(self, params: TemporalParams) -> DigestConfig:
        """Copy with different temporal-grouping parameters."""
        return replace(self, temporal=params)

    def with_workers(self, n_workers: int) -> DigestConfig:
        """Copy with a different worker count for the sharded engine."""
        return replace(self, n_workers=n_workers)

    def only_passes(
        self, temporal: bool = True, rules: bool = True, cross: bool = True
    ) -> DigestConfig:
        """Copy with a subset of grouping passes enabled."""
        return replace(
            self,
            enable_temporal=temporal,
            enable_rules=rules,
            enable_cross_router=cross,
        )
