"""All tunables of the SyslogDigest pipeline in one place (paper Table 6)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mining.temporal import TemporalParams
from repro.utils.timeutils import HOUR


@dataclass(frozen=True)
class DigestConfig:
    """Pipeline configuration.

    Defaults follow the paper's Table 6 (dataset A column); per-dataset
    values are produced by the offline fitting steps.
    """

    # Template learning.
    tree_k: int = 10
    tree_min_support: int = 3
    max_messages_per_code: int | None = 4000

    # Association-rule mining.
    window: float = 120.0
    sp_min: float = 0.0005
    conf_min: float = 0.8

    # Temporal grouping.
    temporal: TemporalParams = field(default_factory=TemporalParams)

    # Cross-router grouping: max timestamp skew between two ends of a
    # link/session observing the same condition.
    cross_router_window: float = 1.0

    # Grouping-pass toggles (Table 7 rows: T, T+R, T+R+C).
    enable_temporal: bool = True
    enable_rules: bool = True
    enable_cross_router: bool = True

    # Online mode: a group with no new message for this long is finalized.
    # Must be at least s_max or open temporal groups could still grow.
    idle_flush: float = 3 * HOUR

    # Collector clock-skew tolerance (seconds): timestamps up to this far
    # behind the stream clock are clamped instead of rejected, so a
    # jittery UDP collector path cannot kill a live digest.
    skew_tolerance: float = 2.0

    # Sharded parallel engine: number of workers the grouping passes are
    # spread over (1 = serial, 0 = one per CPU core) and whether the
    # stream is partitioned by router (the only sound shard axis for the
    # temporal and rule passes, which never relate messages on different
    # routers).
    n_workers: int = 1
    shard_by_router: bool = True

    # Streaming executor lane (DESIGN.md §12): how DigestStream runs its
    # per-shard grouping steps.  "serial" steps shards inline, "threads"
    # uses a thread pool (GIL-bound, cheap to start), "processes" spawns
    # one persistent worker process per shard that owns its ShardState
    # across batches — shared-nothing, knowledge broadcast once and
    # re-broadcast only on an epoch-boundary hot swap.  All three lanes
    # group byte-identically (gated in ``make check``); the shard count
    # itself still comes from ``n_workers``.
    stream_workers: str = "threads"

    # Fault tolerance (streaming).  ``checkpoint_path`` + a positive
    # ``checkpoint_interval`` (stream-clock seconds between snapshots)
    # make DigestStream persist its state atomically at sweep boundaries
    # so a crashed digest can resume from the last checkpoint plus a
    # replay of the log tail.
    checkpoint_path: str | None = None
    checkpoint_interval: float = 0.0

    # Bounded-memory load shedding: when more than this many messages
    # are open at once, whole groups are force-finalized early until the
    # bound holds again (0 = unbounded, the default — shedding changes
    # output and must be opted into).  ``shed_policy`` picks the victim
    # order: "oldest" closes the longest-idle groups first, "largest"
    # the biggest groups first.
    max_open_messages: int = 0
    shed_policy: str = "oldest"

    # Knowledge hot-swap policy (DESIGN.md §9): "defer" adopts a newly
    # promoted knowledge base at the next epoch boundary (no groups
    # open — output-preserving), "drain" force-finalizes all open groups
    # and swaps immediately (bounded staleness, changes output).
    swap_policy: str = "defer"

    @property
    def flush_after(self) -> float:
        """Idle horizon after which a group can no longer grow.

        Also the horizon past which per-key temporal rhythm state is
        reset; batch and streaming engines share it so their groupings
        stay identical.
        """
        return max(
            self.idle_flush,
            self.temporal.s_max + self.window + self.cross_router_window,
        )

    def __post_init__(self) -> None:
        if self.skew_tolerance < 0:
            raise ValueError("skew_tolerance must be >= 0")
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0 (0 = one per core)")
        if self.stream_workers not in ("serial", "threads", "processes"):
            raise ValueError(
                f"stream_workers must be 'serial', 'threads' or "
                f"'processes', got {self.stream_workers!r}"
            )
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.max_open_messages < 0:
            raise ValueError("max_open_messages must be >= 0 (0 = unbounded)")
        if self.shed_policy not in ("oldest", "largest"):
            raise ValueError(
                f"shed_policy must be 'oldest' or 'largest', "
                f"got {self.shed_policy!r}"
            )
        if self.swap_policy not in ("defer", "drain"):
            raise ValueError(
                f"swap_policy must be 'defer' or 'drain', "
                f"got {self.swap_policy!r}"
            )

    def with_temporal(self, params: TemporalParams) -> DigestConfig:
        """Copy with different temporal-grouping parameters."""
        return replace(self, temporal=params)

    def with_workers(self, n_workers: int) -> DigestConfig:
        """Copy with a different worker count for the sharded engine."""
        return replace(self, n_workers=n_workers)

    def with_stream_workers(self, stream_workers: str) -> DigestConfig:
        """Copy with a different streaming executor lane."""
        return replace(self, stream_workers=stream_workers)

    def with_window(self, window: float) -> DigestConfig:
        """Copy with a different association-rule window."""
        return replace(self, window=window)

    def with_checkpointing(
        self, path: str, interval: float
    ) -> DigestConfig:
        """Copy with periodic streaming checkpoints enabled."""
        return replace(
            self, checkpoint_path=path, checkpoint_interval=interval
        )

    def with_shedding(
        self, max_open_messages: int, shed_policy: str = "oldest"
    ) -> DigestConfig:
        """Copy with bounded-memory load shedding enabled."""
        return replace(
            self,
            max_open_messages=max_open_messages,
            shed_policy=shed_policy,
        )

    def with_swap_policy(self, swap_policy: str) -> DigestConfig:
        """Copy with a different knowledge hot-swap policy."""
        return replace(self, swap_policy=swap_policy)

    def only_passes(
        self, temporal: bool = True, rules: bool = True, cross: bool = True
    ) -> DigestConfig:
        """Copy with a subset of grouping passes enabled."""
        return replace(
            self,
            enable_temporal=temporal,
            enable_rules=rules,
            enable_cross_router=cross,
        )


@dataclass(frozen=True)
class IngestConfig:
    """Tunables of the resilient multi-source ingest front-end (DESIGN.md §10).

    :class:`~repro.syslog.ingest.MultiSourceIngest` sits between raw
    per-source feeds and :class:`~repro.core.stream.DigestStream`; these
    knobs bound how much disorder it absorbs and when it gives up on a
    source.  The defaults are a strict no-op for a single in-order
    source: dedup, stall detection, and admission control are opt-in,
    and the reorder buffer only *delays* emission, never changes it.
    """

    # Watermark reordering: a source's low watermark trails its newest
    # timestamp by this many seconds; buffered messages at or below the
    # min watermark across live sources are flushed in deterministic
    # (timestamp, router, error_code, source, arrival) order.  Arrivals
    # behind the already-flushed frontier are dropped as *late*.
    max_reorder_delay: float = 60.0

    # Hard bound on buffered messages; overflow force-flushes the oldest
    # entries past the watermark (0 = unbounded).
    max_buffer_messages: int = 10_000

    # Windowed duplicate suppression: a message whose full content
    # (timestamp, router, error_code, detail) was already admitted is
    # suppressed; entries are remembered for this many seconds past the
    # watermark (0 = dedup off — suppression changes output, opt in).
    dedup_window: float = 0.0

    # Circuit breaker: consecutive failures (parse errors, stalls) that
    # trip a source from closed to open.
    breaker_failure_threshold: int = 5

    # Half-open probe schedule, realized through
    # :class:`repro.syslog.resilient.RetryPolicy` — probe i after the
    # policy's i-th exponential delay; the final delay repeats once the
    # schedule is exhausted.  Stall-opened breakers probe immediately on
    # the next arrival (the arrival itself ends the stall).
    probe_base_delay: float = 60.0
    probe_max_retries: int = 6

    # A closed source whose last arrival trails the ingest clock by more
    # than this many seconds is opened with reason "stall" so it stops
    # holding back the global watermark (0 = stall detection off).
    stall_timeout: float = 0.0

    # Admission control: with buffered + stream-open messages at or past
    # the soft limit, arrivals from unhealthy sources (breaker not
    # closed, or consecutive failures pending) are shed; past the hard
    # limit every arrival is shed.  Both 0 = off.  Set these *below*
    # ``DigestConfig.max_open_messages`` so ingest sheds by source
    # health before the stream's whole-group shedding ever triggers.
    admit_soft_limit: int = 0
    admit_hard_limit: int = 0

    def __post_init__(self) -> None:
        if self.max_reorder_delay < 0:
            raise ValueError("max_reorder_delay must be >= 0")
        if self.max_buffer_messages < 0:
            raise ValueError("max_buffer_messages must be >= 0 (0 = unbounded)")
        if self.dedup_window < 0:
            raise ValueError("dedup_window must be >= 0 (0 = off)")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.probe_base_delay < 0:
            raise ValueError("probe_base_delay must be >= 0")
        if self.probe_max_retries < 0:
            raise ValueError("probe_max_retries must be >= 0")
        if self.stall_timeout < 0:
            raise ValueError("stall_timeout must be >= 0 (0 = off)")
        if self.admit_soft_limit < 0 or self.admit_hard_limit < 0:
            raise ValueError("admission limits must be >= 0 (0 = off)")
        if (
            self.admit_soft_limit
            and self.admit_hard_limit
            and self.admit_soft_limit > self.admit_hard_limit
        ):
            raise ValueError("admit_soft_limit must be <= admit_hard_limit")

    def for_stream(self, config: DigestConfig) -> IngestConfig:
        """Copy with admission limits derived from a stream's open bound.

        Places the soft limit at 80% and the hard limit at 95% of
        ``config.max_open_messages`` so ingest-side shedding (by source
        health) always engages before the stream's own whole-group
        shedding.  A stream without an open bound leaves admission off.
        """
        if not config.max_open_messages:
            return self
        return replace(
            self,
            admit_soft_limit=max(1, int(config.max_open_messages * 0.8)),
            admit_hard_limit=max(1, int(config.max_open_messages * 0.95)),
        )
