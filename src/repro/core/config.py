"""All tunables of the SyslogDigest pipeline in one place (paper Table 6)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mining.temporal import TemporalParams
from repro.utils.timeutils import HOUR


@dataclass(frozen=True)
class DigestConfig:
    """Pipeline configuration.

    Defaults follow the paper's Table 6 (dataset A column); per-dataset
    values are produced by the offline fitting steps.
    """

    # Template learning.
    tree_k: int = 10
    tree_min_support: int = 3
    max_messages_per_code: int | None = 4000

    # Association-rule mining.
    window: float = 120.0
    sp_min: float = 0.0005
    conf_min: float = 0.8

    # Temporal grouping.
    temporal: TemporalParams = field(default_factory=TemporalParams)

    # Cross-router grouping: max timestamp skew between two ends of a
    # link/session observing the same condition.
    cross_router_window: float = 1.0

    # Grouping-pass toggles (Table 7 rows: T, T+R, T+R+C).
    enable_temporal: bool = True
    enable_rules: bool = True
    enable_cross_router: bool = True

    # Online mode: a group with no new message for this long is finalized.
    # Must be at least s_max or open temporal groups could still grow.
    idle_flush: float = 3 * HOUR

    # Collector clock-skew tolerance (seconds): timestamps up to this far
    # behind the stream clock are clamped instead of rejected, so a
    # jittery UDP collector path cannot kill a live digest.
    skew_tolerance: float = 2.0

    # Sharded parallel engine: number of workers the grouping passes are
    # spread over (1 = serial, 0 = one per CPU core) and whether the
    # stream is partitioned by router (the only sound shard axis for the
    # temporal and rule passes, which never relate messages on different
    # routers).
    n_workers: int = 1
    shard_by_router: bool = True

    # Fault tolerance (streaming).  ``checkpoint_path`` + a positive
    # ``checkpoint_interval`` (stream-clock seconds between snapshots)
    # make DigestStream persist its state atomically at sweep boundaries
    # so a crashed digest can resume from the last checkpoint plus a
    # replay of the log tail.
    checkpoint_path: str | None = None
    checkpoint_interval: float = 0.0

    # Bounded-memory load shedding: when more than this many messages
    # are open at once, whole groups are force-finalized early until the
    # bound holds again (0 = unbounded, the default — shedding changes
    # output and must be opted into).  ``shed_policy`` picks the victim
    # order: "oldest" closes the longest-idle groups first, "largest"
    # the biggest groups first.
    max_open_messages: int = 0
    shed_policy: str = "oldest"

    # Knowledge hot-swap policy (DESIGN.md §9): "defer" adopts a newly
    # promoted knowledge base at the next epoch boundary (no groups
    # open — output-preserving), "drain" force-finalizes all open groups
    # and swaps immediately (bounded staleness, changes output).
    swap_policy: str = "defer"

    @property
    def flush_after(self) -> float:
        """Idle horizon after which a group can no longer grow.

        Also the horizon past which per-key temporal rhythm state is
        reset; batch and streaming engines share it so their groupings
        stay identical.
        """
        return max(
            self.idle_flush,
            self.temporal.s_max + self.window + self.cross_router_window,
        )

    def __post_init__(self) -> None:
        if self.skew_tolerance < 0:
            raise ValueError("skew_tolerance must be >= 0")
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0 (0 = one per core)")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.max_open_messages < 0:
            raise ValueError("max_open_messages must be >= 0 (0 = unbounded)")
        if self.shed_policy not in ("oldest", "largest"):
            raise ValueError(
                f"shed_policy must be 'oldest' or 'largest', "
                f"got {self.shed_policy!r}"
            )
        if self.swap_policy not in ("defer", "drain"):
            raise ValueError(
                f"swap_policy must be 'defer' or 'drain', "
                f"got {self.swap_policy!r}"
            )

    def with_temporal(self, params: TemporalParams) -> DigestConfig:
        """Copy with different temporal-grouping parameters."""
        return replace(self, temporal=params)

    def with_workers(self, n_workers: int) -> DigestConfig:
        """Copy with a different worker count for the sharded engine."""
        return replace(self, n_workers=n_workers)

    def with_window(self, window: float) -> DigestConfig:
        """Copy with a different association-rule window."""
        return replace(self, window=window)

    def with_checkpointing(
        self, path: str, interval: float
    ) -> DigestConfig:
        """Copy with periodic streaming checkpoints enabled."""
        return replace(
            self, checkpoint_path=path, checkpoint_interval=interval
        )

    def with_shedding(
        self, max_open_messages: int, shed_policy: str = "oldest"
    ) -> DigestConfig:
        """Copy with bounded-memory load shedding enabled."""
        return replace(
            self,
            max_open_messages=max_open_messages,
            shed_policy=shed_policy,
        )

    def with_swap_policy(self, swap_policy: str) -> DigestConfig:
        """Copy with a different knowledge hot-swap policy."""
        return replace(self, swap_policy=swap_policy)

    def only_passes(
        self, temporal: bool = True, rules: bool = True, cross: bool = True
    ) -> DigestConfig:
        """Copy with a subset of grouping passes enabled."""
        return replace(
            self,
            enable_temporal=temporal,
            enable_rules=rules,
            enable_cross_router=cross,
        )
