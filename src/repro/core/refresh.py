"""Periodic knowledge refresh — the offline loop of Figure 1.

"The above domain knowledge learning process will be periodically run
(offline) to incorporate the latest changes to router hardware and
software configurations."  :class:`KnowledgeRefresher` implements that
loop over an existing :class:`KnowledgeBase`:

* templates: learn from the new period and merge — previously unseen
  error codes gain templates, known codes keep their established ones
  (stable template keys are what historical frequencies hang off);
* rules: one conservative :meth:`RuleStore.update` per period;
* frequencies: exponentially decayed so old behaviour fades at a
  configurable half life;
* configs: re-parsed when provided (links move, routers appear).
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.knowledge import KnowledgeBase
from repro.core.syslogplus import Augmenter
from repro.locations.configparse import parse_configs
from repro.mining.rulestore import RuleUpdateDelta
from repro.syslog.message import SyslogMessage
from repro.syslog.stream import sort_messages
from repro.templates.learner import TemplateLearner
from repro.utils.timeutils import DAY


@dataclass(frozen=True)
class RefreshReport:
    """What one refresh period changed."""

    n_messages: int
    new_template_codes: tuple[str, ...]
    rules: RuleUpdateDelta
    decay_applied: float

    def to_dict(self) -> dict:
        """JSON-ready form; promotion rejections embed this summary."""
        return {
            "n_messages": self.n_messages,
            "new_template_codes": list(self.new_template_codes),
            "rules": self.rules.to_dict(),
            "decay_applied": self.decay_applied,
        }

    def to_json(self) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=1)

    @classmethod
    def from_dict(cls, payload: dict) -> RefreshReport:
        """Reconstruct a report serialized by :meth:`to_dict`."""
        return cls(
            n_messages=payload["n_messages"],
            new_template_codes=tuple(payload["new_template_codes"]),
            rules=RuleUpdateDelta.from_dict(payload["rules"]),
            decay_applied=payload["decay_applied"],
        )

    @classmethod
    def from_json(cls, text: str) -> RefreshReport:
        """Reconstruct a report serialized by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass
class KnowledgeRefresher:
    """Applies periodic offline refreshes to a knowledge base in place.

    Parameters
    ----------
    kb:
        The knowledge base to maintain.
    learner:
        Template learner used for codes the base has never seen.
    frequency_half_life_days:
        Half life of the historical frequency counts.  ``None`` disables
        decay (frequencies keep accumulating, as a pure count would).
    """

    kb: KnowledgeBase
    learner: TemplateLearner = field(default_factory=TemplateLearner)
    frequency_half_life_days: float | None = 56.0

    def __post_init__(self) -> None:
        half_life = self.frequency_half_life_days
        if half_life is not None and not (
            half_life > 0 and math.isfinite(half_life)
        ):
            raise ValueError(
                "frequency_half_life_days must be > 0 and finite when "
                f"set (got {half_life!r}); use None to disable decay"
            )

    def refresh(
        self,
        period_messages: Iterable[SyslogMessage],
        configs: Sequence[str] | None = None,
    ) -> RefreshReport:
        """Fold one period (typically a week) of history into the base."""
        messages = sort_messages(period_messages)
        if not messages:
            return RefreshReport(
                n_messages=0,
                new_template_codes=(),
                rules=RuleUpdateDelta((), (), len(self.kb.rules)),
                decay_applied=1.0,
            )
        if configs is not None:
            self.kb.dictionary = parse_configs(configs)

        # Templates for codes the base has never seen.
        known_codes = set(self.kb.templates.by_code)
        unseen = [m for m in messages if m.error_code not in known_codes]
        new_codes: tuple[str, ...] = ()
        if unseen:
            learned = self.learner.learn(unseen)
            new_codes = tuple(sorted(learned.by_code))
            self.kb.templates.merge(learned)

        # Augment with the (possibly grown) template set.
        augmenter = Augmenter(self.kb.templates, self.kb.dictionary)
        plus_stream = augmenter.augment_all(messages)

        # Conservative rule update.
        delta = self.kb.rules.update(
            [(p.timestamp, p.router, p.template_key) for p in plus_stream]
        )

        # Frequency decay + accumulation.
        span_days = max(
            (messages[-1].timestamp - messages[0].timestamp) / DAY, 1e-6
        )
        decay = 1.0
        if self.frequency_half_life_days is not None:
            decay = math.pow(
                0.5, span_days / self.frequency_half_life_days
            )
            for key in list(self.kb.frequencies):
                decayed = self.kb.frequencies[key] * decay
                if decayed < 0.01:
                    del self.kb.frequencies[key]
                else:
                    self.kb.frequencies[key] = decayed
            self.kb.history_days = (
                self.kb.history_days * decay + span_days
            )
        else:
            self.kb.history_days += span_days
        for plus in plus_stream:
            key = (plus.router, plus.template_key)
            self.kb.frequencies[key] = self.kb.frequencies.get(key, 0) + 1

        return RefreshReport(
            n_messages=len(messages),
            new_template_codes=new_codes,
            rules=delta,
            decay_applied=decay,
        )


def refresh_candidate(
    active: KnowledgeBase,
    period_messages: Iterable[SyslogMessage],
    configs: Sequence[str] | None = None,
    learner: TemplateLearner | None = None,
    frequency_half_life_days: float | None = 56.0,
) -> tuple[KnowledgeBase, RefreshReport]:
    """Refresh a *clone* of ``active``, leaving the original untouched.

    The safe-lifecycle entry point (DESIGN.md §9): the returned candidate
    carries the refreshed knowledge and can be handed to the promotion
    gate; ``active`` keeps serving unchanged whatever the gate decides.
    """
    candidate = active.clone()
    refresher = KnowledgeRefresher(
        candidate,
        learner=learner if learner is not None else TemplateLearner(),
        frequency_half_life_days=frequency_half_life_days,
    )
    report = refresher.refresh(period_messages, configs)
    return candidate, report
