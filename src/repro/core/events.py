"""Network events: the digest's output unit."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.syslogplus import SyslogPlus
from repro.locations.model import Location


@dataclass
class NetworkEvent:
    """One digested network event (a group of related Syslog+ messages).

    ``score`` is filled in by prioritization; ``label`` by presentation.
    """

    messages: list[SyslogPlus]
    score: float = 0.0
    label: str = ""
    # Cache of (message fingerprint, summary): recomputed whenever the
    # message list changes, so post-construction mutation cannot serve a
    # stale summary.
    _summary_cache: tuple[tuple[int, ...], list[Location]] | None = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        if not self.messages:
            raise ValueError("an event needs at least one message")
        self.messages.sort(key=lambda p: (p.timestamp, p.index))

    @property
    def start_ts(self) -> float:
        """Timestamp of the first message."""
        return self.messages[0].timestamp

    @property
    def end_ts(self) -> float:
        """Timestamp of the last message."""
        return self.messages[-1].timestamp

    @property
    def n_messages(self) -> int:
        """Number of raw messages grouped into this event."""
        return len(self.messages)

    @property
    def routers(self) -> tuple[str, ...]:
        """Routers the event touches, sorted."""
        return tuple(sorted({p.router for p in self.messages}))

    @property
    def template_keys(self) -> tuple[str, ...]:
        """Distinct template keys in the event, sorted."""
        return tuple(sorted({p.template_key for p in self.messages}))

    @property
    def error_codes(self) -> tuple[str, ...]:
        """Distinct error codes in the event, sorted."""
        return tuple(sorted({p.message.error_code for p in self.messages}))

    @property
    def indices(self) -> tuple[int, ...]:
        """Raw-message indices, the paper's retrieval handle."""
        return tuple(p.index for p in self.messages)

    def location_summary(self) -> list[Location]:
        """Per router, the most common highest-level location (Section 4.2.4)."""
        fingerprint = tuple(p.index for p in self.messages)
        if (
            self._summary_cache is not None
            and self._summary_cache[0] == fingerprint
        ):
            return self._summary_cache[1]
        per_router: dict[str, Counter[Location]] = {}
        for plus in self.messages:
            per_router.setdefault(plus.router, Counter())[
                plus.primary_location
            ] += 1
        summary: list[Location] = []
        for router in sorted(per_router):
            counter = per_router[router]
            best_level = max(loc.level for loc in counter)
            candidates = [
                (count, loc)
                for loc, count in counter.items()
                if loc.level == best_level
            ]
            candidates.sort(key=lambda pair: (-pair[0], pair[1]))
            summary.append(candidates[0][1])
        self._summary_cache = (fingerprint, summary)
        return summary

    def states(self, dictionary) -> tuple[str, ...]:
        """States of the involved routers, for ticket correlation."""
        out = {
            site
            for router in self.routers
            if (site := dictionary.site_of(router)) is not None
        }
        return tuple(sorted(out))
