"""Versioned, fingerprinted knowledge store (DESIGN.md §9).

The paper's offline loop periodically re-learns domain knowledge and
hands the online system a file.  In an operational deployment that
hand-off is exactly where a bad refresh silently degrades every
downstream digest, so this store makes it safe:

* every committed :class:`~repro.core.knowledge.KnowledgeBase` becomes
  an immutable, monotonically numbered version (``kb-v000007.json``)
  with a sidecar meta file carrying its sha256 fingerprint;
* all writes are atomic (write temp, fsync, rename) — a crash mid-commit
  or mid-promote leaves either the old or the new version active, never
  a mixed store;
* the served version is one small ``ACTIVE`` pointer file, so promotion
  and rollback are each a single atomic rename;
* every lifecycle transition (commit, activate, reject, rollback,
  prune) is journaled to ``events.jsonl`` for ``syslogdigest kb-log``;
* retention pruning keeps the store bounded without ever deleting the
  active version.

Schema safety: the store refuses meta files written by a newer store
format, and version payloads go through
:meth:`KnowledgeBase.load`, which raises
:class:`~repro.core.knowledge.KnowledgeFormatError` on unknown payload
versions instead of failing deep inside deserialization.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.knowledge import KnowledgeBase
from repro.obs import KB_ACTIVE_VERSION, KB_ROLLBACKS, get_registry
from repro.utils.fsio import atomic_write_text, fsync_dir

#: On-disk format of the store's meta/pointer files (the knowledge
#: payloads carry their own ``format_version``).
STORE_FORMAT = 1

_ACTIVE = "ACTIVE"
_JOURNAL = "events.jsonl"


class KnowledgeStoreError(ValueError):
    """The store refused an operation (missing/foreign/corrupt state)."""


@dataclass(frozen=True)
class VersionInfo:
    """Header summary of one stored knowledge version."""

    version: int
    fingerprint: str
    created_ts: float
    n_templates: int
    n_rules: int
    note: str
    path: str

    def to_dict(self) -> dict:
        """JSON-ready form (the sidecar meta file's payload)."""
        return {
            "store_format": STORE_FORMAT,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "created_ts": self.created_ts,
            "n_templates": self.n_templates,
            "n_rules": self.n_rules,
            "note": self.note,
        }


def _atomic_write_text(path: Path, text: str) -> None:
    """write-temp → fsync → rename → fsync dir (fsio discipline, §14).

    Delegates to :func:`repro.utils.fsio.atomic_write_text` so store
    writes share the crash-durable rename and the chaos fault seam with
    checkpoints and journals.
    """
    atomic_write_text(path, text)


class KnowledgeStore:
    """A directory of versioned knowledge bases with one active pointer."""

    def __init__(self, root: str | Path, retention: int = 8) -> None:
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.root = Path(root)
        self.retention = retention
        self.root.mkdir(parents=True, exist_ok=True)

    # -------------------------------------------------------------- layout

    def _kb_path(self, version: int) -> Path:
        return self.root / f"kb-v{version:06d}.json"

    def _meta_path(self, version: int) -> Path:
        return self.root / f"kb-v{version:06d}.meta.json"

    def _journal(self, kind: str, version: int | None, **extra) -> None:
        entry = {"ts": time.time(), "kind": kind, "version": version}
        entry.update(extra)
        with open(self.root / _JOURNAL, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")

    def _read_meta(self, version: int) -> VersionInfo:
        path = self._meta_path(version)
        if not path.exists():
            raise KnowledgeStoreError(
                f"no version {version} in store {self.root}"
            )
        payload = json.loads(path.read_text(encoding="utf-8"))
        found = payload.get("store_format")
        if found != STORE_FORMAT:
            raise KnowledgeStoreError(
                f"{path} was written by store format {found!r}; "
                f"this build supports {STORE_FORMAT}"
            )
        return VersionInfo(
            version=payload["version"],
            fingerprint=payload["fingerprint"],
            created_ts=payload["created_ts"],
            n_templates=payload["n_templates"],
            n_rules=payload["n_rules"],
            note=payload.get("note", ""),
            path=str(self._kb_path(version)),
        )

    # ----------------------------------------------------------- inspection

    def version_ids(self) -> list[int]:
        """All retained version ids, ascending."""
        ids = []
        for path in self.root.glob("kb-v*.meta.json"):
            stem = path.name[len("kb-v") : -len(".meta.json")]
            if stem.isdigit():
                ids.append(int(stem))
        return sorted(ids)

    def versions(self) -> list[VersionInfo]:
        """Header summaries of every retained version, ascending."""
        return [self._read_meta(v) for v in self.version_ids()]

    def active_version(self) -> int | None:
        """The currently served version id (None on a fresh store)."""
        pointer = self.root / _ACTIVE
        if not pointer.exists():
            return None
        payload = json.loads(pointer.read_text(encoding="utf-8"))
        if payload.get("store_format") != STORE_FORMAT:
            raise KnowledgeStoreError(
                f"{pointer} was written by store format "
                f"{payload.get('store_format')!r}; this build supports "
                f"{STORE_FORMAT}"
            )
        return payload["version"]

    def log(self) -> list[dict]:
        """The lifecycle journal, oldest first."""
        path = self.root / _JOURNAL
        if not path.exists():
            return []
        return [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]

    # -------------------------------------------------------------- loading

    def load(self, version: int, verify: bool = True) -> KnowledgeBase:
        """Load one retained version, verifying its fingerprint."""
        info = self._read_meta(version)
        kb = KnowledgeBase.load(self._kb_path(version))
        if verify and kb.fingerprint() != info.fingerprint:
            raise KnowledgeStoreError(
                f"{info.path} does not match its recorded fingerprint "
                f"{info.fingerprint[:12]}… — the payload was modified "
                "outside the store"
            )
        return kb

    def load_active(self) -> tuple[KnowledgeBase, VersionInfo]:
        """Load the served version plus its header."""
        version = self.active_version()
        if version is None:
            raise KnowledgeStoreError(
                f"store {self.root} has no active version; commit one "
                "with activate=True (e.g. `syslogdigest learn --store`)"
            )
        return self.load(version), self._read_meta(version)

    # ------------------------------------------------------------ mutation

    def commit(
        self,
        kb: KnowledgeBase,
        note: str = "",
        activate: bool = False,
    ) -> VersionInfo:
        """Persist ``kb`` as the next version; optionally activate it.

        Commit order is crash-safe: payload, then meta, then journal,
        then (last) the ``ACTIVE`` pointer — dying between any two steps
        leaves the previously active version serving and at worst an
        orphaned-but-valid new version.
        """
        ids = self.version_ids()
        version = (ids[-1] + 1) if ids else 1
        info = VersionInfo(
            version=version,
            fingerprint=kb.fingerprint(),
            created_ts=time.time(),
            n_templates=len(kb.templates),
            n_rules=len(kb.rules),
            note=note,
            path=str(self._kb_path(version)),
        )
        _atomic_write_text(self._kb_path(version), kb.to_json())
        _atomic_write_text(
            self._meta_path(version), json.dumps(info.to_dict(), indent=1)
        )
        self._journal(
            "commit", version, fingerprint=info.fingerprint, note=note
        )
        if activate:
            self.activate(version)
        self.prune()
        return info

    def activate(self, version: int, _kind: str = "activate") -> None:
        """Atomically point the store at ``version`` (the promote step)."""
        info = self._read_meta(version)  # must exist and be readable
        _atomic_write_text(
            self.root / _ACTIVE,
            json.dumps(
                {
                    "store_format": STORE_FORMAT,
                    "version": version,
                    "fingerprint": info.fingerprint,
                },
                indent=1,
            ),
        )
        self._journal(_kind, version, fingerprint=info.fingerprint)
        registry = get_registry()
        if registry.enabled:
            registry.set_gauge(KB_ACTIVE_VERSION, float(version))

    def record_rejection(self, reasons, version: int | None = None, **extra) -> None:
        """Journal a promotion rejection (the candidate was not stored)."""
        self._journal("reject", version, reasons=list(reasons), **extra)

    def rollback(self, to: int | None = None) -> VersionInfo:
        """One-command rollback to ``to`` (default: previously active).

        With no target, walks the journal backwards for the most recent
        activation of a *different* version than the current one.
        """
        current = self.active_version()
        if to is None:
            for entry in reversed(self.log()):
                if (
                    entry["kind"] in ("activate", "rollback")
                    and entry["version"] != current
                    and entry["version"] in self.version_ids()
                ):
                    to = entry["version"]
                    break
            if to is None:
                raise KnowledgeStoreError(
                    f"store {self.root} has no previously active version "
                    "to roll back to"
                )
        self.activate(to, _kind="rollback")
        registry = get_registry()
        if registry.enabled:
            registry.inc(KB_ROLLBACKS)
        return self._read_meta(to)

    def prune(self) -> list[int]:
        """Drop the oldest versions beyond ``retention``; never the active.

        Returns the pruned version ids (journaled as one entry).
        """
        ids = self.version_ids()
        active = self.active_version()
        keep = set(ids[-self.retention :])
        if active is not None:
            keep.add(active)
        victims = [v for v in ids if v not in keep]
        for version in victims:
            self._kb_path(version).unlink(missing_ok=True)
            self._meta_path(version).unlink(missing_ok=True)
        if victims:
            fsync_dir(self.root)
            self._journal("prune", None, pruned=victims)
        return victims
