"""The three grouping passes and their union-find merge (Section 4.2).

Messages related by *any* pass end up in one group: relations are edges
over message indices and the final groups are the connected components.
That construction is what makes the result independent of the order the
passes run in (Section 4.2.3) — a property the ablation benches verify.

Each pass is implemented as a module-level *edge generator* over a
time-sorted Syslog+ stream.  Generators only relate messages through
their global ``plus.index``, never through list positions, so a generator
run over a per-router shard of the stream produces exactly the edges it
would contribute when run over the whole stream.  That is what the
sharded parallel engine (:mod:`repro.core.parallel`) exploits: the
temporal and rule passes only ever relate messages on the *same* router,
so their edge sets can be computed per shard concurrently and unioned
afterwards without changing the connected components.

The rule and cross-router passes keep their sliding windows indexed by
``template_key``: a new message only probes window entries whose template
can actually relate to it (rule partners for the rule pass, the same
template for the cross-router pass) instead of rescanning every message
in the window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.config import DigestConfig
from repro.core.knowledge import KnowledgeBase
from repro.core.syslogplus import SyslogPlus
from repro.locations.spatial import spatially_matched
from repro.mining.temporal import TemporalParams, TemporalSplitter
from repro.obs import stage_timer
from repro.utils.unionfind import DenseUnionFind, UnionFind

# An edge relates two messages by their global stream indices.
Edge = tuple[int, int]


@dataclass
class GroupingOutcome:
    """Groups plus bookkeeping for reporting."""

    groups: list[list[SyslogPlus]]
    active_rules: set[tuple[str, str]]  # rules that actually fired


def build_rule_partners(
    rule_pairs: set[tuple[str, str]]
) -> dict[str, tuple[str, ...]]:
    """Map each template key to the partner templates it shares a rule with.

    The rule pass only needs to probe window entries whose template is a
    partner of the arriving message's template; everything else can never
    produce an edge.  Self-pairs are dropped — the rule pass relates
    *different* templates only.
    """
    partners: dict[str, set[str]] = {}
    for x, y in rule_pairs:
        if x == y:
            continue
        partners.setdefault(x, set()).add(y)
        partners.setdefault(y, set()).add(x)
    return {key: tuple(sorted(vals)) for key, vals in partners.items()}


def temporal_edges(
    stream: list[SyslogPlus],
    params: TemporalParams,
    reset_after: float | None = None,
) -> list[Edge]:
    """Same template + same location, periodic in time (Section 4.2.1).

    ``reset_after`` bounds the rhythm memory: a splitter whose key has
    been quiet longer than this horizon is recreated from scratch, which
    is exactly what the streaming engine does when it evicts idle
    splitter state.  Keeping the rule identical in both engines is what
    preserves batch/stream grouping equivalence.  ``None`` never resets.
    """
    edges: list[Edge] = []
    splitters: dict[tuple, TemporalSplitter] = {}
    # Each splitter instance gets a serial number; group identity is
    # (serial, group) so a recreated splitter can never be confused with
    # the groups of its predecessor.
    serial_of: dict[tuple, int] = {}
    n_created = 0
    last_member: dict[tuple[int, int], int] = {}
    for plus in stream:
        # Keyed by the Location object itself (its hash is precomputed);
        # building the canonical string key per message is pure overhead.
        key = (
            plus.router,
            plus.template_key,
            plus.primary_location,
        )
        splitter = splitters.get(key)
        if (
            splitter is not None
            and reset_after is not None
            and plus.timestamp - splitter.last_ts > reset_after
        ):
            splitter = None
        if splitter is None:
            splitter = TemporalSplitter(params)
            splitters[key] = splitter
            serial_of[key] = n_created
            n_created += 1
        group = splitter.observe(plus.timestamp)
        group_key = (serial_of[key], group)
        tail = last_member.get(group_key)
        if tail is not None:
            edges.append((tail, plus.index))
        last_member[group_key] = plus.index
    return edges


def rule_edges(
    stream: list[SyslogPlus],
    partners: dict[str, tuple[str, ...]],
    window: float,
    dictionary,
) -> tuple[list[Edge], set[tuple[str, str]]]:
    """Different templates, same router, spatially matched, within W.

    The per-router window is indexed by template key, so each arrival
    probes only the templates that appear as its rule partners —
    O(partner templates) instead of O(window size) per message.
    """
    edges: list[Edge] = []
    active: set[tuple[str, str]] = set()
    # router -> template_key -> deque of (timestamp, message)
    recent: dict[str, dict[str, deque[tuple[float, SyslogPlus]]]] = {}
    for plus in stream:
        by_template = recent.setdefault(plus.router, {})
        horizon = plus.timestamp - window
        for partner in partners.get(plus.template_key, ()):
            queue = by_template.get(partner)
            if not queue:
                continue
            while queue and queue[0][0] < horizon:
                queue.popleft()
            for _ts, other in queue:
                if spatially_matched(
                    dictionary,
                    other.primary_location,
                    plus.primary_location,
                ):
                    edges.append((other.index, plus.index))
                    active.add(
                        (partner, plus.template_key)
                        if partner <= plus.template_key
                        else (plus.template_key, partner)
                    )
        own = by_template.setdefault(plus.template_key, deque())
        while own and own[0][0] < horizon:
            own.popleft()
        own.append((plus.timestamp, plus))
    return edges, active


def cross_router_edges(
    stream: list[SyslogPlus], window: float, dictionary
) -> list[Edge]:
    """Same template on connected locations, almost simultaneous.

    The window is indexed by template key: only entries of the arriving
    message's own template can relate to it.
    """
    edges: list[Edge] = []
    # template_key -> deque of (timestamp, message, its local locations);
    # local_locations() is computed once per message here, not once per
    # compared pair.
    recent: dict[str, deque[tuple[float, SyslogPlus, tuple]]] = {}
    for plus in stream:
        queue = recent.setdefault(plus.template_key, deque())
        horizon = plus.timestamp - window
        while queue and queue[0][0] < horizon:
            queue.popleft()
        router = plus.router
        locs = plus.local_locations()
        for _ts, other, other_locs in queue:
            if other.router == router:
                continue
            if _locations_touch(dictionary, other_locs, locs):
                edges.append((other.index, plus.index))
        queue.append((plus.timestamp, plus, locs))
    return edges


def _locations_touch(dictionary, locs_a, locs_b) -> bool:
    """Pairwise core of :func:`related_across_routers`."""
    for loc_a in locs_a:
        for loc_b in locs_b:
            if loc_a.router == loc_b.router:
                if spatially_matched(dictionary, loc_a, loc_b):
                    return True
            elif dictionary.connected(loc_a, loc_b):
                return True
    return False


def related_across_routers(dictionary, a: SyslogPlus, b: SyslogPlus) -> bool:
    """True when any known locations of the two messages touch.

    Covers the two ends of one link/session (``connected`` in the
    dictionary) and a message naming the far router's component directly
    (e.g. a BGP neighbor IP resolving to the peer's interface).
    """
    return _locations_touch(
        dictionary, a.local_locations(), b.local_locations()
    )


def _union_edges(uf, edges, pos: dict[int, int] | None) -> None:
    """Union edges into ``uf``, translating via ``pos`` when given."""
    if pos is None:
        for a, b in edges:
            uf.union(a, b)
    else:
        for a, b in edges:
            uf.union(pos[a], pos[b])


def collect_outcome(
    stream: list[SyslogPlus],
    uf: UnionFind | DenseUnionFind,
    active_rules: set[tuple[str, str]],
    pos: dict[int, int] | None = None,
) -> GroupingOutcome:
    """Materialize connected components into the canonical group order.

    ``pos`` maps global stream indices to the dense ``0..n-1`` ids a
    :class:`DenseUnionFind` was built over; omit it when ``uf`` is keyed
    by the global indices directly.
    """
    members: dict[int, list[SyslogPlus]] = {}
    if pos is None:
        for plus in stream:
            members.setdefault(uf.find(plus.index), []).append(plus)
    else:
        for plus in stream:
            members.setdefault(uf.find(pos[plus.index]), []).append(plus)
    groups = sorted(
        members.values(), key=lambda g: (g[0].timestamp, g[0].index)
    )
    return GroupingOutcome(groups=groups, active_rules=active_rules)


class GroupingEngine:
    """Batch grouping of a time-sorted Syslog+ stream."""

    def __init__(self, kb: KnowledgeBase, config: DigestConfig) -> None:
        self._kb = kb
        self._config = config
        self._rule_pairs = kb.rule_pairs()
        self._partners = build_rule_partners(self._rule_pairs)

    def group(self, stream: list[SyslogPlus]) -> GroupingOutcome:
        """Group the whole stream; input must be time-sorted."""
        # The batch knows its universe up front, so the merge runs over a
        # dense union-find (list indexing) with one dict hop per edge
        # endpoint to translate global indices.
        pos = {plus.index: i for i, plus in enumerate(stream)}
        uf = DenseUnionFind(len(stream))
        active_rules: set[tuple[str, str]] = set()
        if self._config.enable_temporal:
            with stage_timer("temporal_pass"):
                self._temporal_pass(stream, uf, pos)
        if self._config.enable_rules:
            with stage_timer("rule_pass"):
                self._rule_pass(stream, uf, active_rules, pos)
        if self._config.enable_cross_router:
            with stage_timer("cross_router_pass"):
                self._cross_router_pass(stream, uf, pos)
        with stage_timer("collect"):
            return collect_outcome(stream, uf, active_rules, pos)

    # ------------------------------------------------------------- temporal

    def _temporal_pass(
        self,
        stream: list[SyslogPlus],
        uf,
        pos: dict[int, int] | None = None,
    ) -> None:
        """Same template + same location, periodic in time (Section 4.2.1)."""
        edges = temporal_edges(
            stream, self._kb.temporal, self._config.flush_after
        )
        _union_edges(uf, edges, pos)

    # ------------------------------------------------------------- rule-based

    def _rule_pass(
        self,
        stream: list[SyslogPlus],
        uf,
        active_rules: set[tuple[str, str]],
        pos: dict[int, int] | None = None,
    ) -> None:
        """Different templates, same router, spatially matched, within W."""
        edges, active = rule_edges(
            stream, self._partners, self._config.window, self._kb.dictionary
        )
        _union_edges(uf, edges, pos)
        active_rules |= active

    # ------------------------------------------------------------- cross-router

    def _cross_router_pass(
        self,
        stream: list[SyslogPlus],
        uf,
        pos: dict[int, int] | None = None,
    ) -> None:
        """Same template on connected locations, almost simultaneous."""
        edges = cross_router_edges(
            stream, self._config.cross_router_window, self._kb.dictionary
        )
        _union_edges(uf, edges, pos)

    def _related_across_routers(
        self, a: SyslogPlus, b: SyslogPlus
    ) -> bool:
        """Kept for compatibility; see :func:`related_across_routers`."""
        return related_across_routers(self._kb.dictionary, a, b)
