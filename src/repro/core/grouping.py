"""The three grouping passes and their union-find merge (Section 4.2).

Messages related by *any* pass end up in one group: relations are edges
over message indices and the final groups are the connected components.
That construction is what makes the result independent of the order the
passes run in (Section 4.2.3) — a property the ablation benches verify.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.config import DigestConfig
from repro.core.knowledge import KnowledgeBase
from repro.core.syslogplus import SyslogPlus
from repro.locations.spatial import spatially_matched
from repro.mining.temporal import TemporalSplitter
from repro.utils.unionfind import UnionFind


@dataclass
class GroupingOutcome:
    """Groups plus bookkeeping for reporting."""

    groups: list[list[SyslogPlus]]
    active_rules: set[tuple[str, str]]  # rules that actually fired


class GroupingEngine:
    """Batch grouping of a time-sorted Syslog+ stream."""

    def __init__(self, kb: KnowledgeBase, config: DigestConfig) -> None:
        self._kb = kb
        self._config = config
        self._rule_pairs = kb.rule_pairs()

    def group(self, stream: list[SyslogPlus]) -> GroupingOutcome:
        """Group the whole stream; input must be time-sorted."""
        uf: UnionFind = UnionFind(range(len(stream)))
        active_rules: set[tuple[str, str]] = set()
        if self._config.enable_temporal:
            self._temporal_pass(stream, uf)
        if self._config.enable_rules:
            self._rule_pass(stream, uf, active_rules)
        if self._config.enable_cross_router:
            self._cross_router_pass(stream, uf)

        members: dict[int, list[SyslogPlus]] = {}
        for i, plus in enumerate(stream):
            members.setdefault(uf.find(i), []).append(plus)
        groups = sorted(
            members.values(), key=lambda g: (g[0].timestamp, g[0].index)
        )
        return GroupingOutcome(groups=groups, active_rules=active_rules)

    # ------------------------------------------------------------- temporal

    def _temporal_pass(
        self, stream: list[SyslogPlus], uf: UnionFind
    ) -> None:
        """Same template + same location, periodic in time (Section 4.2.1)."""
        splitters: dict[tuple, TemporalSplitter] = {}
        last_member: dict[tuple, int] = {}  # (key, group) -> last index
        for i, plus in enumerate(stream):
            key = (
                plus.router,
                plus.template_key,
                plus.primary_location.key(),
            )
            splitter = splitters.get(key)
            if splitter is None:
                splitter = TemporalSplitter(self._kb.temporal)
                splitters[key] = splitter
            group = splitter.observe(plus.timestamp)
            group_key = (key, group)
            if group_key in last_member:
                uf.union(last_member[group_key], i)
            last_member[group_key] = i

    # ------------------------------------------------------------- rule-based

    def _rule_pass(
        self,
        stream: list[SyslogPlus],
        uf: UnionFind,
        active_rules: set[tuple[str, str]],
    ) -> None:
        """Different templates, same router, spatially matched, within W."""
        window = self._config.window
        recent: dict[str, deque[tuple[float, int]]] = {}
        for i, plus in enumerate(stream):
            queue = recent.setdefault(plus.router, deque())
            while queue and queue[0][0] < plus.timestamp - window:
                queue.popleft()
            for _ts, j in queue:
                other = stream[j]
                if other.template_key == plus.template_key:
                    continue
                pair = tuple(sorted((other.template_key, plus.template_key)))
                if pair not in self._rule_pairs:
                    continue
                if spatially_matched(
                    self._kb.dictionary,
                    other.primary_location,
                    plus.primary_location,
                ):
                    uf.union(i, j)
                    active_rules.add(pair)  # type: ignore[arg-type]
            queue.append((plus.timestamp, i))

    # ------------------------------------------------------------- cross-router

    def _cross_router_pass(
        self, stream: list[SyslogPlus], uf: UnionFind
    ) -> None:
        """Same template on connected locations, almost simultaneous."""
        window = self._config.cross_router_window
        recent: deque[tuple[float, int]] = deque()
        for i, plus in enumerate(stream):
            while recent and recent[0][0] < plus.timestamp - window:
                recent.popleft()
            for _ts, j in recent:
                other = stream[j]
                if other.template_key != plus.template_key:
                    continue
                if other.router == plus.router:
                    continue
                if self._related_across_routers(other, plus):
                    uf.union(i, j)
            recent.append((plus.timestamp, i))

    def _related_across_routers(
        self, a: SyslogPlus, b: SyslogPlus
    ) -> bool:
        """True when any known locations of the two messages touch.

        Covers the two ends of one link/session (``connected`` in the
        dictionary) and a message naming the far router's component
        directly (e.g. a BGP neighbor IP resolving to the peer's
        interface).
        """
        dictionary = self._kb.dictionary
        for loc_a in a.local_locations():
            for loc_b in b.local_locations():
                if loc_a.router == loc_b.router:
                    if spatially_matched(dictionary, loc_a, loc_b):
                        return True
                elif dictionary.connected(loc_a, loc_b):
                    return True
        return False
