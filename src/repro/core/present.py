"""Digest presentation (Section 4.2.4).

Each event becomes one well-formatted line:

    ``start | end | locations | event type``

The event-type field synthesizes a friendly name from the signatures in
the group — e.g. a group containing both the down and up sub-types of
``LINK-3-UPDOWN`` reads "link flap" — falling back to the raw signature
patterns, which a domain expert could later name (the paper makes expert
naming optional).
"""

from __future__ import annotations

import re

from repro.core.events import NetworkEvent
from repro.templates.signature import Template
from repro.utils.timeutils import format_ts

_DOWNISH = re.compile(
    r"\b(down|Down|DOWN|lost|loss|failed|failure|Idle|removed|not)\b"
)
_UPISH = re.compile(
    r"\b(up|Up|UP|established|Established|recovered|operational|inserted)\b"
)

# Friendly names for error-code families (vendor mnemonics).
_FAMILY_NAMES = {
    "LINK": "link",
    "LINEPROTO": "line protocol",
    "CONTROLLER": "controller",
    "BGP": "BGP session",
    "OSPF": "OSPF adjacency",
    "ISIS": "ISIS adjacency",
    "PIM": "PIM neighbor",
    "SNMP-WARNING-LINKDOWN": "link",
    "SVCMGR": "SAP status",
    "MPLS": "LSP",
    "OIR": "line card",
    "CHASSIS": "chassis MDA",
    "SYS": "system",
    "SYSTEM": "system",
    "ENVM": "environment",
    "TCP": "TCP authentication",
    "SEC": "access list",
    "SECURITY": "login",
    "NTP": "NTP",
    "PORT": "port alarm",
}


# Codes whose facility prefix is misleading (SNMP traps describe links).
_CODE_OVERRIDES = {
    "SNMP-WARNING-linkDown": "link",
    "SNMP-WARNING-linkup": "link",
    "SNMP-3-AUTHFAIL": "SNMP authentication",
}


def _family(error_code: str) -> str:
    override = _CODE_OVERRIDES.get(error_code)
    if override is not None:
        return override
    head = error_code.split("-", 1)[0]
    return _FAMILY_NAMES.get(head, head.lower())


class LabelRegistry:
    """Operator-assigned names for event signatures.

    The paper makes expert naming optional ("Domain experts can certainly
    assign a name for each type of event").  A registered name applies
    when every required error-code fragment appears among the event's
    codes; the most specific (most fragments) match wins, and unmatched
    events fall back to the synthesized :func:`event_label`.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[str, frozenset[str]]] = []

    def register(self, name: str, required_code_fragments: set[str]) -> None:
        """Name events whose codes contain all the given fragments."""
        if not required_code_fragments:
            raise ValueError("a label needs at least one code fragment")
        self._entries.append((name, frozenset(required_code_fragments)))
        self._entries.sort(key=lambda e: -len(e[1]))

    def __len__(self) -> int:
        return len(self._entries)

    def label_for(self, error_codes: tuple[str, ...]) -> str | None:
        """The most specific registered name matching these codes."""
        for name, fragments in self._entries:
            if all(
                any(fragment in code for code in error_codes)
                for fragment in fragments
            ):
                return name
        return None

    def label_event(self, event: NetworkEvent) -> str:
        """Registered name, or the synthesized fallback label."""
        named = self.label_for(event.error_codes)
        if named is not None:
            return named
        return event_label([plus.template for plus in event.messages])


def event_label(templates: list[Template]) -> str:
    """Synthesize the event-type field from the group's templates.

    Families present with both a down-ish and an up-ish sub-type are named
    "<family> flap"; one-sided families keep the direction.
    """
    directions: dict[str, set[str]] = {}
    for template in templates:
        text = " ".join(template.words) or template.error_code
        family = _family(template.error_code)
        bucket = directions.setdefault(family, set())
        if _DOWNISH.search(text):
            bucket.add("down")
        if _UPISH.search(text):
            bucket.add("up")
        if not bucket:
            bucket.add("event")
    parts = []
    for family in sorted(directions):
        seen = directions[family]
        if {"down", "up"} <= seen:
            parts.append(f"{family} flap")
        elif "down" in seen:
            parts.append(f"{family} down")
        elif "up" in seen:
            parts.append(f"{family} up")
        else:
            parts.append(f"{family} event")
    return ", ".join(parts)


def present_event(event: NetworkEvent, max_locations: int = 4) -> str:
    """Render the one-line digest form of an event."""
    locations = event.location_summary()
    shown = " ".join(str(loc) for loc in locations[:max_locations])
    if len(locations) > max_locations:
        shown += f" (+{len(locations) - max_locations} more)"
    label = event.label or event_label(
        [plus.template for plus in event.messages]
    )
    return (
        f"{format_ts(event.start_ts)}|{format_ts(event.end_ts)}|"
        f"{shown}|{label}|{event.n_messages} msgs|score={event.score:.1f}"
    )


def present_digest(events: list[NetworkEvent], top: int | None = None) -> str:
    """Render the ranked digest, one line per event."""
    selected = events if top is None else events[:top]
    return "\n".join(present_event(e) for e in selected)
