"""Checkpoint/restore for the streaming digester (DESIGN.md §8).

A checkpoint is one file holding a versioned, pickled capture of
:meth:`repro.core.stream.DigestStream.snapshot` plus a small header.
Writes are atomic — the payload goes to a temp file in the same
directory, is fsynced, then renamed over the target — so a crash during
checkpointing can never leave a truncated checkpoint behind; the
previous one survives intact.

Crash recovery is checkpoint + tail replay: the snapshot records how
many messages of the (deterministically sorted) feed were admitted, so
``resume`` skips exactly that many and pushes the rest.  The resumed
stream's output is byte-identical to an uninterrupted run — a test pins
that for every executor lane (serial, threads, and worker processes),
including killing the worker processes mid-stream and resuming on a
fresh set.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import DigestConfig
from repro.core.knowledge import KnowledgeBase
from repro.core.modelstore import KnowledgeStore
from repro.core.stream import SNAPSHOT_VERSION, DigestStream
from repro.obs import (
    CHECKPOINT_BYTES,
    CHECKPOINT_WRITES,
    get_registry,
)
from repro.utils.fsio import atomic_write_bytes, fsync_dir

#: File-format version of the checkpoint container (the embedded
#: snapshot carries its own :data:`~repro.core.stream.SNAPSHOT_VERSION`).
CHECKPOINT_FORMAT = 1

_MAGIC = "syslogdigest-checkpoint"


def previous_checkpoint_path(path: str | Path) -> Path:
    """The ``.prev`` sibling holding the last superseded checkpoint."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


@dataclass(frozen=True)
class CheckpointInfo:
    """Header summary of one checkpoint file."""

    path: str
    format: int
    snapshot_version: int
    stream_clock: float | None
    n_admitted: int
    n_open: int
    n_bytes: int
    # Model-store version the stream served when checkpointed (None when
    # the stream was built from a bare KnowledgeBase).
    kb_version: int | str | None = None
    # Ingest front-end state, when one was attached: whether the
    # checkpoint carries it, and how many messages its reorder buffer
    # held at capture time.
    has_ingest: bool = False
    n_buffered: int = 0


def write_checkpoint(
    path: str | Path, stream: DigestStream
) -> CheckpointInfo:
    """Atomically persist the stream's state; returns a header summary.

    Write-temp-then-rename in the target directory: a crash mid-write
    leaves the previous checkpoint untouched, and the rename is atomic
    on POSIX filesystems.  The write is power-cut durable (the parent
    directory is fsynced after the rename), and the superseded
    checkpoint is retained as ``<name>.prev`` so a corrupt newest file
    can fall back one generation (:func:`load_resume_state`).  Also
    marks the stream as freshly checkpointed (its
    ``checkpoint_age_seconds`` health key resets).

    Raises ``OSError`` (real or injected ENOSPC/EIO) with the previous
    checkpoint — and its ``.prev`` — untouched; callers degrade rather
    than crash (DESIGN.md §14).
    """
    path = Path(path)
    snapshot = stream.snapshot()
    payload = {
        "magic": _MAGIC,
        "format": CHECKPOINT_FORMAT,
        "snapshot": snapshot,
    }
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    # Demote the current checkpoint only after the temp file for its
    # successor is safely on disk — atomic_write_bytes raises before
    # renaming on failure, so a failed write leaves both generations
    # exactly as they were.
    prev = previous_checkpoint_path(path)
    tmp = path.with_name(path.name + ".new")
    atomic_write_bytes(tmp, blob)
    if path.exists():
        os.replace(path, prev)
    os.replace(tmp, path)
    fsync_dir(path.parent)
    stream.note_checkpoint()
    registry = get_registry()
    if registry.enabled:
        registry.inc(CHECKPOINT_WRITES)
        registry.set_gauge(CHECKPOINT_BYTES, len(blob))
    ingest_state = snapshot.get("ingest")
    return CheckpointInfo(
        path=str(path),
        format=CHECKPOINT_FORMAT,
        snapshot_version=snapshot["version"],
        stream_clock=snapshot["last_ts"],
        n_admitted=snapshot["n_admitted"],
        n_open=len(snapshot["open"]),
        n_bytes=len(blob),
        kb_version=snapshot["kb_version"],
        has_ingest=ingest_state is not None,
        n_buffered=len(ingest_state["buffer"]) if ingest_state else 0,
    )


def read_checkpoint(path: str | Path) -> dict:
    """Load and validate a checkpoint file; returns the snapshot dict."""
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    if (
        not isinstance(payload, dict)
        or payload.get("magic") != _MAGIC
    ):
        raise ValueError(f"{path} is not a syslogdigest checkpoint")
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"checkpoint format {payload.get('format')!r} != "
            f"supported {CHECKPOINT_FORMAT}"
        )
    snapshot = payload["snapshot"]
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {snapshot.get('version')!r} != "
            f"supported {SNAPSHOT_VERSION}"
        )
    return snapshot


def load_resume_state(
    path: str | Path,
) -> tuple[dict, Path, Exception | None]:
    """Load the newest readable checkpoint generation for ``path``.

    Returns ``(snapshot, used_path, error)``.  Normally ``used_path``
    is ``path`` itself and ``error`` is None.  When the newest file is
    corrupt (torn write on a dying disk, bad sector) but its ``.prev``
    sibling restores cleanly, falls back one generation: ``used_path``
    is the ``.prev`` path and ``error`` is the exception the newest
    file raised — callers must surface that loudly (the serve tenant
    journals a ``checkpoint-fallback`` entry).  When the newest file is
    missing entirely, restores directly from ``.prev`` with no error.
    Re-raises the newest file's failure when no generation is readable.
    """
    path = Path(path)
    prev = previous_checkpoint_path(path)
    primary_error: Exception | None = None
    if path.exists():
        try:
            return read_checkpoint(path), path, None
        except Exception as exc:  # corrupt: fall back a generation
            primary_error = exc
    if prev.exists():
        try:
            return read_checkpoint(prev), prev, primary_error
        except Exception:
            if primary_error is not None:
                raise primary_error
            raise
    if primary_error is not None:
        raise primary_error
    raise FileNotFoundError(f"no checkpoint at {path} (or {prev})")


def checkpoint_info(path: str | Path) -> CheckpointInfo:
    """Header summary of a checkpoint without restoring it."""
    path = Path(path)
    snapshot = read_checkpoint(path)
    ingest_state = snapshot.get("ingest")
    return CheckpointInfo(
        path=str(path),
        format=CHECKPOINT_FORMAT,
        snapshot_version=snapshot["version"],
        stream_clock=snapshot["last_ts"],
        n_admitted=snapshot["n_admitted"],
        n_open=len(snapshot["open"]),
        n_bytes=path.stat().st_size,
        kb_version=snapshot["kb_version"],
        has_ingest=ingest_state is not None,
        n_buffered=len(ingest_state["buffer"]) if ingest_state else 0,
    )


def restore_stream(
    path: str | Path,
    kb: KnowledgeBase | None = None,
    config: DigestConfig | None = None,
    store: KnowledgeStore | None = None,
    stream_workers: str | None = None,
) -> DigestStream:
    """Rebuild a :class:`DigestStream` from a checkpoint file.

    The knowledge base comes from either ``kb`` (explicit) or ``store``
    (a :class:`~repro.core.modelstore.KnowledgeStore`, from which the
    snapshot's recorded ``kb_version`` is loaded — fingerprint-verified,
    and independent of whatever the store's *active* version is now, so
    a promotion that happened after the checkpoint cannot leak into the
    restored state).  The stream is constructed with the *checkpointed*
    config by default (grouping state is only valid under the parameters
    it was built with); pass ``config`` to assert a specific one — a
    mismatch raises rather than silently regrouping differently.

    ``stream_workers`` overrides the executor lane alone: the lane is an
    execution detail — every lane groups byte-identically — so a stream
    checkpointed under threads can resume on worker processes (or vice
    versa) with no effect on output.
    """
    snapshot = read_checkpoint(path)
    return restore_stream_snapshot(
        snapshot,
        kb=kb,
        config=config,
        store=store,
        stream_workers=stream_workers,
    )


def restore_stream_snapshot(
    snapshot: dict,
    kb: KnowledgeBase | None = None,
    config: DigestConfig | None = None,
    store: KnowledgeStore | None = None,
    stream_workers: str | None = None,
) -> DigestStream:
    """:func:`restore_stream` for an already-loaded snapshot dict.

    Used by callers that resolve the snapshot themselves — e.g. the
    serve tenant, which loads via :func:`load_resume_state` so a
    corrupt newest checkpoint falls back to the ``.prev`` generation.
    """
    kb_version = snapshot["kb_version"]
    if kb is None:
        if store is None:
            raise ValueError(
                "restore_stream needs the knowledge the checkpoint was "
                "taken under: pass kb=, or store= for a store-backed "
                "stream"
            )
        if not isinstance(kb_version, int):
            raise ValueError(
                f"checkpoint records kb_version {kb_version!r}, "
                "not a model-store version; pass the knowledge base "
                "explicitly via kb="
            )
        kb = store.load(kb_version)
    restored_config: DigestConfig = (
        config if config is not None else snapshot["config"]
    )
    if stream_workers is not None:
        restored_config = restored_config.with_stream_workers(
            stream_workers
        )
    stream = DigestStream(kb, restored_config)
    stream.restore(snapshot)
    return stream


def restore_ingest(stream: DigestStream, quarantine=None):
    """Rebuild the ingest front-end a restored stream was driven by.

    Call after :func:`restore_stream` when the checkpointed run pushed
    through a :class:`~repro.syslog.ingest.MultiSourceIngest`; returns a
    front-end with its reorder buffer, source breakers, and counters
    exactly as captured, attached to ``stream``.  Raises if the
    checkpoint carried no ingest state (check
    :attr:`CheckpointInfo.has_ingest` first when unsure).  Resume replay
    then skips, per source, the :meth:`~MultiSourceIngest.pushed_counts`
    arrivals already consumed.
    """
    # Imported lazily: core must stay importable without the syslog
    # layer, and ingest.py itself imports from core.
    from repro.syslog.ingest import MultiSourceIngest

    state = stream.restored_ingest_state()
    if state is None:
        raise ValueError(
            "checkpoint carries no ingest state: the checkpointed "
            "stream was pushed to directly, not through an ingest "
            "front-end"
        )
    return MultiSourceIngest.from_snapshot(
        stream, state, quarantine=quarantine
    )
