"""The syslog message model.

Section 2 of the paper observes that a router syslog message has only minimal
structure: (1) a timestamp, (2) the originating router, (3) a message type /
error code, and (4) free-form detail text.  :class:`SyslogMessage` captures
exactly those four fields plus the vendor tag that determines line syntax.

:class:`LabeledMessage` wraps a message with the simulator's ground-truth
labels (true network-condition id and true template id).  Ground truth never
flows into the mining pipeline — it exists only so the evaluation harness can
score template accuracy and grouping quality, replacing the human validation
the paper used on proprietary data.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.utils.timeutils import format_ts

_SEVERITY_V1 = re.compile(r"^[A-Z0-9_]+-(\d)-[A-Za-z0-9_]+$")
_SEVERITY_WORDS_V2 = {
    "CRITICAL": 1,
    "MAJOR": 2,
    "MINOR": 3,
    "WARNING": 4,
    "INFO": 6,
}


@dataclass(frozen=True, slots=True)
class SyslogMessage:
    """One raw router syslog message.

    Attributes
    ----------
    timestamp:
        Epoch seconds (UTC); routers are assumed NTP-synchronized.
    router:
        Identifier of the originating router (e.g. ``ar3.atlga``).
    error_code:
        Message type, e.g. ``LINK-3-UPDOWN`` (vendor V1) or
        ``SNMP-WARNING-linkDown`` (vendor V2).
    detail:
        Free-form remainder of the line.
    vendor:
        Vendor tag controlling line syntax, ``"V1"`` or ``"V2"``.
    """

    timestamp: float
    router: str
    error_code: str
    detail: str
    vendor: str = "V1"

    def __post_init__(self) -> None:
        if not self.router:
            raise ValueError("router must be non-empty")
        if not self.error_code:
            raise ValueError("error_code must be non-empty")

    @property
    def severity(self) -> int | None:
        """Vendor-assigned severity (smaller = more severe), if encoded.

        Vendor V1 encodes it as the number between dashes in the error code
        (``LINK-3-UPDOWN`` -> 3); vendor V2 uses a severity word
        (``SNMP-WARNING-linkDown`` -> 4).  Section 2 warns this value must
        not be used for event ranking; we expose it only for baselines.
        """
        match = _SEVERITY_V1.match(self.error_code)
        if match:
            return int(match.group(1))
        for word, level in _SEVERITY_WORDS_V2.items():
            if f"-{word}-" in self.error_code:
                return level
        return None

    def words(self) -> tuple[str, ...]:
        """Whitespace-separated words of the detail text (template input)."""
        return tuple(self.detail.split())

    def render(self) -> str:
        """Human-readable one-line form (vendor-neutral)."""
        return (
            f"{format_ts(self.timestamp)} {self.router} "
            f"{self.error_code}: {self.detail}"
        )


@dataclass(frozen=True, slots=True)
class LabeledMessage:
    """A syslog message plus simulator ground truth.

    Attributes
    ----------
    message:
        The raw message as the pipeline would see it.
    event_id:
        Identifier of the injected network condition that caused the message,
        or ``None`` for background noise not attributable to any condition.
    template_id:
        Identifier of the true (generator-side) message template.
    locations:
        Canonical location strings the message refers to, as known to the
        generator (e.g. ``("ar1.atlga|if|Serial1/0/10:0",)``).
    """

    message: SyslogMessage
    event_id: str | None
    template_id: str
    locations: tuple[str, ...] = field(default=())

    @property
    def timestamp(self) -> float:
        """The wrapped message's timestamp."""
        return self.message.timestamp

    @property
    def router(self) -> str:
        """The wrapped message's originating router."""
        return self.message.router
