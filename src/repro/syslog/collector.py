"""Collector-path degradation: loss, jitter, duplication.

Operational syslog rides UDP: the collector's view is the router's view
minus dropped datagrams, plus occasional duplicates, with reception-time
jitter.  The mining pipeline must degrade gracefully under all three.
This module simulates the collector path so robustness can be measured
(see ``benchmarks/bench_robustness_loss.py``).
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, replace

from repro.obs import (
    COLLECTOR_DELIVERED,
    COLLECTOR_DROPPED,
    COLLECTOR_DUPLICATED,
    COLLECTOR_JITTERED,
    get_registry,
)
from repro.syslog.message import SyslogMessage


@dataclass(frozen=True)
class CollectorProfile:
    """Degradation parameters of one collector path.

    Attributes
    ----------
    loss_rate:
        Probability an individual message is dropped.
    duplicate_rate:
        Probability a message is delivered twice (UDP retransmit quirk).
    max_jitter:
        Uniform reception delay added per message, seconds.  Jitter can
        reorder messages relative to their generation timestamps; the
        collector stamps *reception* order, so output is re-sorted on the
        jittered times.
    seed:
        RNG seed for reproducibility.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    max_jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.max_jitter < 0:
            raise ValueError("max_jitter must be non-negative")

    @property
    def is_identity(self) -> bool:
        """True when this profile cannot alter the stream at all."""
        return (
            self.loss_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.max_jitter == 0.0
        )


def _degrade_pairs(
    pairs: list[tuple[SyslogMessage, object]], profile: CollectorProfile
) -> list[tuple[SyslogMessage, object]]:
    """Shared degradation over (message, payload) pairs.

    A zero profile is a strict no-op: the input pairs come back as-is,
    in input order, with message identity preserved — no re-sort that
    could reorder distinct same-timestamp messages.  When jitter does
    reorder, the re-sort is by jittered timestamp only (stable), so ties
    keep their input order instead of being shuffled by router/code.
    """
    if profile.is_identity:
        return list(pairs)
    rng = random.Random(profile.seed)
    out: list[tuple[SyslogMessage, object]] = []
    n_dropped = n_duplicated = n_jittered = 0
    for message, payload in pairs:
        if rng.random() < profile.loss_rate:
            n_dropped += 1
            continue
        copies = 2 if rng.random() < profile.duplicate_rate else 1
        if copies == 2:
            n_duplicated += 1
        for copy_index in range(copies):
            jitter = (
                rng.uniform(0.0, profile.max_jitter)
                if profile.max_jitter
                else 0.0
            )
            if jitter:
                n_jittered += 1
                message_out = SyslogMessage(
                    timestamp=message.timestamp + jitter,
                    router=message.router,
                    error_code=message.error_code,
                    detail=message.detail,
                    vendor=message.vendor,
                )
            elif copy_index == 0:
                message_out = message
            else:
                # A duplicate delivery is a distinct datagram: emit a
                # distinct (equal) object so identity-based bookkeeping
                # downstream cannot conflate the two arrivals.
                message_out = replace(message)
            out.append((message_out, payload))
    if profile.max_jitter:
        out.sort(key=lambda p: p[0].timestamp)
    registry = get_registry()
    if registry.enabled:
        registry.inc(COLLECTOR_DELIVERED, len(out))
        if n_dropped:
            registry.inc(COLLECTOR_DROPPED, n_dropped)
        if n_duplicated:
            registry.inc(COLLECTOR_DUPLICATED, n_duplicated)
        if n_jittered:
            registry.inc(COLLECTOR_JITTERED, n_jittered)
    return out


def degrade_stream(
    messages: Iterable[SyslogMessage], profile: CollectorProfile
) -> list[SyslogMessage]:
    """Pass a stream through a lossy/jittery collector path.

    Returns the surviving messages sorted by their jittered reception
    times (which replace the timestamps — that is what the collector
    records when router and collector clocks drift).
    """
    return [
        message
        for message, _ in _degrade_pairs(
            [(m, None) for m in messages], profile
        )
    ]


def interleave_arrivals(
    feeds: dict[str, Iterable],
    key=None,
) -> list[tuple[str, object]]:
    """Deterministically interleave per-source feeds into one arrival order.

    Models what a collector sees from several concurrent feeds: each
    feed's internal order is preserved, and at every step the next
    arrival is the feed head with the smallest ``key`` (default: the
    item's ``timestamp`` attribute), ties broken by source registration
    order.  Returns ``(source, item)`` pairs ready for
    :meth:`~repro.syslog.ingest.MultiSourceIngest.push_all` — no RNG, so
    the same feeds always produce the same interleaving.
    """
    if key is None:
        key = lambda item: item.timestamp  # noqa: E731 - default accessor
    heads = {source: list(feed) for source, feed in feeds.items()}
    order = list(heads)
    cursor = dict.fromkeys(order, 0)
    out: list[tuple[str, object]] = []
    remaining = sum(len(items) for items in heads.values())
    while remaining:
        best: str | None = None
        best_key = None
        for source in order:
            i = cursor[source]
            if i >= len(heads[source]):
                continue
            k = key(heads[source][i])
            if best is None or k < best_key:
                best, best_key = source, k
        assert best is not None
        out.append((best, heads[best][cursor[best]]))
        cursor[best] += 1
        remaining -= 1
    return out


def degrade_labeled(labeled, profile: CollectorProfile):
    """Degrade a labelled stream, carrying ground truth along.

    Takes and returns :class:`~repro.syslog.message.LabeledMessage`
    sequences; loss/duplication/jitter decisions are identical to
    :func:`degrade_stream` for the same profile.
    """
    from repro.syslog.message import LabeledMessage

    pairs = _degrade_pairs([(lm.message, lm) for lm in labeled], profile)
    return [
        LabeledMessage(
            message=message,
            event_id=original.event_id,
            template_id=original.template_id,
            locations=original.locations,
        )
        for message, original in pairs
    ]
