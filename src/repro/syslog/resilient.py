"""Resilient ingest: quarantine dead-letter queue and retrying sources.

Operational collector feeds are lossy, duplicated, bursty, and sometimes
plain garbage; a production digester must never die because one router
emitted an unparseable line or one feed flapped.  This module provides
the two ingestion-side defenses:

* :class:`Quarantine` — a bounded dead-letter queue.  Lines that fail
  :func:`repro.syslog.parse.parse_line` (or messages the stream rejects,
  e.g. beyond skew tolerance) are recorded with their source, line
  number, and error instead of raised; the queue can be dumped as JSONL
  for offline triage.
* :class:`RetryPolicy` / :func:`read_source` — a retrying reader around
  file or iterator sources with a deterministic exponential-backoff
  schedule (no jitter: schedules must be reproducible under test).  A
  source that keeps failing past ``max_retries`` is *abandoned* and
  counted, never allowed to kill the run.

Every failure mode emits counters through :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import (
    INGEST_FAILURES,
    INGEST_RETRIES,
    QUARANTINE_DEPTH,
    QUARANTINE_OVERFLOW,
    QUARANTINED,
    get_registry,
)
from repro.syslog.message import SyslogMessage
from repro.syslog.parse import SyslogParseError, parse_line
from repro.utils.fsio import atomic_write_text


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined input with enough context to triage it offline."""

    line: str
    error: str
    source: str | None = None
    line_no: int | None = None
    kind: str = "parse"

    def to_json(self) -> str:
        """Render as one JSONL line."""
        return json.dumps(
            {
                "kind": self.kind,
                "source": self.source,
                "line_no": self.line_no,
                "error": self.error,
                "line": self.line,
            }
        )


class Quarantine:
    """Bounded dead-letter queue for lines the pipeline cannot digest.

    Keeps at most ``max_records`` most-recent records (older ones are
    dropped and counted as overflow); totals keep counting past the
    bound so operators can see the real damage, not just the retained
    window.
    """

    def __init__(self, max_records: int = 10_000) -> None:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.max_records = max_records
        self._records: deque[QuarantineRecord] = deque(maxlen=max_records)
        self._total = 0
        self._overflow = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def total(self) -> int:
        """Every quarantined input ever, including overflowed ones."""
        return self._total

    @property
    def overflow(self) -> int:
        """Records dropped because the queue was full."""
        return self._overflow

    def add(self, record: QuarantineRecord) -> None:
        """Quarantine one input."""
        if len(self._records) == self.max_records:
            self._overflow += 1
        self._records.append(record)
        self._total += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc(QUARANTINED, kind=record.kind)
            if self._overflow:
                registry.set_gauge(QUARANTINE_OVERFLOW, self._overflow)
            registry.set_gauge(QUARANTINE_DEPTH, len(self._records))

    def add_parse_error(
        self, line: str, error: SyslogParseError
    ) -> None:
        """Quarantine a line that failed :func:`parse_line`."""
        self.add(
            QuarantineRecord(
                line=line.rstrip("\n"),
                error=str(error),
                source=error.source,
                line_no=error.line_no,
                kind="parse",
            )
        )

    def records(self) -> list[QuarantineRecord]:
        """Snapshot of the retained records, oldest first."""
        return list(self._records)

    def dump(self, path: str | Path, max_bytes: int = 0) -> int:
        """Write the retained records as JSONL; returns how many.

        With ``max_bytes`` set, an existing dump is *rotated* instead of
        overwritten — ``path`` shifts to ``path.1``, ``path.1`` to
        ``path.2``, and so on — and the oldest rotations are then
        deleted until the whole family fits inside the byte budget
        (the freshly written base file always survives, even alone over
        budget).  A crash-looping source that dumps on every restart can
        therefore never grow the quarantine spill without bound.
        ``max_bytes=0`` keeps the legacy overwrite-in-place behavior.

        Disk-fault safe: the base file is written atomically, and a
        failed write (ENOSPC mid-rotation) unwinds the renames so the
        rotation family is exactly as before; the in-memory queue is
        never touched, so the next dump interval retries with nothing
        lost.  The ``OSError`` propagates for the caller to note.
        """
        path = Path(path)
        renames: list[tuple[Path, Path]] = []
        if max_bytes > 0 and path.exists():
            rotated = rotated_quarantine_paths(path)
            for old in reversed(rotated):  # highest index first
                index = int(old.suffix[1:])
                target = path.with_name(f"{path.name}.{index + 1}")
                old.rename(target)
                renames.append((old, target))
            target = path.with_name(f"{path.name}.1")
            path.rename(target)
            renames.append((path, target))
        records = self.records()
        text = "".join(record.to_json() + "\n" for record in records)
        try:
            atomic_write_text(path, text)
        except OSError:
            for original, target in reversed(renames):
                target.rename(original)
            raise
        if max_bytes > 0:
            total = path.stat().st_size
            for old in rotated_quarantine_paths(path):
                total += old.stat().st_size
            # Oldest first (highest rotation index) until inside budget.
            for old in reversed(rotated_quarantine_paths(path)):
                if total <= max_bytes:
                    break
                total -= old.stat().st_size
                old.unlink()
        return len(records)

    def drain(self) -> list[QuarantineRecord]:
        """Remove and return the retained records, oldest first.

        Totals keep counting — draining hands the records to a replayer
        (dump + requeue), it does not erase the damage record.
        """
        records = list(self._records)
        self._records.clear()
        registry = get_registry()
        if registry.enabled:
            registry.set_gauge(QUARANTINE_DEPTH, 0)
        return records

    def summary(self) -> dict[str, int]:
        """Depth/total/overflow in one dict (mirrors the health keys)."""
        return {
            "depth": len(self._records),
            "total": self._total,
            "overflow": self._overflow,
        }


def rotated_quarantine_paths(path: str | Path) -> list[Path]:
    """Existing rotations of a quarantine dump, newest (``.1``) first.

    Only contiguous numeric suffixes produced by :meth:`Quarantine.dump`
    count; an unrelated ``foo.jsonl.bak`` next door is never touched.
    """
    path = Path(path)
    out: list[Path] = []
    index = 1
    while True:
        candidate = path.with_name(f"{path.name}.{index}")
        if not candidate.exists():
            break
        out.append(candidate)
        index += 1
    return out


def quarantine_files(path: str | Path) -> list[Path]:
    """Every file of a (possibly rotated) quarantine dump, oldest first.

    The replay order :func:`requeue_records` wants: highest rotation
    index down to ``.1``, then the base file — so requeued messages
    reach the stream in roughly the order they were quarantined.
    Includes the base path even when it does not exist (the caller gets
    its open() error instead of a silent no-op).
    """
    path = Path(path)
    return list(reversed(rotated_quarantine_paths(path))) + [path]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential-backoff schedule for flaky sources.

    Attempt ``i`` (0-based) failing waits ``base_delay * 2**i`` seconds
    before attempt ``i + 1``; after ``max_retries`` retries the source is
    given up on.  ``timeout`` caps the *total* seconds spent sleeping on
    one source — a feed that keeps flapping cannot stall the whole run
    indefinitely.  No jitter on purpose: retry schedules in tests and
    fault benches must be reproducible.
    """

    max_retries: int = 3
    base_delay: float = 0.5
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError("timeout must be >= 0")

    def delays(self) -> Iterator[float]:
        """The backoff delays, in order, respecting the total timeout."""
        slept = 0.0
        for attempt in range(self.max_retries):
            delay = self.base_delay * (2**attempt)
            if self.timeout is not None:
                if slept >= self.timeout:
                    return
                delay = min(delay, self.timeout - slept)
            slept += delay
            yield delay


class SourceFailed(RuntimeError):
    """A source kept failing past its retry budget (``fail_fast`` mode)."""


def read_source(
    opener: Callable[[], Iterable[SyslogMessage]],
    policy: RetryPolicy | None = None,
    source: str = "<source>",
    fail_fast: bool = False,
    sleep: Callable[[float], None] = time.sleep,
) -> list[SyslogMessage]:
    """Read everything from a flaky source, retrying with backoff.

    ``opener`` is called anew on every attempt and must return a message
    iterable (e.g. ``lambda: read_log(path)``); an :class:`OSError` or
    :class:`ValueError` raised while opening or iterating triggers a
    retry after the policy's next delay.  A source that exhausts its
    retry budget yields nothing and is counted under
    ``syslogdigest_ingest_failed_sources_total`` — unless ``fail_fast``
    is set, in which case :class:`SourceFailed` is raised.  ``sleep`` is
    injectable so tests and benches never actually wait.
    """
    policy = policy or RetryPolicy()
    registry = get_registry()
    delays = policy.delays()
    last_error: Exception | None = None
    for attempt in range(policy.max_retries + 1):
        try:
            return list(opener())
        except (OSError, ValueError) as exc:
            last_error = exc
            delay = next(delays, None)
            if delay is None:
                break
            if registry.enabled:
                registry.inc(INGEST_RETRIES, source=source)
            sleep(delay)
    if registry.enabled:
        registry.inc(INGEST_FAILURES, source=source)
    if fail_fast:
        raise SourceFailed(
            f"source {source} failed after {policy.max_retries} retries: "
            f"{last_error}"
        ) from last_error
    return []


def resilient_parse(
    lines: Iterable[str],
    quarantine: Quarantine,
    source: str | None = None,
) -> Iterator[SyslogMessage]:
    """Parse collector lines, quarantining the unparseable ones."""
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            yield parse_line(line, line_no=line_no, source=source)
        except SyslogParseError as exc:
            quarantine.add_parse_error(line, exc)


def resilient_read_log(
    path: str | Path,
    quarantine: Quarantine,
    policy: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> list[SyslogMessage]:
    """Read one collector log, quarantining garbage, retrying I/O errors.

    The whole file is re-read on retry (a half-read flaky file cannot be
    resumed mid-line safely), so the result only ever reflects complete
    attempts.
    """

    def opener() -> Iterable[SyslogMessage]:
        with open(path, "r", encoding="utf-8") as fh:
            return list(resilient_parse(fh, quarantine, source=str(path)))

    return read_source(
        opener, policy=policy, source=str(path), sleep=sleep
    )


def push_safe(stream, message: SyslogMessage, quarantine: Quarantine):
    """Push one message, quarantining a rejection instead of raising.

    ``DigestStream.push`` refuses messages beyond the skew tolerance;
    under feed stalls and replay bursts that is expected input, not a
    crash.  Returns the finalized events (empty on quarantine).
    """
    from repro.syslog.parse import format_line

    try:
        return stream.push(message)
    except ValueError as exc:
        quarantine.add(
            QuarantineRecord(
                line=format_line(message),
                error=str(exc),
                source=message.router,
                kind="rejected",
            )
        )
        return []


def requeue_records(
    path: str | Path, stream, quarantine: Quarantine
) -> tuple[list, int, int]:
    """Replay a dumped quarantine JSONL through :func:`push_safe`.

    Quarantined lines are often salvageable once conditions change — a
    skew-rejected burst replays fine after the stream clock catches up,
    and operators fix garbled lines offline.  Each record's ``line`` is
    re-parsed and pushed; anything that fails again (unparseable, or
    re-rejected by the stream) lands in ``quarantine`` — the round trip
    never raises.  Rotated dumps (``path.2``, ``path.1``, …, written by
    :meth:`Quarantine.dump` under a byte budget) are replayed too,
    oldest file first.  Returns ``(events, n_ok, n_failed)``.
    """
    events: list = []
    n_ok = 0
    n_failed = 0
    for part in quarantine_files(path):
        with open(part, "r", encoding="utf-8") as fh:
            for line_no, raw in enumerate(fh, start=1):
                if not raw.strip():
                    continue
                try:
                    record = json.loads(raw)
                    line = record["line"]
                except (ValueError, KeyError, TypeError):
                    n_failed += 1
                    quarantine.add(
                        QuarantineRecord(
                            line=raw.rstrip("\n"),
                            error="not a quarantine JSONL record",
                            source=str(part),
                            line_no=line_no,
                            kind="requeue",
                        )
                    )
                    continue
                try:
                    message = parse_line(
                        line, line_no=line_no, source=str(part)
                    )
                except SyslogParseError as exc:
                    n_failed += 1
                    quarantine.add_parse_error(line, exc)
                    continue
                before = quarantine.total
                events.extend(push_safe(stream, message, quarantine))
                if quarantine.total > before:
                    n_failed += 1
                else:
                    n_ok += 1
    return events, n_ok, n_failed
