"""Stream helpers: reading/writing log files, sorting, merging, splitting.

An operational collector receives interleaved feeds from thousands of
routers; the mining code assumes a single time-sorted stream.  These helpers
provide that normalization plus the day/week slicing the evaluation uses.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.syslog.message import SyslogMessage
from repro.syslog.parse import SyslogParseError, format_line, parse_line
from repro.utils.timeutils import DAY


def sort_messages(messages: Iterable[SyslogMessage]) -> list[SyslogMessage]:
    """Return messages sorted by (timestamp, router, error_code).

    The secondary keys make ordering deterministic for equal timestamps,
    which matters for reproducible rule mining.
    """
    return sorted(messages, key=lambda m: (m.timestamp, m.router, m.error_code))


def merge_streams(
    streams: Sequence[Iterable[SyslogMessage]],
    tolerance: float = 0.0,
) -> Iterator[SyslogMessage]:
    """Merge per-router streams (each already time-sorted) into one stream.

    Each input must be sorted by (timestamp, router, error_code) —
    ``heapq.merge`` silently produces out-of-order output otherwise, so a
    regression inside any stream raises a :class:`ValueError` naming the
    offending stream index instead.

    A positive ``tolerance`` (seconds) relaxes the requirement to *almost
    sorted*: disorder within that many seconds of each stream's newest
    timestamp is locally reordered (real collector feeds jitter by a few
    seconds), while a regression beyond tolerance still raises the same
    loud error naming the stream index.
    """

    def keyed_iter(idx: int, stream: Iterable[SyslogMessage]):
        if tolerance <= 0:
            previous = None
            for m in stream:
                key = (m.timestamp, m.router, m.error_code)
                if previous is not None and key < previous:
                    raise ValueError(
                        f"merge_streams: stream {idx} is not time-sorted "
                        f"({key} after {previous})"
                    )
                previous = key
                yield (*key, idx), m
            return
        # Hold back everything within `tolerance` of the newest timestamp
        # seen; only emit keys strictly older than that horizon, so the
        # emitted sequence is fully (timestamp, router, error_code)
        # sorted and heapq.merge stays correct.
        pending: list[tuple[tuple, int, SyslogMessage]] = []
        serial = 0  # heap tiebreak: SyslogMessage is not orderable
        max_ts: float | None = None
        for m in stream:
            if max_ts is not None and m.timestamp < max_ts - tolerance:
                raise ValueError(
                    f"merge_streams: stream {idx} is out of order beyond "
                    f"tolerance ({m.timestamp} after {max_ts}, "
                    f"tolerance {tolerance}s)"
                )
            key = (m.timestamp, m.router, m.error_code)
            heapq.heappush(pending, (key, serial, m))
            serial += 1
            if max_ts is None or m.timestamp > max_ts:
                max_ts = m.timestamp
            while pending and pending[0][0][0] < max_ts - tolerance:
                ready_key, _, ready = heapq.heappop(pending)
                yield (*ready_key, idx), ready
        while pending:
            ready_key, _, ready = heapq.heappop(pending)
            yield (*ready_key, idx), ready

    merged = heapq.merge(*(keyed_iter(i, s) for i, s in enumerate(streams)))
    for _, message in merged:
        yield message


def split_by_day(
    messages: Sequence[SyslogMessage], origin: float | None = None
) -> dict[int, list[SyslogMessage]]:
    """Bucket time-sorted messages into whole days since ``origin``.

    ``origin`` defaults to midnight-aligned start of the first message's day.
    """
    if not messages:
        return {}
    if origin is None:
        first = messages[0].timestamp
        origin = first - (first % DAY)
    buckets: dict[int, list[SyslogMessage]] = {}
    for message in messages:
        buckets.setdefault(int((message.timestamp - origin) // DAY), []).append(
            message
        )
    return buckets


def write_log(path: str | Path, messages: Iterable[SyslogMessage]) -> int:
    """Write messages to ``path`` in collector line format; return count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for message in messages:
            fh.write(format_line(message) + "\n")
            count += 1
    return count


def read_log(
    path: str | Path, strict: bool = False
) -> Iterator[SyslogMessage]:
    """Yield messages from a collector log file.

    Blank and malformed lines are skipped unless ``strict`` is set, in which
    case malformed lines raise :class:`SyslogParseError` carrying the file
    path and 1-based line number — real collector feeds always contain
    some garbage.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                yield parse_line(line, line_no=line_no, source=str(path))
            except SyslogParseError:
                if strict:
                    raise
