"""Vendor line-format profiles.

The syslog *transport* is standardized but the message text is not
(Section 2).  We model the paper's two vendors:

* ``V1`` — Cisco-IOS-like: ``%FACILITY-SEVERITY-MNEMONIC: detail`` where the
  severity is a digit 0-7 between dashes.
* ``V2`` — ALU/TiMOS-like: ``FACILITY-SEVERITYWORD-eventName: detail`` using
  severity words (CRITICAL/MAJOR/MINOR/WARNING/INFO).

A :class:`VendorProfile` knows how to render and recognize its error codes so
the parser can be vendor independent, as SyslogDigest itself must be.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True)
class VendorProfile:
    """Line syntax description for one router vendor."""

    name: str
    error_code_pattern: re.Pattern[str]
    description: str

    def matches_code(self, error_code: str) -> bool:
        """True when ``error_code`` follows this vendor's convention."""
        return bool(self.error_code_pattern.fullmatch(error_code))


VENDOR_V1 = VendorProfile(
    name="V1",
    error_code_pattern=re.compile(r"[A-Z][A-Z0-9_]*-[0-7]-[A-Z0-9_]+"),
    description="IOS-style FACILITY-<severity digit>-MNEMONIC",
)

VENDOR_V2 = VendorProfile(
    name="V2",
    error_code_pattern=re.compile(
        r"[A-Z][A-Z0-9_]*-(CRITICAL|MAJOR|MINOR|WARNING|INFO)-[A-Za-z0-9_]+"
    ),
    description="TiMOS-style FACILITY-SEVERITYWORD-eventName",
)

_PROFILES = {p.name: p for p in (VENDOR_V1, VENDOR_V2)}


def vendor_for(error_code: str) -> VendorProfile | None:
    """Infer the vendor profile from an error code, if recognizable."""
    for profile in _PROFILES.values():
        if profile.matches_code(error_code):
            return profile
    return None


def get_profile(name: str) -> VendorProfile:
    """Look up a profile by vendor name; raises ``KeyError`` if unknown."""
    return _PROFILES[name]
