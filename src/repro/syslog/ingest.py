"""Resilient multi-source ingest front-end (DESIGN.md §10).

Real deployments aggregate feeds from hundreds of routers over lossy
transports: arrivals are skewed, duplicated, disordered, and individual
feeds flap or turn to garbage.  :class:`MultiSourceIngest` sits between
those raw sources and :class:`~repro.core.stream.DigestStream` and
provides four defenses:

* **Watermark reordering** — arrivals are buffered and released in
  deterministic ``(timestamp, router, error_code, source, arrival)``
  order once they fall at or below the *global watermark*: the minimum,
  over live sources, of each source's newest timestamp minus
  ``max_reorder_delay``.  Out-of-order arrivals inside that window are
  absorbed silently; arrivals behind the already-flushed frontier are
  dropped as *late* with explicit accounting (and a quarantine record
  when a quarantine is attached).  ``max_buffer_messages`` bounds the
  buffer; overflow force-flushes the oldest entries past the watermark.
* **Per-source circuit breakers** — each source runs a
  closed → open → half-open state machine: ``breaker_failure_threshold``
  consecutive failures (parse errors, stalls) open it, the half-open
  probe schedule reuses :class:`~repro.syslog.resilient.RetryPolicy`
  (exponential, deterministic, final delay repeating), and every
  transition is journaled.  Open sources are excluded from the
  watermark minimum so one dead feed never stalls the pipeline.
* **Duplicate suppression & gap detection** — with ``dedup_window`` set,
  a message whose full content was already admitted inside the window
  is suppressed; sources that provide sequence numbers get per-source
  sequence-gap accounting.
* **Admission control / backpressure** — past ``admit_soft_limit``
  in-flight messages, arrivals from unhealthy sources (breaker not
  closed, or failures pending) are shed; past ``admit_hard_limit``
  everything is shed.  Configured below the stream's
  ``max_open_messages``, ingest sheds by source health before the
  stream's output-changing whole-group shedding ever triggers.

The front-end is a **strict no-op for a single in-order clean source**
under the default :class:`~repro.core.config.IngestConfig`: messages
are emitted in exactly their arrival order, so the digest is
byte-identical to the direct path (pinned by tests and the ``make
check`` gate).

Ingest state (buffer, source machines, dedup table, journal) rides
along inside :meth:`DigestStream.snapshot` when attached, so
checkpointed kill-and-resume stays byte-identical — see
:func:`repro.core.checkpoint.restore_ingest`.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.config import IngestConfig
from repro.obs import (
    BREAKER_REJECTED,
    BREAKER_STATE,
    BREAKER_TRANSITIONS,
    INGEST_ADMISSION_SHED,
    INGEST_ADMITTED,
    INGEST_BUFFERED,
    INGEST_DEDUPLICATED,
    INGEST_FORCED_FLUSHES,
    INGEST_LATE_DROPPED,
    INGEST_SEQ_GAPS,
    INGEST_WATERMARK_LAG,
    get_registry,
)
from repro.syslog.message import SyslogMessage
from repro.syslog.parse import SyslogParseError, format_line, parse_line
from repro.syslog.resilient import Quarantine, QuarantineRecord, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import NetworkEvent
    from repro.core.stream import DigestStream

#: Snapshot format version of the ingest state captured inside
#: :meth:`DigestStream.snapshot`; :meth:`MultiSourceIngest.from_snapshot`
#: refuses mismatches.  v2 added the live-tail committed cursors
#: (``"tails"``) so byte-offset resume rides inside checkpoints.
INGEST_SNAPSHOT_VERSION = 2

#: Breaker states, in escalation order; the state gauge encodes them as
#: their index (closed=0, half_open=1, open=2).
BREAKER_STATES = ("closed", "half_open", "open")

#: Every key :meth:`MultiSourceIngest.health` reports, documented in one
#: place (DESIGN.md §10 renders this table; tests pin the key set).
INGEST_HEALTH_KEYS: dict[str, str] = {
    "sources": "registered sources",
    "buffered_messages": "messages held in the reorder buffer",
    "peak_buffered": "largest buffer size ever reached",
    "watermark_lag_seconds": "ingest clock minus the global watermark",
    "admitted": "arrivals accepted into the reorder buffer (cumulative)",
    "late_dropped": "arrivals behind the flushed frontier (cumulative)",
    "deduplicated": "arrivals suppressed as duplicates (cumulative)",
    "sequence_gaps": "sequence numbers skipped across all sources (cumulative)",
    "forced_flushes": "messages flushed early by the buffer bound (cumulative)",
    "admission_shed": "arrivals shed by admission control (cumulative)",
    "breaker_rejected": "arrivals rejected by open breakers (cumulative)",
    "breaker_open": "sources currently open",
    "breaker_half_open": "sources currently probing",
    "breaker_transitions": "breaker state changes across all sources (cumulative)",
    "tailed_sources": "sources followed live by an attached tail set",
    "tail_rotations": "log rotations detected across all tailed sources (cumulative)",
    "tail_truncations": "in-place truncations detected across all tailed sources (cumulative)",
    "tail_lag_bytes": "bytes on disk not yet consumed, summed over tailed sources",
}


class SourceState:
    """One source's ingest bookkeeping: clocks, breaker, counters.

    Plain attributes only, so :meth:`snapshot`/:meth:`restore` are a
    trivial dict round-trip and the whole thing pickles inside stream
    checkpoints.
    """

    __slots__ = (
        "name",
        "index",
        "max_ts",
        "last_arrival_clock",
        "n_pushed",
        "arrival_serial",
        "last_seq",
        "state",
        "consecutive_failures",
        "opened_at",
        "probe_idx",
        "next_probe_at",
        "admitted",
        "late_dropped",
        "deduplicated",
        "seq_gaps",
        "breaker_rejected",
        "admission_shed",
        "parse_failures",
        "transitions",
    )

    def __init__(self, name: str, index: int) -> None:
        self.name = name
        self.index = index
        self.max_ts: float | None = None
        self.last_arrival_clock: float | None = None
        self.n_pushed = 0
        self.arrival_serial = 0
        self.last_seq: int | None = None
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.probe_idx = 0
        self.next_probe_at: float | None = None
        self.admitted = 0
        self.late_dropped = 0
        self.deduplicated = 0
        self.seq_gaps = 0
        self.breaker_rejected = 0
        self.admission_shed = 0
        self.parse_failures = 0
        self.transitions = 0

    def snapshot(self) -> dict:
        """Plain-data capture of every field."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def restore(self, state: dict) -> None:
        """Rebuild from a :meth:`snapshot` capture."""
        for slot in self.__slots__:
            setattr(self, slot, state[slot])

    def summary(self) -> dict:
        """Per-source health row (the ``sources`` CLI renders these)."""
        return {
            "source": self.name,
            "state": self.state,
            "pushed": self.n_pushed,
            "admitted": self.admitted,
            "late_dropped": self.late_dropped,
            "deduplicated": self.deduplicated,
            "sequence_gaps": self.seq_gaps,
            "parse_failures": self.parse_failures,
            "breaker_rejected": self.breaker_rejected,
            "admission_shed": self.admission_shed,
            "transitions": self.transitions,
        }


class MultiSourceIngest:
    """Watermark-reordering, breaker-guarded front-end over a stream.

    Drive it with :meth:`push` (parsed messages) or :meth:`push_line`
    (raw collector lines); both return whatever events the flush they
    triggered finalized.  :meth:`close` drains the buffer and closes the
    underlying stream.  ``last_outcome`` records what happened to the
    most recent arrival (``admitted``, ``late_dropped``,
    ``deduplicated``, ``breaker_rejected``, ``admission_shed``,
    ``parse_failed``) so benchmarks can score recall without peeking at
    internals.
    """

    def __init__(
        self,
        stream: DigestStream,
        config: IngestConfig | None = None,
        quarantine: Quarantine | None = None,
    ) -> None:
        self._stream = stream
        self._config = config or IngestConfig()
        self._quarantine = quarantine
        self._sources: dict[str, SourceState] = {}
        self._order: list[str] = []
        # Reorder buffer: heap of (order_key, message) with order_key =
        # (timestamp, router, error_code, source_index, arrival_serial)
        # — a strict total order, so flushes are fully deterministic.
        self._buffer: list[tuple[tuple, SyslogMessage]] = []
        self._emitted_key: tuple | None = None
        self._clock: float | None = None
        self._journal: list[dict] = []
        self._dedup: dict[tuple, float] = {}
        self._dedup_evicted_at: float | None = None
        self._peak_buffered = 0
        self._forced_flushes = 0
        self._probe_delays = tuple(
            RetryPolicy(
                max_retries=self._config.probe_max_retries,
                base_delay=self._config.probe_base_delay,
            ).delays()
        )
        self._last_metrics_clock: float | None = None
        self._tails = None
        self._restored_tails: dict | None = None
        self.last_outcome = ""
        stream.attach_ingest(self)

    # --------------------------------------------------------------- sources

    def register(self, source: str) -> SourceState:
        """Register a source explicitly (pushes auto-register too).

        Registration order fixes the source index used in the
        deterministic flush order, so register sources up front when
        reproducibility across runs matters.
        """
        state = self._sources.get(source)
        if state is None:
            state = SourceState(source, len(self._order))
            self._sources[source] = state
            self._order.append(source)
        return state

    def sources(self) -> list[SourceState]:
        """Registered sources, in registration order (read-only use)."""
        return [self._sources[name] for name in self._order]

    def pushed_counts(self) -> dict[str, int]:
        """Arrivals consumed per source (= inputs to skip on resume)."""
        return {name: self._sources[name].n_pushed for name in self._order}

    def attach_tails(self, tails) -> None:
        """Register a :class:`~repro.syslog.tail.TailSet` following the
        sources live.  From then on the committed tail cursors ride
        inside :meth:`snapshot` (so byte-offset resume is part of every
        checkpoint) and tail aggregates appear in :meth:`health` and
        :meth:`source_summaries`."""
        self._tails = tails

    def restored_tail_state(self) -> dict | None:
        """Tail cursors stashed by :meth:`from_snapshot` (None when the
        checkpointed run was not tailing)."""
        return self._restored_tails

    def source_summaries(self) -> list[dict]:
        """Per-source health rows, merged with live-tail status columns
        (offset, inode, rotation/truncation counts, lag) when a tail
        set is attached — the ``sources`` CLI table and the
        ``/tenants/<id>/sources`` endpoint render exactly these."""
        tail_status = (
            self._tails.status() if self._tails is not None else {}
        )
        rows = []
        for src in self.sources():
            row = src.summary()
            row.update(tail_status.get(src.name, {}))
            rows.append(row)
        return rows

    def journal(self) -> list[dict]:
        """Every breaker transition so far, oldest first."""
        return list(self._journal)

    def set_admission(self, config: IngestConfig) -> None:
        """Swap the ingest tunables on a live front-end (degraded mode).

        Admission limits (and the other knobs) are backpressure policy,
        not reorder state — changing them mid-flight only alters which
        *future* arrivals are shed.  The serve supervisor pairs this
        with :meth:`DigestStream.set_shedding` when escalating a tenant
        to degraded mode.  The new config rides into subsequent
        snapshots.
        """
        self._config = config

    # ----------------------------------------------------------------- push

    def push_line(
        self, source: str, line: str, seq: int | None = None
    ) -> list[NetworkEvent]:
        """Parse and push one raw collector line from ``source``.

        Blank lines are ignored; unparseable ones are quarantined,
        counted as a breaker failure, and never kill the run.
        """
        if not line.strip():
            return []
        try:
            message = parse_line(line, source=source)
        except SyslogParseError as exc:
            src = self.register(source)
            src.n_pushed += 1
            src.last_arrival_clock = self._clock
            src.parse_failures += 1
            if self._quarantine is not None:
                self._quarantine.add_parse_error(line, exc)
            self._note_failure(src, "parse")
            self.last_outcome = "parse_failed"
            return []
        return self.push(source, message, seq=seq)

    def push(
        self,
        source: str,
        message: SyslogMessage,
        seq: int | None = None,
    ) -> list[NetworkEvent]:
        """Ingest one parsed message; return any events it finalized."""
        src = self.register(source)
        ts = message.timestamp
        self._clock = ts if self._clock is None else max(self._clock, ts)
        src.n_pushed += 1
        src.last_arrival_clock = self._clock
        self._check_stalls(src)

        if not self._breaker_admits(src):
            src.breaker_rejected += 1
            self.last_outcome = "breaker_rejected"
            self._quarantine_message(message, src, "breaker")
            return []

        # Admission control runs on the state *at arrival* — a probing
        # or recently-failing source is shed first under pressure.
        inflight = len(self._buffer) + self._stream.n_open_messages
        cfg = self._config
        if cfg.admit_hard_limit and inflight >= cfg.admit_hard_limit:
            src.admission_shed += 1
            self.last_outcome = "admission_shed"
            return self._flush()
        if (
            cfg.admit_soft_limit
            and inflight >= cfg.admit_soft_limit
            and (src.state != "closed" or src.consecutive_failures > 0)
        ):
            src.admission_shed += 1
            self.last_outcome = "admission_shed"
            return self._flush()

        if src.state == "half_open":
            self._transition(src, "closed", "probe succeeded")
            src.consecutive_failures = 0
            src.probe_idx = 0
            src.next_probe_at = None
        elif src.consecutive_failures:
            src.consecutive_failures = 0

        # Even a duplicate or late arrival is evidence of source
        # progress: the watermark advances on every parsed timestamp.
        if src.max_ts is None or ts > src.max_ts:
            src.max_ts = ts

        if seq is not None:
            if src.last_seq is not None and seq > src.last_seq + 1:
                src.seq_gaps += seq - src.last_seq - 1
            if src.last_seq is None or seq > src.last_seq:
                src.last_seq = seq

        if cfg.dedup_window > 0:
            content = (ts, message.router, message.error_code, message.detail)
            if content in self._dedup:
                src.deduplicated += 1
                self.last_outcome = "deduplicated"
                return self._flush()
            self._dedup[content] = ts

        src.arrival_serial += 1
        order_key = (
            ts,
            message.router,
            message.error_code,
            src.index,
            src.arrival_serial,
        )
        if self._emitted_key is not None and order_key <= self._emitted_key:
            src.late_dropped += 1
            self.last_outcome = "late_dropped"
            self._quarantine_message(message, src, "late")
            return self._flush()

        heapq.heappush(self._buffer, (order_key, message))
        src.admitted += 1
        self.last_outcome = "admitted"
        events = self._flush()
        # Peak is measured after the flush: the bound holds between
        # pushes, which is what "bounded buffer memory" promises.
        if len(self._buffer) > self._peak_buffered:
            self._peak_buffered = len(self._buffer)
        return events

    def push_all(
        self, arrivals: Iterable[tuple[str, SyslogMessage]]
    ) -> list[NetworkEvent]:
        """Push an interleaved ``(source, message)`` arrival sequence."""
        events: list[NetworkEvent] = []
        for source, message in arrivals:
            events.extend(self.push(source, message))
        return events

    def close(self) -> list[NetworkEvent]:
        """Drain the reorder buffer, close the stream, return the rest."""
        events = self._flush(force_all=True)
        events.extend(self._stream.close())
        self.record_metrics()
        return events

    # -------------------------------------------------------------- breaker

    def record_failure(self, source: str, reason: str) -> None:
        """Count an external failure (I/O error, transport loss) against
        a source's breaker.  Does not consume an input line."""
        self._note_failure(self.register(source), reason)

    def _breaker_admits(self, src: SourceState) -> bool:
        if src.state != "open":
            return True
        if (
            src.next_probe_at is not None
            and self._clock is not None
            and self._clock >= src.next_probe_at
        ):
            self._transition(src, "half_open", "probe window reached")
            return True
        return False

    def _note_failure(self, src: SourceState, reason: str) -> None:
        if src.state == "open":
            # Garbage from an already-open source: once the probe window
            # is reached it *is* the probe, and it just failed.
            if self._breaker_admits(src):
                self._note_failure(src, reason)
            return
        src.consecutive_failures += 1
        if src.state == "half_open":
            self._open_breaker(src, f"probe failed ({reason})")
        elif (
            src.consecutive_failures
            >= self._config.breaker_failure_threshold
        ):
            self._open_breaker(src, reason)

    def _open_breaker(self, src: SourceState, reason: str) -> None:
        clock = self._clock if self._clock is not None else 0.0
        src.opened_at = clock
        if reason == "stall":
            # The next arrival from a stalled source proves it is back;
            # probe immediately instead of backing off.
            delay = 0.0
        elif self._probe_delays:
            delay = self._probe_delays[
                min(src.probe_idx, len(self._probe_delays) - 1)
            ]
            src.probe_idx += 1
        else:
            delay = 0.0
        src.next_probe_at = clock + delay
        self._transition(src, "open", reason)

    def _check_stalls(self, arriving: SourceState) -> None:
        timeout = self._config.stall_timeout
        if not timeout or self._clock is None:
            return
        for name in self._order:
            src = self._sources[name]
            if src is arriving or src.state != "closed":
                continue
            if (
                src.last_arrival_clock is not None
                and self._clock - src.last_arrival_clock > timeout
            ):
                self._open_breaker(src, "stall")

    def _transition(self, src: SourceState, to: str, reason: str) -> None:
        entry = {
            "clock": self._clock,
            "source": src.name,
            "from": src.state,
            "to": to,
            "reason": reason,
        }
        src.state = to
        src.transitions += 1
        self._journal.append(entry)
        registry = get_registry()
        if registry.enabled:
            registry.inc(BREAKER_TRANSITIONS, source=src.name, to=to)
            registry.set_gauge(
                BREAKER_STATE, BREAKER_STATES.index(to), source=src.name
            )

    # ---------------------------------------------------------------- flush

    def watermark(self) -> float | None:
        """The global low watermark: min over live sources of
        (newest timestamp − ``max_reorder_delay``).

        Open sources are excluded — a dead feed must not stall the
        pipeline; a recovering one naturally holds the watermark back
        until its backlog catches up.  None until any live source has
        produced a timestamp.
        """
        eligible = [
            src.max_ts
            for src in self._sources.values()
            if src.max_ts is not None and src.state != "open"
        ]
        if not eligible:
            return None
        return min(eligible) - self._config.max_reorder_delay

    def _flush(self, force_all: bool = False) -> list[NetworkEvent]:
        ready: list[SyslogMessage] = []
        last_key: tuple | None = None
        if force_all:
            while self._buffer:
                last_key, message = heapq.heappop(self._buffer)
                ready.append(message)
        else:
            watermark = self.watermark()
            if watermark is not None:
                while self._buffer and self._buffer[0][0][0] <= watermark:
                    last_key, message = heapq.heappop(self._buffer)
                    ready.append(message)
                self._evict_dedup(watermark)
            bound = self._config.max_buffer_messages
            overflow = len(self._buffer) - bound if bound else 0
            if overflow > 0:
                for _ in range(overflow):
                    last_key, message = heapq.heappop(self._buffer)
                    ready.append(message)
                self._forced_flushes += overflow
        if last_key is not None:
            self._emitted_key = last_key
        if not ready:
            return []
        events = self._stream.push_many(ready)
        self._maybe_record_metrics()
        return events

    def _evict_dedup(self, watermark: float) -> None:
        window = self._config.dedup_window
        if not window or not self._dedup:
            return
        horizon = watermark - window
        # Amortized: one scan per window span, not per flush.
        if (
            self._dedup_evicted_at is not None
            and horizon - self._dedup_evicted_at < window
        ):
            return
        self._dedup_evicted_at = horizon
        self._dedup = {
            content: ts
            for content, ts in self._dedup.items()
            if ts >= horizon
        }

    def _quarantine_message(
        self, message: SyslogMessage, src: SourceState, kind: str
    ) -> None:
        if self._quarantine is None:
            return
        self._quarantine.add(
            QuarantineRecord(
                line=format_line(message),
                error=f"ingest {kind} drop (source {src.name})",
                source=src.name,
                kind=kind,
            )
        )

    # ------------------------------------------------------- snapshot/restore

    def snapshot(self) -> dict:
        """Plain-data capture of the complete ingest state.

        Rides along inside :meth:`DigestStream.snapshot` (the stream
        calls this when an ingest is attached), so one checkpoint file
        captures the stream *and* its front-end consistently: an
        arrival is either still in this buffer or already inside the
        stream state, never both, never neither.
        """
        return {
            "version": INGEST_SNAPSHOT_VERSION,
            "config": self._config,
            "clock": self._clock,
            "emitted_key": self._emitted_key,
            "buffer": sorted(self._buffer),
            "dedup": dict(self._dedup),
            "dedup_evicted_at": self._dedup_evicted_at,
            "peak_buffered": self._peak_buffered,
            "forced_flushes": self._forced_flushes,
            "journal": list(self._journal),
            "order": list(self._order),
            "sources": {
                name: self._sources[name].snapshot() for name in self._order
            },
            # Live-tail committed cursors (inode + byte offset + stamp
            # clock per source) — what lets a kill -9 mid-tail resume
            # with no re-read and no duplicate push.
            "tails": (
                self._tails.snapshot() if self._tails is not None else None
            ),
        }

    @classmethod
    def from_snapshot(
        cls,
        stream: DigestStream,
        state: dict,
        quarantine: Quarantine | None = None,
    ) -> MultiSourceIngest:
        """Rebuild an ingest front-end over a freshly restored stream."""
        if state.get("version") != INGEST_SNAPSHOT_VERSION:
            raise ValueError(
                f"ingest snapshot version {state.get('version')!r} != "
                f"supported {INGEST_SNAPSHOT_VERSION}"
            )
        ingest = cls(stream, state["config"], quarantine=quarantine)
        ingest._clock = state["clock"]
        ingest._emitted_key = state["emitted_key"]
        ingest._buffer = list(state["buffer"])
        heapq.heapify(ingest._buffer)
        ingest._dedup = dict(state["dedup"])
        ingest._dedup_evicted_at = state["dedup_evicted_at"]
        ingest._peak_buffered = state["peak_buffered"]
        ingest._forced_flushes = state["forced_flushes"]
        ingest._journal = list(state["journal"])
        ingest._order = list(state["order"])
        ingest._sources = {}
        for name in ingest._order:
            src = SourceState(name, 0)
            src.restore(state["sources"][name])
            ingest._sources[name] = src
        # Stashed, not rebuilt: the owner (TenantRuntime, CLI) turns the
        # cursors back into a TailSet via restored_tail_state() and
        # re-attaches it.
        ingest._restored_tails = state.get("tails")
        return ingest

    # ---------------------------------------------------------- diagnostics

    @property
    def n_buffered(self) -> int:
        """Messages currently held in the reorder buffer."""
        return len(self._buffer)

    @property
    def watermark_lag(self) -> float:
        """Ingest clock minus the global watermark (0.0 before both)."""
        watermark = self.watermark()
        if watermark is None or self._clock is None:
            return 0.0
        return self._clock - watermark

    def health(self) -> dict[str, float]:
        """One-call health snapshot; keys are exactly
        :data:`INGEST_HEALTH_KEYS`."""
        states = [src.state for src in self._sources.values()]
        total = lambda field: sum(  # noqa: E731 - tiny local reducer
            getattr(src, field) for src in self._sources.values()
        )
        tail_status = (
            self._tails.status() if self._tails is not None else {}
        )
        tail_total = lambda key: sum(  # noqa: E731 - tiny local reducer
            row[key] for row in tail_status.values()
        )
        return {
            "sources": len(self._sources),
            "buffered_messages": len(self._buffer),
            "peak_buffered": self._peak_buffered,
            "watermark_lag_seconds": self.watermark_lag,
            "admitted": total("admitted"),
            "late_dropped": total("late_dropped"),
            "deduplicated": total("deduplicated"),
            "sequence_gaps": total("seq_gaps"),
            "forced_flushes": self._forced_flushes,
            "admission_shed": total("admission_shed"),
            "breaker_rejected": total("breaker_rejected"),
            "breaker_open": states.count("open"),
            "breaker_half_open": states.count("half_open"),
            "breaker_transitions": total("transitions"),
            "tailed_sources": len(tail_status),
            "tail_rotations": tail_total("rotations"),
            "tail_truncations": tail_total("truncations"),
            "tail_lag_bytes": tail_total("lag_bytes"),
        }

    def _maybe_record_metrics(self) -> None:
        # Sweep-granularity flushing, mirroring the stream's own policy:
        # the ingest hot path must not pay a registry write per arrival.
        if self._clock is None:
            return
        if (
            self._last_metrics_clock is not None
            and self._clock - self._last_metrics_clock < 300.0
        ):
            return
        self._last_metrics_clock = self._clock
        self.record_metrics()

    def record_metrics(self) -> None:
        """Flush ingest gauges/counters into the metrics registry."""
        registry = get_registry()
        if not registry.enabled:
            return
        registry.set_gauge(INGEST_BUFFERED, len(self._buffer))
        registry.set_gauge(INGEST_WATERMARK_LAG, self.watermark_lag)
        for src in self._sources.values():
            registry.set_gauge(
                BREAKER_STATE,
                BREAKER_STATES.index(src.state),
                source=src.name,
            )
            for name, value in (
                (INGEST_ADMITTED, src.admitted),
                (INGEST_LATE_DROPPED, src.late_dropped),
                (INGEST_DEDUPLICATED, src.deduplicated),
                (INGEST_SEQ_GAPS, src.seq_gaps),
                (INGEST_ADMISSION_SHED, src.admission_shed),
                (BREAKER_REJECTED, src.breaker_rejected),
            ):
                current = registry.counter_value(name, source=src.name)
                if value > current:
                    registry.inc(name, value - current, source=src.name)
        current = registry.counter_value(INGEST_FORCED_FLUSHES)
        if self._forced_flushes > current:
            registry.inc(INGEST_FORCED_FLUSHES, self._forced_flushes - current)
