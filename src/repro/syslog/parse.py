"""Parsing and rendering of raw syslog lines.

Line format (both vendors, as collected by a syslog server that prepends the
reception metadata, mirroring Table 1 of the paper):

    ``YYYY-MM-DD HH:MM:SS <router> <error-code>: <detail>``

The error code's internal syntax differs per vendor and is recognized by
:mod:`repro.syslog.vendors`.
"""

from __future__ import annotations

import re

from repro.syslog.message import SyslogMessage
from repro.syslog.vendors import vendor_for
from repro.utils.timeutils import format_ts, parse_ts

_LINE = re.compile(
    r"^(?P<ts>\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2})\s+"
    r"(?P<router>\S+)\s+"
    r"(?P<code>[A-Z][A-Za-z0-9_-]*):\s?"
    r"(?P<detail>.*)$"
)


class SyslogParseError(ValueError):
    """Raised when a line cannot be parsed as a syslog message.

    Carries where the bad line came from (``line_no``, 1-based, and
    ``source``, e.g. a file path or feed name) when the caller knows it,
    so quarantine records stay actionable.
    """

    def __init__(
        self,
        message: str,
        line_no: int | None = None,
        source: str | None = None,
    ) -> None:
        where = []
        if source is not None:
            where.append(source)
        if line_no is not None:
            where.append(f"line {line_no}")
        if where:
            message = f"{message} ({', '.join(where)})"
        super().__init__(message)
        self.line_no = line_no
        self.source = source


def parse_line(
    line: str, line_no: int | None = None, source: str | None = None
) -> SyslogMessage:
    """Parse one collector line into a :class:`SyslogMessage`.

    The vendor tag is inferred from the error-code syntax; unknown syntaxes
    are accepted with vendor ``"unknown"`` (SyslogDigest must not require a
    vendor catalogue up front).  ``line_no``/``source`` only annotate the
    error raised on a malformed line.
    """
    match = _LINE.match(line.rstrip("\n"))
    if not match:
        raise SyslogParseError(
            f"unparseable syslog line: {line!r}",
            line_no=line_no,
            source=source,
        )
    code = match.group("code")
    profile = vendor_for(code)
    return SyslogMessage(
        timestamp=parse_ts(match.group("ts")),
        router=match.group("router"),
        error_code=code,
        detail=match.group("detail").strip(),
        vendor=profile.name if profile else "unknown",
    )


def format_line(message: SyslogMessage) -> str:
    """Render a message back into the collector line format."""
    return (
        f"{format_ts(message.timestamp)} {message.router} "
        f"{message.error_code}: {message.detail}"
    )
