"""Router syslog data model: messages, vendor line formats, streams."""

from repro.syslog.collector import (
    CollectorProfile,
    degrade_labeled,
    degrade_stream,
    interleave_arrivals,
)
from repro.syslog.ingest import (
    INGEST_HEALTH_KEYS,
    MultiSourceIngest,
    SourceState,
)
from repro.syslog.message import LabeledMessage, SyslogMessage
from repro.syslog.parse import SyslogParseError, format_line, parse_line
from repro.syslog.tail import SourceTailer, TailSet
from repro.syslog.stream import (
    merge_streams,
    read_log,
    sort_messages,
    split_by_day,
    write_log,
)
from repro.syslog.vendors import VENDOR_V1, VENDOR_V2, VendorProfile, vendor_for

__all__ = [
    "CollectorProfile",
    "INGEST_HEALTH_KEYS",
    "LabeledMessage",
    "MultiSourceIngest",
    "SourceState",
    "SourceTailer",
    "SyslogMessage",
    "SyslogParseError",
    "TailSet",
    "VENDOR_V1",
    "VENDOR_V2",
    "VendorProfile",
    "format_line",
    "interleave_arrivals",
    "merge_streams",
    "parse_line",
    "read_log",
    "sort_messages",
    "split_by_day",
    "degrade_labeled",
    "degrade_stream",
    "vendor_for",
    "write_log",
]
