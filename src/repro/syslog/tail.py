"""Rotation-safe live tailing of collector logs (DESIGN.md §14).

Production syslog feeds are files that *move*: appenders grow them,
logrotate renames them aside (``feed.log`` → ``feed.log.1``) and starts
a fresh file, disk pressure truncates them, and the whole daemon can be
SIGKILLed between any two of those.  :class:`SourceTailer` follows one
such file with a protocol built around two cursors:

* the **read cursor** — how far polling has consumed the current file.
  It lives only in memory and is rebuilt from the committed cursor
  after a restart, so it never needs to be crash-consistent.
* the **committed cursor** — ``(inode, byte offset, stamp clock)`` of
  the last line actually *pushed* into the pipeline
  (:meth:`note_pushed`).  This is the only state that rides inside
  checkpoints: at any instant it points exactly at the frontier the
  stream state accounts for, so a kill -9 resumes with no re-read of
  the consumed prefix and no duplicate push.

Polling is stateless between calls — no file descriptor is held open.
Each poll stats the path and compares the inode and size against the
read cursor:

* **same inode, size grew** — read the appended bytes; complete lines
  become pending entries, a trailing fragment is carried over and
  completed by a later poll.
* **different inode** — the file was rotated.  The old file is found
  among its numbered siblings by inode match, its remainder is drained
  (a trailing fragment becomes the old file's final line — rotation
  means no more bytes are coming), any intermediate rotations are
  replayed oldest-first, then reading restarts at offset 0 of the new
  file.  Because crash recovery re-runs this same search from the
  committed cursor, live rotation handling and post-crash restore are
  one code path.
* **same inode, size shrank below the read cursor** — the file was
  truncated in place.  Reading restarts at offset 0; the carry and any
  not-yet-handed-out lines of that generation are discarded (their
  bytes no longer exist).

Read errors (a failing disk, a vanished file mid-rotation) are counted
and retried on the next poll — a sick source degrades, it never kills
the pipeline.  Timestamp stamping matches
:func:`repro.serve.tenant.stamp_lines` exactly: blank lines are
skipped, unparseable lines ride at the last readable timestamp.
"""

from __future__ import annotations

import os
from collections import deque
from pathlib import Path

from repro.obs import (
    TAIL_LAG_BYTES,
    TAIL_ROTATIONS,
    TAIL_TRUNCATIONS,
    get_registry,
)
from repro.utils.fsio import check_fault
from repro.utils.timeutils import parse_ts

#: Format version of :meth:`TailSet.snapshot` payloads (they ride inside
#: the ingest snapshot, which rides inside stream checkpoints).
TAIL_SNAPSHOT_VERSION = 1

#: The committed-cursor fields one tailer persists.
_CURSOR_FIELDS = (
    "inode",
    "offset",
    "last_ts",
    "rotations",
    "truncations",
    "io_errors",
)


class TailEntry:
    """One complete line read but not yet committed.

    ``end_offset`` is the absolute byte position just past the line's
    newline in the file identified by ``inode`` — committing the entry
    moves the committed cursor there, implicitly consuming any blank
    lines that preceded it.
    """

    __slots__ = ("inode", "end_offset", "ts", "line")

    def __init__(
        self, inode: int, end_offset: int, ts: float, line: str
    ) -> None:
        self.inode = inode
        self.end_offset = end_offset
        self.ts = ts
        self.line = line


class SourceTailer:
    """Committed-cursor, rotation-aware tailer for one source log."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.name = str(path)
        # Committed cursor (rides in snapshots).
        self.inode: int | None = None
        self.offset = 0
        self.last_ts = 0.0
        self.rotations = 0
        self.truncations = 0
        self.io_errors = 0
        # Read-side state (rebuilt by polling, never persisted).
        self._pending: deque[TailEntry] = deque()
        self._handed = 0
        self._read_inode: int | None = None
        self._read_offset = 0
        self._read_ts = 0.0
        self._carry = b""
        self._last_size: int | None = None

    # ------------------------------------------------------------ polling

    def poll(self) -> int:
        """Consume newly appended complete lines; returns how many.

        Every failure mode (missing file, EIO, rotation race) is
        absorbed: the poll returns 0 and the next one retries from the
        same cursor.
        """
        try:
            check_fault("read", self.path)
            st = os.stat(self.path)
        except FileNotFoundError:
            return 0  # mid-rotation gap: the new file is not there yet
        except OSError:
            self.io_errors += 1
            return 0
        self._last_size = st.st_size
        if self._read_inode is None:
            # First poll of this life: resume at the committed cursor
            # (fresh tailers commit-start at offset 0 of the live file).
            if self.inode is None:
                self.inode = st.st_ino
            self._read_inode = self.inode
            self._read_offset = self.offset
            self._read_ts = self.last_ts
        before = len(self._pending)
        try:
            if st.st_ino != self._read_inode:
                self._consume_rotation(st.st_ino)
            else:
                if st.st_size < self._read_offset:
                    self._restart_truncated()
                self._read_lines(self.path, live=True)
        except OSError:
            self.io_errors += 1
        return len(self._pending) - before

    def _consume_rotation(self, new_inode: int) -> None:
        """Drain the rotated-away file(s), then restart at the new one."""
        for old_path, ino in self._rotated_chain():
            if ino != self._read_inode:
                # Hop to the next (never-read) generation in the chain.
                self._read_inode = ino
                self._read_offset = 0
                self._carry = b""
            self._read_lines(old_path, live=False)
        self.rotations += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc(TAIL_ROTATIONS, source=self.name)
        self._read_inode = new_inode
        self._read_offset = 0
        self._carry = b""
        self._read_lines(self.path, live=True)

    def _rotated_chain(self) -> list[tuple[Path, int]]:
        """Dead files still owed to the reader, oldest first.

        The file holding the read cursor's inode is located among the
        numbered rotation siblings (``path.1`` is the newest rotation,
        so a higher index is an older file); anything rotated *after*
        it (lower index) has never been read and is owed in full.  A
        vanished old file yields an empty chain — its unread tail is
        gone, which rotation-with-deletion genuinely loses.
        """
        siblings: list[tuple[int, Path, int]] = []
        index = 1
        while True:
            candidate = self.path.with_name(f"{self.path.name}.{index}")
            try:
                ino = os.stat(candidate).st_ino
            except OSError:
                break
            siblings.append((index, candidate, ino))
            index += 1
        found_at: int | None = None
        for index, candidate, ino in siblings:
            if ino == self._read_inode:
                found_at = index
                break
        if found_at is None:
            return []
        return [
            (candidate, ino)
            for index, candidate, ino in sorted(siblings, reverse=True)
            if index <= found_at
        ]

    def _restart_truncated(self) -> None:
        """The live file shrank under the read cursor: start over at 0."""
        self.truncations += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc(TAIL_TRUNCATIONS, source=self.name)
        generation = self._read_inode
        kept: deque[TailEntry] = deque()
        for i, entry in enumerate(self._pending):
            if i >= self._handed and entry.inode == generation:
                continue  # its bytes were destroyed before anyone saw them
            kept.append(entry)
        self._pending = kept
        self._carry = b""
        self._read_offset = 0
        # With nothing of the old generation left in flight, the
        # committed cursor must restart too — a checkpoint cut now has
        # to resume reading the *new* content from byte 0.
        if self.inode == generation and not any(
            entry.inode == generation for entry in self._pending
        ):
            self.offset = 0

    def _read_lines(self, path: Path, live: bool) -> None:
        """Read from the read cursor to EOF of ``path``.

        ``live=False`` marks a rotated-away file: its trailing fragment
        is emitted as a final line (no more bytes are coming) instead of
        being carried, and the read cursor does not advance past it —
        the caller repoints the cursor at the next generation.
        """
        inode = self._read_inode
        assert inode is not None
        with open(path, "rb") as fh:
            fh.seek(self._read_offset)
            chunk = fh.read()
        if not chunk and not (not live and self._carry):
            return
        data = self._carry + chunk
        # Absolute offset where `data` starts in this file.
        base = self._read_offset - len(self._carry)
        pieces = data.split(b"\n")
        pos = base
        for piece in pieces[:-1]:
            pos += len(piece) + 1
            self._stamp_and_queue(inode, pos, piece)
        remainder = pieces[-1]
        if live:
            self._carry = remainder
        else:
            if remainder:
                # Rotation flushes the carry: the old file's final,
                # newline-less line is still a real line.
                self._stamp_and_queue(inode, pos + len(remainder), remainder)
            self._carry = b""
        self._read_offset += len(chunk)

    def _stamp_and_queue(
        self, inode: int, end_offset: int, raw: bytes
    ) -> None:
        line = raw.decode("utf-8", errors="replace")
        if line.endswith("\r"):
            line = line[:-1]
        if not line.strip():
            return  # blank lines never become arrivals (stamp_lines parity)
        try:
            self._read_ts = parse_ts(line[:19])
        except ValueError:
            pass  # unparseable lines ride at the last readable timestamp
        self._pending.append(
            TailEntry(inode, end_offset, self._read_ts, line)
        )

    # ----------------------------------------------------------- hand-off

    def take_new(self) -> list[tuple[float, str]]:
        """Stamped ``(ts, line)`` pairs polled since the last take."""
        fresh = list(self._pending)[self._handed:]
        self._handed = len(self._pending)
        return [(entry.ts, entry.line) for entry in fresh]

    def note_pushed(self) -> None:
        """Advance the committed cursor past the oldest handed-out line.

        Called once per line actually pushed into the ingest, in hand-out
        order; the committed cursor therefore always equals the pushed
        frontier, which is what makes mid-batch checkpoints (and kill
        -9 between any two pushes) resume exactly.
        """
        if not self._pending:
            raise RuntimeError(
                f"{self.name}: note_pushed with no pending tail line"
            )
        entry = self._pending.popleft()
        if self._handed > 0:
            self._handed -= 1
        self.inode = entry.inode
        self.offset = entry.end_offset
        self.last_ts = entry.ts

    # ----------------------------------------------------- snapshot/health

    def snapshot(self) -> dict:
        """The committed cursor alone — all a resume needs."""
        return {field: getattr(self, field) for field in _CURSOR_FIELDS}

    def restore(self, state: dict) -> None:
        """Adopt a committed cursor captured by :meth:`snapshot`."""
        for field in _CURSOR_FIELDS:
            setattr(self, field, state[field])
        self._pending.clear()
        self._handed = 0
        self._read_inode = None
        self._carry = b""

    def lag_bytes(self) -> int:
        """Bytes on disk the committed cursor has not consumed yet."""
        try:
            st = os.stat(self.path)
        except OSError:
            return 0
        if self.inode is not None and st.st_ino == self.inode:
            return max(0, st.st_size - self.offset)
        return st.st_size  # rotated: the whole new file is unconsumed

    def status(self) -> dict:
        """One operator-facing row (the ``sources`` table/endpoint)."""
        lag = self.lag_bytes()
        registry = get_registry()
        if registry.enabled:
            registry.set_gauge(TAIL_LAG_BYTES, lag, source=self.name)
        return {
            "tail_offset": self.offset,
            "tail_inode": self.inode,
            "rotations": self.rotations,
            "truncations": self.truncations,
            "lag_bytes": lag,
            "carry_bytes": len(self._carry),
            "pending_lines": len(self._pending),
            "io_errors": self.io_errors,
        }


class TailSet:
    """The per-tenant bundle of tailers, one per configured source."""

    def __init__(self, sources) -> None:
        self._order = [str(source) for source in sources]
        self._tailers = {
            name: SourceTailer(name) for name in self._order
        }

    def tailer(self, source: str) -> SourceTailer:
        return self._tailers[str(source)]

    def poll(self) -> int:
        """Poll every source; returns total new complete lines."""
        return sum(
            self._tailers[name].poll() for name in self._order
        )

    def take_new(self) -> dict[str, list[tuple[float, str]]]:
        """Per-source stamped feeds of everything polled but not handed
        out yet, in source registration order."""
        return {
            name: self._tailers[name].take_new() for name in self._order
        }

    def note_pushed(self, source: str) -> None:
        self._tailers[str(source)].note_pushed()

    def status(self) -> dict[str, dict]:
        """Per-source status rows keyed by source name."""
        return {
            name: self._tailers[name].status() for name in self._order
        }

    def snapshot(self) -> dict:
        return {
            "version": TAIL_SNAPSHOT_VERSION,
            "sources": {
                name: self._tailers[name].snapshot()
                for name in self._order
            },
        }

    @classmethod
    def from_snapshot(cls, state: dict, sources=None) -> "TailSet":
        """Rebuild a tail set from a checkpoint capture.

        ``sources`` (the tenant spec's list) wins for ordering and may
        add sources the checkpoint never saw; cursors are restored for
        every source the capture knows.
        """
        if state.get("version") != TAIL_SNAPSHOT_VERSION:
            raise ValueError(
                f"tail snapshot version {state.get('version')!r} != "
                f"supported {TAIL_SNAPSHOT_VERSION}"
            )
        names = (
            [str(s) for s in sources]
            if sources is not None
            else list(state["sources"])
        )
        tails = cls(names)
        for name, cursor in state["sources"].items():
            if name in tails._tailers:
                tails._tailers[name].restore(cursor)
        return tails
