"""Router-level graph views over the location dictionary.

Cross-router grouping relates "two ends of one link, session, or *path*"
(Section 4.2.3).  Links and BGP sessions come straight from configs; paths
(e.g. MPLS tunnels) are provisioned objects whose route is not in any one
config, so operators register them explicitly.  This module provides the
graph utilities for that: adjacency extraction, shortest paths over the
learned topology, and path registration so tunnel endpoints become
``connected`` for grouping.
"""

from __future__ import annotations

from collections import deque

from repro.locations.dictionary import LocationDictionary
from repro.locations.model import Location


def adjacency_graph(
    dictionary: LocationDictionary,
) -> dict[str, set[str]]:
    """Router-to-router adjacency implied by all registered links."""
    graph: dict[str, set[str]] = {r: set() for r in dictionary.routers}
    for a, b in dictionary.all_links():
        graph.setdefault(a.router, set()).add(b.router)
        graph.setdefault(b.router, set()).add(a.router)
    return graph


def shortest_path(
    dictionary: LocationDictionary, src: str, dst: str
) -> list[str] | None:
    """BFS shortest router path, or ``None`` when disconnected."""
    if src == dst:
        return [src]
    graph = adjacency_graph(dictionary)
    if src not in graph or dst not in graph:
        return None
    parent: dict[str, str] = {}
    queue: deque[str] = deque([src])
    seen = {src}
    while queue:
        current = queue.popleft()
        for neighbor in sorted(graph.get(current, ())):
            if neighbor in seen:
                continue
            parent[neighbor] = current
            if neighbor == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            seen.add(neighbor)
            queue.append(neighbor)
    return None


def register_path(
    dictionary: LocationDictionary, routers: list[str]
) -> None:
    """Register a provisioned multi-hop path (e.g. an MPLS tunnel).

    The endpoints become ``connected`` at router level, so same-template
    messages on the two ends group cross-router even though no single
    link joins them — the paper's "tunnels (a path) between different
    routers".
    """
    if len(routers) < 2:
        raise ValueError("a path needs at least two routers")
    unknown = [r for r in routers if r not in dictionary.routers]
    if unknown:
        raise ValueError(f"unknown routers in path: {unknown}")
    dictionary.add_link(
        Location.router_level(routers[0]),
        Location.router_level(routers[-1]),
    )


def connected_components(
    dictionary: LocationDictionary,
) -> list[set[str]]:
    """Router partitions of the topology (healthy networks have one)."""
    graph = adjacency_graph(dictionary)
    seen: set[str] = set()
    components: list[set[str]] = []
    for start in sorted(graph):
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in graph[current]:
                if neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
        seen |= component
        components.append(component)
    return components
