"""Location model: kinds, hierarchy levels, and the Location value type.

Figure 3 of the paper defines the physical hierarchy
``router -> slot/linecard -> port -> physical L3 interface -> logical L3
interface`` plus logical configurations (multilink/bundle) that map onto
physical components.  Each kind carries a *level*; prioritization weighs a
message location as ``10 ** (level - 1)`` so an event one level up the
hierarchy is an order of magnitude more important (Section 4.2.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from dataclasses import field as dataclass_field


class LocationKind(enum.IntEnum):
    """Kind of network location.

    The :attr:`level` property gives the hierarchy level (1 = logical
    interface ... 5 = router).  MULTILINK is a logical configuration that
    maps onto several physical interfaces and is weighted at
    physical-interface level.
    """

    LOGICAL_IF = 1
    PHYS_IF = 2
    PORT = 3
    SLOT = 4
    ROUTER = 5
    MULTILINK = 6

    @property
    def level(self) -> int:
        """Hierarchy level used for importance weighting."""
        if self is LocationKind.MULTILINK:
            return int(LocationKind.PHYS_IF)
        return int(self)

    @property
    def weight(self) -> float:
        """Importance weight ``l_m`` used by the prioritization score."""
        return 10.0 ** (self.level - 1)


@dataclass(frozen=True, slots=True, order=True)
class Location:
    """One network location: a component of one router.

    ``name`` is the component name within the router, e.g. ``Serial1/0/10:0``
    for an interface, ``1/0`` for a port, ``1`` for a slot, and the router
    name itself for router-level locations.
    """

    router: str
    kind: LocationKind
    name: str
    # Hash precomputed at construction: Locations are dict/set keys in every
    # grouping pass, so the per-lookup tuple hash adds up at scale.
    _hash: int = dataclass_field(
        init=False, repr=False, compare=False, default=0
    )

    def __post_init__(self) -> None:
        if not self.router:
            raise ValueError("router must be non-empty")
        if not self.name:
            raise ValueError("name must be non-empty")
        object.__setattr__(
            self, "_hash", hash((self.router, self.kind, self.name))
        )

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> tuple[str, LocationKind, str]:
        # _hash is salted by PYTHONHASHSEED, so it must never cross a
        # process boundary: a checkpoint restored in another process
        # (or a payload shipped to a spawn-lane worker) would carry the
        # writer's salt and miss every dict/set bucket here.
        return (self.router, self.kind, self.name)

    def __setstate__(self, state: tuple[str, LocationKind, str]) -> None:
        router, kind, name = state
        object.__setattr__(self, "router", router)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((router, kind, name)))

    @property
    def level(self) -> int:
        """Hierarchy level of this location's kind."""
        return self.kind.level

    @property
    def weight(self) -> float:
        """Importance weight ``l_m`` of this location's kind."""
        return self.kind.weight

    def key(self) -> str:
        """Canonical string key, e.g. ``ar1.atlga|PHYS_IF|Serial1/0/10``."""
        return f"{self.router}|{self.kind.name}|{self.name}"

    @classmethod
    def router_level(cls, router: str) -> Location:
        """Convenience constructor for a router-level location."""
        return cls(router=router, kind=LocationKind.ROUTER, name=router)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.kind is LocationKind.ROUTER:
            return self.router
        return f"{self.router} {self.kind.name.lower()} {self.name}"
