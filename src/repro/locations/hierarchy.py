"""Interface-name grammar and structural hierarchy climbing.

Both vendors name components with slash-separated position digits:

* vendor V1 (IOS-like): ``Serial1/0/10:0`` — type prefix, then
  ``slot/port[/channel][:sub]``; controllers look like ``Serial1/0``.
* vendor V2 (TiMOS-like): ``1/1/1`` ports and ``0/0/1`` interfaces — same
  digits without a type prefix; SAPs append ``:svc``.

The paper's spatial-matching example maps interface ``2/0/0:1`` up to slot
``2`` by reading the digit before the first slash; :func:`ancestors_of_name`
generalizes that climb.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.locations.model import Location, LocationKind

_IF_NAME = re.compile(
    r"^(?P<type>[A-Za-z][A-Za-z-]*)?"
    r"(?P<slot>\d+)/(?P<port>\d+)"
    r"(?:/(?P<chan>\d+))?"
    r"(?::(?P<sub>\d+))?$"
)

_MULTILINK = re.compile(r"^(?P<type>Multilink|Bundle-Ether|lag)-?(?P<id>\d+)$")


@dataclass(frozen=True, slots=True)
class InterfaceName:
    """Decomposed component name.

    ``kind`` is inferred from which positional fields are present:
    slot/port -> PORT, slot/port/chan -> PHYS_IF, any ``:sub`` suffix ->
    LOGICAL_IF, and Multilink/Bundle/lag names -> MULTILINK.
    """

    raw: str
    if_type: str
    slot: int | None
    port: int | None
    channel: int | None
    sub: int | None
    kind: LocationKind

    @property
    def port_name(self) -> str | None:
        """Name of the enclosing port (``slot/port``), if positional."""
        if self.slot is None or self.port is None:
            return None
        return f"{self.slot}/{self.port}"

    @property
    def physical_name(self) -> str | None:
        """Name of the enclosing physical interface, if any."""
        if self.kind is LocationKind.LOGICAL_IF:
            return self.raw.rsplit(":", 1)[0]
        if self.kind is LocationKind.PHYS_IF:
            return self.raw
        return None


def parse_interface_name(name: str) -> InterfaceName | None:
    """Parse a component name; return ``None`` when not interface-like."""
    ml = _MULTILINK.match(name)
    if ml:
        return InterfaceName(
            raw=name,
            if_type=ml.group("type"),
            slot=None,
            port=None,
            channel=None,
            sub=None,
            kind=LocationKind.MULTILINK,
        )
    match = _IF_NAME.match(name)
    if not match:
        return None
    slot = int(match.group("slot"))
    port = int(match.group("port"))
    chan = match.group("chan")
    sub = match.group("sub")
    if sub is not None:
        kind = LocationKind.LOGICAL_IF
    elif chan is not None:
        kind = LocationKind.PHYS_IF
    else:
        kind = LocationKind.PORT
    return InterfaceName(
        raw=name,
        if_type=match.group("type") or "",
        slot=slot,
        port=port,
        channel=int(chan) if chan is not None else None,
        sub=int(sub) if sub is not None else None,
        kind=kind,
    )


def ancestors_of_name(router: str, name: str) -> list[Location]:
    """Structural ancestors of component ``name`` on ``router``.

    Returned bottom-up, starting with the component itself and ending at the
    router level.  Multilinks have no positional parent — their physical
    members are recorded in the location dictionary instead — so their only
    structural ancestor is the router.
    """
    parsed = parse_interface_name(name)
    router_loc = Location.router_level(router)
    if parsed is None:
        # Unrecognized component (e.g. a process name): router-level only.
        return [router_loc]
    chain = [Location(router, parsed.kind, parsed.raw)]
    if parsed.kind is LocationKind.MULTILINK:
        chain.append(router_loc)
        return chain
    if parsed.kind is LocationKind.LOGICAL_IF and parsed.physical_name:
        phys = parse_interface_name(parsed.physical_name)
        if phys is not None and phys.kind is LocationKind.PHYS_IF:
            chain.append(Location(router, LocationKind.PHYS_IF, phys.raw))
    if parsed.port_name and parsed.kind in (
        LocationKind.LOGICAL_IF,
        LocationKind.PHYS_IF,
        LocationKind.PORT,
    ):
        port_loc = Location(router, LocationKind.PORT, parsed.port_name)
        if port_loc != chain[-1]:
            chain.append(port_loc)
    if parsed.slot is not None:
        chain.append(Location(router, LocationKind.SLOT, str(parsed.slot)))
    chain.append(router_loc)
    return chain
