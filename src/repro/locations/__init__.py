"""Location learning: models, config parsing, dictionaries, extraction.

Section 4.1.2 of the paper: a router almost always logs only locations it
knows about — those in its configuration.  So the location dictionary is
built offline from router configs, then used online to recognize and resolve
location strings embedded in free-form syslog text.
"""

from repro.locations.configparse import parse_config, parse_configs
from repro.locations.dictionary import LocationDictionary
from repro.locations.extract import LocationExtractor
from repro.locations.hierarchy import (
    InterfaceName,
    ancestors_of_name,
    parse_interface_name,
)
from repro.locations.model import Location, LocationKind
from repro.locations.netgraph import (
    adjacency_graph,
    connected_components,
    register_path,
    shortest_path,
)
from repro.locations.spatial import spatially_matched

__all__ = [
    "InterfaceName",
    "Location",
    "LocationDictionary",
    "LocationExtractor",
    "LocationKind",
    "adjacency_graph",
    "ancestors_of_name",
    "connected_components",
    "parse_config",
    "parse_configs",
    "parse_interface_name",
    "register_path",
    "shortest_path",
    "spatially_matched",
]
