"""Router config parsing into location dictionaries.

Configs are far better structured than syslog text (Section 4.1.2), so the
dictionary is learned from them.  The grammar we parse is a compact
IOS-flavoured subset — the same one :mod:`repro.netsim.configgen` emits —
with stanzas separated by ``!``:

    hostname ar1.atlga
    site GA
    !
    card 1 type linecard-16
    !
    controller Serial1/0
    !
    interface Serial1/0/10:0
     description to ar2.chiil Serial2/1/5:0
     ip address 10.0.12.1 255.255.255.252
    !
    interface Multilink3
     multilink-group member Serial1/0/10:0
    !
    router bgp 7018
     neighbor 10.0.12.2 remote-as 7018

Cross-router information (link far ends from descriptions, BGP sessions from
neighbor IPs) can only be resolved after all configs are parsed; use
:func:`parse_configs` for a whole network.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.locations.dictionary import LocationDictionary, build_dictionary
from repro.locations.hierarchy import parse_interface_name
from repro.locations.model import Location, LocationKind

_DESCRIPTION = re.compile(r"^description to (\S+) (\S+)$")
_IP_ADDRESS = re.compile(r"^ip address (\d+\.\d+\.\d+\.\d+) (\d+\.\d+\.\d+\.\d+)$")
_NEIGHBOR = re.compile(r"^neighbor (\d+\.\d+\.\d+\.\d+) remote-as (\d+)")
_MEMBER = re.compile(r"^multilink-group member (\S+)$")


class ConfigParseError(ValueError):
    """Raised on a config the parser cannot understand."""


def _stanzas(text: str) -> Iterable[list[str]]:
    """Split config text into stanzas (lists of stripped non-empty lines)."""
    current: list[str] = []
    for raw in text.splitlines():
        line = raw.rstrip()
        if line.strip() == "!":
            if current:
                yield current
                current = []
            continue
        if line.strip():
            current.append(line)
    if current:
        yield current


def parse_config(text: str) -> LocationDictionary:
    """Parse one router's config into a (partial) location dictionary.

    BGP neighbor IPs are stored as pending session endpoints resolved during
    :func:`parse_configs`; here we record them under the private attribute
    the merger reads.
    """
    dictionary = LocationDictionary()
    hostname: str | None = None
    site: str | None = None
    bgp_neighbors: list[str] = []

    for stanza in _stanzas(text):
        head = stanza[0].strip()
        if head.startswith("hostname "):
            # hostname and site share the header stanza.
            for line in stanza:
                stripped = line.strip()
                if stripped.startswith("hostname "):
                    hostname = stripped.split(None, 1)[1]
                elif stripped.startswith("site "):
                    site = stripped.split(None, 1)[1]
        elif head.startswith("site "):
            site = head.split(None, 1)[1]
        elif head.startswith("card "):
            if hostname is None:
                raise ConfigParseError("card stanza before hostname")
            slot = head.split()[1]
            dictionary.add_router(hostname, site)
            dictionary._components[hostname].add(
                Location(hostname, LocationKind.SLOT, slot)
            )
        elif head.startswith("controller "):
            if hostname is None:
                raise ConfigParseError("controller stanza before hostname")
            dictionary.add_router(hostname, site)
            dictionary.add_component(hostname, head.split(None, 1)[1])
        elif head.startswith("interface "):
            if hostname is None:
                raise ConfigParseError("interface stanza before hostname")
            dictionary.add_router(hostname, site)
            _parse_interface_stanza(dictionary, hostname, stanza)
        elif head.startswith("router bgp"):
            for line in stanza[1:]:
                match = _NEIGHBOR.match(line.strip())
                if match:
                    bgp_neighbors.append(match.group(1))

    if hostname is None:
        raise ConfigParseError("config has no hostname")
    dictionary.add_router(hostname, site)
    # Stash BGP neighbor IPs for cross-config resolution.
    dictionary._bgp_neighbor_ips = [(hostname, ip) for ip in bgp_neighbors]  # type: ignore[attr-defined]
    return dictionary


def _parse_interface_stanza(
    dictionary: LocationDictionary, hostname: str, stanza: list[str]
) -> None:
    name = stanza[0].strip().split(None, 1)[1]
    location = dictionary.add_component(hostname, name)
    for line in stanza[1:]:
        stripped = line.strip()
        match = _IP_ADDRESS.match(stripped)
        if match:
            dictionary.set_ip(location, match.group(1))
            continue
        match = _DESCRIPTION.match(stripped)
        if match:
            dictionary.add_pending_link(
                hostname, match.group(1), name, match.group(2)
            )
            continue
        match = _MEMBER.match(stripped)
        if match:
            member_name = match.group(1)
            member = dictionary.add_component(hostname, member_name)
            parsed = parse_interface_name(name)
            if parsed and parsed.kind is LocationKind.MULTILINK:
                dictionary.add_multilink_member(location, member)


def parse_configs(texts: Iterable[str]) -> LocationDictionary:
    """Parse all router configs of a network and resolve cross-router data.

    Links come from matching interface descriptions against the far router's
    inventory; BGP sessions come from resolving neighbor IPs through the
    merged IP map — both are only possible with the full set of configs,
    which is why the paper runs this as an offline batch step.
    """
    parts = [parse_config(text) for text in texts]
    merged = build_dictionary(parts)
    for part in parts:
        for hostname, neighbor_ip in getattr(part, "_bgp_neighbor_ips", ()):
            far = merged.location_of_ip(neighbor_ip)
            if far is None or far.router == hostname:
                continue
            near = Location.router_level(hostname)
            # A BGP session connects the local router to the far interface's
            # router; register at router<->interface granularity so both
            # hierarchy climbs can find it.
            merged.add_link(near, far)
    return merged
