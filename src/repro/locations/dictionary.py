"""The location dictionary: everything the network knows about "where".

Built offline from router configs (Section 4.1.2), it provides:

* per-router component inventory (slots, ports, interfaces, multilinks);
* name -> IP and IP -> location mappings;
* the location hierarchy (structural parents plus multilink membership);
* cross-router connectivity: link endpoints, BGP sessions, and multi-hop
  paths (e.g. MPLS secondary paths), used by cross-router grouping.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.hotpath import reference_enabled
from repro.locations.hierarchy import ancestors_of_name, parse_interface_name
from repro.locations.model import Location, LocationKind

#: Bounds on the hierarchy/connectivity caches.  Keys come from message
#: locations, which are attacker-influenced at the margins (unparsed
#: component names), so the caches clear wholesale when full instead of
#: growing without bound.
_MAX_ANCESTOR_CACHE = 1 << 18
_MAX_PAIR_CACHE = 1 << 20


@dataclass
class LocationDictionary:
    """Mutable registry of locations and their relationships.

    Hierarchy and connectivity queries (:meth:`ancestors`,
    :meth:`connected`, :meth:`spatially_matched_pair`) memoize their
    results: the grouping passes ask the same questions for every
    message of a busy location, and name parsing plus the ancestor climb
    dominate the per-message cost at scale.  Every mutator invalidates
    the caches, and they are dropped from pickles so process-pool
    payloads stay small.
    """

    _routers: set[str] = field(default_factory=set)
    _components: dict[str, set[Location]] = field(default_factory=dict)
    _ip_to_location: dict[str, Location] = field(default_factory=dict)
    _location_to_ip: dict[Location, str] = field(default_factory=dict)
    _peers: dict[Location, set[Location]] = field(default_factory=dict)
    _multilink_members: dict[Location, set[Location]] = field(
        default_factory=dict
    )
    _sites: dict[str, str] = field(default_factory=dict)
    _ancestor_cache: dict[Location, tuple[Location, ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _ancestor_set_cache: dict[Location, frozenset[Location]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _connected_cache: dict[tuple[Location, Location], bool] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _spatial_cache: dict[tuple[Location, Location], bool] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    # Lazily-built reverse of _multilink_members (member -> bundles, in
    # bundle insertion order); None until first ancestor query needs it.
    _member_bundles: dict[Location, list[Location]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def _invalidate(self) -> None:
        """Drop memoized query results after any mutation."""
        self._ancestor_cache.clear()
        self._ancestor_set_cache.clear()
        self._connected_cache.clear()
        self._spatial_cache.clear()
        self._member_bundles = None

    def __getstate__(self) -> dict:
        # Caches are pure derived state; rebuilding them beats shipping
        # them to process-pool workers.
        state = self.__dict__.copy()
        state["_ancestor_cache"] = {}
        state["_ancestor_set_cache"] = {}
        state["_connected_cache"] = {}
        state["_spatial_cache"] = {}
        state["_member_bundles"] = None
        return state

    # ------------------------------------------------------------------ build

    def add_router(self, router: str, site: str | None = None) -> Location:
        """Register a router; ``site`` is a state/metro code (e.g. ``GA``)."""
        self._routers.add(router)
        loc = Location.router_level(router)
        self._components.setdefault(router, set()).add(loc)
        if site:
            self._sites[router] = site
        self._invalidate()
        return loc

    def add_component(self, router: str, name: str) -> Location:
        """Register component ``name`` (and its structural ancestors)."""
        if router not in self._routers:
            self.add_router(router)
        chain = ancestors_of_name(router, name)
        self._components[router].update(chain)
        self._invalidate()
        return chain[0]

    def set_ip(self, location: Location, ip: str) -> None:
        """Associate an IP address with a component."""
        self._ip_to_location[ip] = location
        self._location_to_ip[location] = ip
        self._invalidate()

    def add_link(self, a: Location, b: Location) -> None:
        """Register a bidirectional adjacency (link end / session end)."""
        if a.router == b.router:
            raise ValueError(f"link endpoints on the same router: {a}, {b}")
        self._peers.setdefault(a, set()).add(b)
        self._peers.setdefault(b, set()).add(a)
        self._invalidate()

    def add_multilink_member(self, bundle: Location, member: Location) -> None:
        """Record that ``member`` (physical) belongs to ``bundle``."""
        if bundle.kind is not LocationKind.MULTILINK:
            raise ValueError(f"not a multilink location: {bundle}")
        self._multilink_members.setdefault(bundle, set()).add(member)
        self._invalidate()

    def merge(self, other: LocationDictionary) -> None:
        """Fold another dictionary (e.g. one router's config) into this one."""
        self._routers.update(other._routers)
        for router, comps in other._components.items():
            self._components.setdefault(router, set()).update(comps)
        self._ip_to_location.update(other._ip_to_location)
        self._location_to_ip.update(other._location_to_ip)
        for loc, peers in other._peers.items():
            self._peers.setdefault(loc, set()).update(peers)
        for bundle, members in other._multilink_members.items():
            self._multilink_members.setdefault(bundle, set()).update(members)
        self._sites.update(other._sites)
        self._invalidate()

    def resolve_descriptions(self) -> int:
        """Wire up links declared by interface descriptions.

        Config descriptions name the far end (``to <router> <interface>``);
        they can only be resolved once *all* configs are merged, so the
        parser records them via :meth:`add_pending_link` and this method
        resolves them.  Returns the number of links created.
        """
        created = 0
        for router, far_router, local_name, far_name in self._pending_links:
            local = Location(
                router, self._kind_of_name(local_name), local_name
            )
            far = Location(
                far_router, self._kind_of_name(far_name), far_name
            )
            if self.has_component(far):
                self.add_link(local, far)
                created += 1
        self._pending_links.clear()
        return created

    _pending_links: list[tuple[str, str, str, str]] = field(
        default_factory=list
    )

    def add_pending_link(
        self, router: str, far_router: str, local_name: str, far_name: str
    ) -> None:
        """Queue a link declared in a description for later resolution."""
        self._pending_links.append((router, far_router, local_name, far_name))

    @staticmethod
    def _kind_of_name(name: str) -> LocationKind:
        parsed = parse_interface_name(name)
        return parsed.kind if parsed else LocationKind.ROUTER

    # ------------------------------------------------------------------ query

    @property
    def routers(self) -> frozenset[str]:
        """All registered router names."""
        return frozenset(self._routers)

    def site_of(self, router: str) -> str | None:
        """State/metro code of a router, if known."""
        return self._sites.get(router)

    def has_component(self, location: Location) -> bool:
        """True if ``location`` was registered (directly or as an ancestor)."""
        return location in self._components.get(location.router, ())

    def components_of(self, router: str) -> frozenset[Location]:
        """All registered locations of a router."""
        return frozenset(self._components.get(router, ()))

    def location_of_ip(self, ip: str) -> Location | None:
        """The component owning ``ip``, if any."""
        return self._ip_to_location.get(ip)

    def ip_of(self, location: Location) -> str | None:
        """The IP configured on ``location``, if any."""
        return self._location_to_ip.get(location)

    def ancestors(self, location: Location) -> list[Location]:
        """Location and its hierarchy ancestors, bottom-up to router level.

        Multilink membership contributes extra ancestors: a physical member
        interface also maps up into every bundle containing it.
        """
        return list(self._ancestors_tuple(location))

    def _compute_ancestors(self, location: Location) -> list[Location]:
        chain = ancestors_of_name(location.router, location.name)
        if location.kind is LocationKind.ROUTER:
            chain = [Location.router_level(location.router)]
        elif chain[0] != location:
            # Component names that do not parse positionally (e.g. a bare
            # slot number) still belong to their own ancestor chain.
            chain = [location] + chain
        if reference_enabled():
            extra = [
                bundle
                for bundle, members in self._multilink_members.items()
                if location in members
            ]
        else:
            # Reverse index: built by iterating bundles in the same order
            # as the scan above, so per-member bundle order is identical.
            index = self._member_bundles
            if index is None:
                index = {}
                for bundle, members in self._multilink_members.items():
                    for member in members:
                        index.setdefault(member, []).append(bundle)
                self._member_bundles = index
            extra = index.get(location, [])
        return chain + extra

    def _ancestors_tuple(self, location: Location) -> tuple[Location, ...]:
        """Memoized :meth:`ancestors` (uncached under reference mode)."""
        if reference_enabled():
            return tuple(self._compute_ancestors(location))
        cached = self._ancestor_cache.get(location)
        if cached is None:
            if len(self._ancestor_cache) >= _MAX_ANCESTOR_CACHE:
                self._ancestor_cache.clear()
            cached = tuple(self._compute_ancestors(location))
            self._ancestor_cache[location] = cached
        return cached

    def _ancestor_set(self, location: Location) -> frozenset[Location]:
        """Memoized set form of :meth:`ancestors`, for membership tests."""
        if reference_enabled():
            return frozenset(self._compute_ancestors(location))
        cached = self._ancestor_set_cache.get(location)
        if cached is None:
            if len(self._ancestor_set_cache) >= _MAX_ANCESTOR_CACHE:
                self._ancestor_set_cache.clear()
            cached = frozenset(self._ancestors_tuple(location))
            self._ancestor_set_cache[location] = cached
        return cached

    def peers(self, location: Location) -> frozenset[Location]:
        """Directly connected far-end locations (link/session endpoints)."""
        return frozenset(self._peers.get(location, ()))

    def connected(self, a: Location, b: Location) -> bool:
        """True when ``a`` and ``b`` are two ends of one link/session/path.

        The check climbs both hierarchies: a logical interface on one end is
        connected to the peer port's logical interface even if the link was
        registered at physical level.
        """
        if a.router == b.router:
            return False
        if reference_enabled():
            return self._compute_connected(a, b)
        key = (a, b)
        hit = self._connected_cache.get(key)
        if hit is None:
            if len(self._connected_cache) >= _MAX_PAIR_CACHE:
                self._connected_cache.clear()
            hit = self._compute_connected(a, b)
            self._connected_cache[key] = hit
        return hit

    def _compute_connected(self, a: Location, b: Location) -> bool:
        ups_b = self._ancestor_set(b)
        peers = self._peers
        for ua in self._ancestors_tuple(a):
            for peer in peers.get(ua, ()):
                if peer in ups_b:
                    return True
        return False

    def spatially_matched_pair(self, a: Location, b: Location) -> bool:
        """Memoized spatial match (see :mod:`repro.locations.spatial`).

        Same-router pairs map to a common hierarchy location when one is
        the other's ancestor or they share a sub-router ancestor.
        """
        if a.router != b.router:
            return False
        if a == b:
            return True
        key = (a, b)
        hit = self._spatial_cache.get(key)
        if hit is None:
            if len(self._spatial_cache) >= _MAX_PAIR_CACHE:
                self._spatial_cache.clear()
            hit = self._compute_spatial(a, b)
            self._spatial_cache[key] = hit
        return hit

    def _compute_spatial(self, a: Location, b: Location) -> bool:
        ups_a = self._ancestor_set(a)
        ups_b = self._ancestor_set(b)
        if a in ups_b or b in ups_a:
            return True
        for loc in ups_a & ups_b:
            if loc.kind is not LocationKind.ROUTER:
                return True
        return False

    def multilink_members(self, bundle: Location) -> frozenset[Location]:
        """Physical members of a bundle."""
        return frozenset(self._multilink_members.get(bundle, ()))

    def all_links(self) -> list[tuple[Location, Location]]:
        """Each registered adjacency once, as an ordered pair."""
        seen: set[frozenset[Location]] = set()
        out: list[tuple[Location, Location]] = []
        for a, bs in self._peers.items():
            for b in bs:
                key = frozenset((a, b))
                if key not in seen:
                    seen.add(key)
                    out.append(tuple(sorted((a, b))))  # type: ignore[arg-type]
        return out

    def stats(self) -> dict[str, int]:
        """Inventory counts, for reporting."""
        return {
            "routers": len(self._routers),
            "components": sum(len(c) for c in self._components.values()),
            "ips": len(self._ip_to_location),
            "adjacencies": len(self.all_links()),
            "multilinks": len(self._multilink_members),
        }


def build_dictionary(
    parts: Iterable[LocationDictionary],
) -> LocationDictionary:
    """Merge per-router dictionaries and resolve cross-router links."""
    merged = LocationDictionary()
    for part in parts:
        merged.merge(part)
        merged._pending_links.extend(part._pending_links)
    merged.resolve_descriptions()
    return merged
