"""Spatial matching of locations (Section 4.2).

Two locations are *spatially matched* when they can be mapped to the same
location in the hierarchy of Figure 3 — e.g. a message on slot ``2`` matches
a message on interface ``Serial2/0/0:1`` of the same router because the
interface maps upwards to slot ``2``.  Multilink membership participates in
the climb through the dictionary's ancestor expansion.
"""

from __future__ import annotations

from repro.hotpath import reference_enabled
from repro.locations.dictionary import LocationDictionary
from repro.locations.model import Location


def spatially_matched(
    dictionary: LocationDictionary, a: Location, b: Location
) -> bool:
    """True when ``a`` and ``b`` map to a common hierarchy location.

    Router-level locations match everything on the same router (a message
    with no finer location is about the router as a whole).

    The dictionary memoizes the answer per pair; reference mode recomputes
    from scratch so the byte-identity gate exercises the original logic.
    """
    if reference_enabled():
        if a.router != b.router:
            return False
        if a == b:
            return True
        ups_a = set(dictionary.ancestors(a))
        ups_b = set(dictionary.ancestors(b))
        # One is an ancestor of the other, or they share a sub-router
        # ancestor (e.g. two channels of the same port, two members of
        # one bundle).
        common = ups_a & ups_b
        non_router_common = {
            loc for loc in common if loc.kind.name != "ROUTER"
        }
        if a in ups_b or b in ups_a:
            return True
        return bool(non_router_common)
    return dictionary.spatially_matched_pair(a, b)


def common_ancestor(
    dictionary: LocationDictionary, a: Location, b: Location
) -> Location | None:
    """Lowest common ancestor of two locations on the same router, if any."""
    if a.router != b.router:
        return None
    ups_b = set(dictionary.ancestors(b))
    for candidate in dictionary.ancestors(a):  # bottom-up order
        if candidate in ups_b:
            return candidate
    return None
