"""Extracting location information from free-form message text.

Section 4.1.2: the number of *location formats* is small (IP addresses,
``x/x/x`` ports, interface names, slot references), so they are matched with
predefined patterns — but naive pattern matching over-triggers (remote IPs,
scanner IPs, counters that look like ports).  Every candidate is therefore
validated against the location dictionary: a location is kept only when the
originating router actually owns it, or when it resolves to a directly
connected neighbor.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.hotpath import reference_enabled
from repro.locations.dictionary import LocationDictionary
from repro.locations.hierarchy import parse_interface_name
from repro.locations.model import Location, LocationKind

_IP = re.compile(r"\b(\d{1,3}(?:\.\d{1,3}){3})\b")
_IFACE = re.compile(
    r"\b((?:[A-Za-z][A-Za-z-]*)?\d+/\d+(?:/\d+)?(?::\d+)?)\b"
)
_MULTILINK = re.compile(r"\b((?:Multilink|Bundle-Ether|lag)-?\d+)\b")
_SLOT_REF = re.compile(r"\bslot\s+(\d+)\b", re.IGNORECASE)

# One combined scan as a *prefilter*: IGNORECASE over the union is a strict
# superset of each per-category pattern, so no match here proves no
# per-category pattern matches anywhere and the four exact scans can be
# skipped.  (The exact scans still run on a hit — a single alternation
# pass would drop overlapping cross-category matches like the IFACE
# reading of "Multilink-12/3" shadowed by the MULTILINK branch.)
_ANY = re.compile(
    "|".join(
        p.pattern for p in (_MULTILINK, _IFACE, _SLOT_REF, _IP)
    ),
    re.IGNORECASE,
)


@dataclass(frozen=True, slots=True)
class ExtractedLocation:
    """A validated location found in a message.

    ``role`` records how it was resolved: ``local`` (owned by the
    originating router), ``neighbor`` (owned by a connected router, e.g. a
    BGP neighbor IP), or ``router`` (the originating router itself — always
    present as a fallback).
    """

    location: Location
    role: str
    source_text: str


class LocationExtractor:
    """Finds and validates locations embedded in syslog detail text."""

    def __init__(self, dictionary: LocationDictionary) -> None:
        self._dictionary = dictionary

    def extract(self, router: str, detail: str) -> list[ExtractedLocation]:
        """All validated locations in ``detail``, most specific first.

        Always includes the router-level location last so every message has
        at least one location (Section 4.1.2's router-id fallback).
        """
        if not reference_enabled() and _ANY.search(detail) is None:
            # Nothing location-shaped anywhere in the text: only the
            # router-id fallback applies.
            return [
                ExtractedLocation(
                    Location.router_level(router), "router", router
                )
            ]

        found: list[ExtractedLocation] = []
        seen: set[Location] = set()

        def keep(loc: Location, role: str, text: str) -> None:
            if loc not in seen:
                seen.add(loc)
                found.append(ExtractedLocation(loc, role, text))

        for match in _MULTILINK.finditer(detail):
            loc = Location(router, LocationKind.MULTILINK, match.group(1))
            if self._dictionary.has_component(loc):
                keep(loc, "local", match.group(1))

        for match in _IFACE.finditer(detail):
            name = match.group(1)
            parsed = parse_interface_name(name)
            if parsed is None:
                continue
            loc = Location(router, parsed.kind, name)
            if self._dictionary.has_component(loc):
                keep(loc, "local", name)

        for match in _SLOT_REF.finditer(detail):
            loc = Location(router, LocationKind.SLOT, match.group(1))
            if self._dictionary.has_component(loc):
                keep(loc, "local", match.group(0))

        for match in _IP.finditer(detail):
            ip = match.group(1)
            owner = self._dictionary.location_of_ip(ip)
            if owner is None:
                continue  # remote/invalid IP (e.g. scanning attack source)
            if owner.router == router:
                keep(owner, "local", ip)
            elif self._dictionary.connected(
                Location.router_level(router), owner
            ) or self._dictionary.connected(owner, Location.router_level(router)):
                keep(owner, "neighbor", ip)
            else:
                # An IP of some unrelated router in the network: still a
                # known location, but mark it remote; grouping ignores it.
                keep(owner, "remote", ip)

        keep(Location.router_level(router), "router", router)
        return found

    def primary(self, router: str, detail: str) -> Location:
        """Most specific local location, falling back to router level."""
        for item in self.extract(router, detail):
            if item.role == "local":
                return item.location
        return Location.router_level(router)
