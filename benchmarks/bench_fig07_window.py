"""Figure 7 — number of rules vs window size W.

Paper: Conf_min = 0.8, SP_min = 5e-4; the count grows with W and the
growth flattens around W = 120 s for dataset A and W = 40 s for dataset B.
The knee comes from associations with built-in lag — controller/link/line
protocol messages 10-30 s apart in A, the ftp->ssh login-failure pairs
30-40 s apart in B — which only enter once W covers the lag.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.mining.rules import RuleMiner
from repro.mining.transactions import transaction_stats

WINDOWS = (5.0, 10.0, 20.0, 30.0, 40.0, 60.0, 120.0, 180.0, 240.0, 300.0)


def _curve(events):
    counts = []
    for window in WINDOWS:
        stats = transaction_stats(events, window)
        miner = RuleMiner(window=window, sp_min=0.0005, conf_min=0.8)
        counts.append(miner.rules_from_stats(stats).n_rules)
    return counts


def test_fig07_rules_vs_window(benchmark, plus_events_a, plus_events_b):
    curve_a = benchmark.pedantic(
        _curve, args=(plus_events_a,), rounds=1, iterations=1
    )
    curve_b = _curve(plus_events_b)

    rows = [
        (int(w), a, b) for w, a, b in zip(WINDOWS, curve_a, curve_b)
    ]
    record_table(
        "fig07_rules_vs_window",
        ["W (s)", "#rules (A)", "#rules (B)"],
        rows,
        title="Figure 7: rules vs W, Confmin=0.8, SPmin=5e-4 "
        "(paper: growth flattens ~120s for A, ~40s for B)",
    )

    # Shape: rule count grows with W, allowing one-off dips — a larger
    # window also inflates confidence denominators (supp(X) counts more
    # window positions), which can retire a borderline rule.
    for curve in (curve_a, curve_b):
        running_max = curve[0]
        for value in curve:
            assert value >= running_max - 2
            running_max = max(running_max, value)
    assert curve_a[-1] > curve_a[0]
    # B's login-scan association appears somewhere in the 30-60 s range.
    idx40 = WINDOWS.index(40.0)
    idx5 = WINDOWS.index(5.0)
    assert curve_b[idx40] > curve_b[idx5]
