"""Figure 8 — rule knowledge base over 12 weekly updates, dataset A.

Paper: total rules grow as new behaviours appear, then stabilize around
week 6, with added/deleted near zero afterwards.  Our dataset phases in
new scenario kinds through week 5 to drive the same dynamics.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from benchmarks.conftest import WINDOW_A
from repro.mining.rules import RuleMiner
from repro.mining.rulestore import RuleStore
from repro.netsim.datasets import LEARNING_START
from repro.utils.timeutils import DAY

N_WEEKS = 12


def weekly_rule_history(plus_events, window):
    store = RuleStore(
        miner=RuleMiner(window=window, sp_min=0.0005, conf_min=0.8)
    )
    rows = []
    for week in range(N_WEEKS):
        start = LEARNING_START + week * 7 * DAY
        end = start + 7 * DAY
        week_events = [e for e in plus_events if start <= e[0] < end]
        delta = store.update(week_events)
        rows.append(
            (week + 1, delta.total_after, len(delta.added), len(delta.deleted))
        )
    return rows


def test_fig08_weekly_rules_dataset_a(benchmark, plus_events_a):
    rows = benchmark.pedantic(
        weekly_rule_history,
        args=(plus_events_a, WINDOW_A),
        rounds=1,
        iterations=1,
    )
    record_table(
        "fig08_weekly_rules_a",
        ["week", "total rules", "added", "deleted"],
        rows,
        title="Figure 8: weekly rule updates, dataset A "
        "(paper: stabilizes around week 6)",
    )

    totals = [r[1] for r in rows]
    added = [r[2] for r in rows]
    deleted = [r[3] for r in rows]
    # Growth phase: the phase-ins (scans week 2, environment alarms week
    # 4) enlarge the base over the first six weeks.
    assert totals[5] > totals[0]
    # Stability phase: weekly churn after week 6 is small relative to the
    # base (the paper's bars hover near zero).
    late_churn = max(
        a + d for a, d in zip(added[6:], deleted[6:])
    )
    assert late_churn <= max(3, int(0.3 * totals[-1]))
    assert totals[-1] > 0
