"""Helpers shared by the benchmark/reproduction harness."""

from __future__ import annotations

from pathlib import Path

from repro.utils.textable import render_table

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Print a reproduced table/figure and persist it under results/.

    EXPERIMENTS.md points at these files; printing as well makes ``-s``
    runs self-contained.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====\n{text}\n")


def record_table(name: str, headers, rows, title: str | None = None) -> str:
    text = render_table(headers, rows, title=title)
    record(name, text)
    return text


def sci(x: float) -> str:
    """Scientific-notation cell, matching the paper's table style."""
    return f"{x:.2e}"
