"""Figure 9 — rule knowledge base over 12 weekly updates, dataset B.

Paper: same dynamics as Figure 8 but stabilizing later (around week 8);
dataset B's latest scenario kinds phase in through week 7.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from benchmarks.bench_fig08_weekly_rules_a import weekly_rule_history
from benchmarks.conftest import WINDOW_B


def test_fig09_weekly_rules_dataset_b(benchmark, plus_events_b):
    rows = benchmark.pedantic(
        weekly_rule_history,
        args=(plus_events_b, WINDOW_B),
        rounds=1,
        iterations=1,
    )
    record_table(
        "fig09_weekly_rules_b",
        ["week", "total rules", "added", "deleted"],
        rows,
        title="Figure 9: weekly rule updates, dataset B "
        "(paper: stabilizes around week 8)",
    )

    totals = [r[1] for r in rows]
    added = [r[2] for r in rows]
    assert totals[-1] > 0
    # Dataset B keeps growing later than A: the login scans (week 5) and
    # port alarms (week 7) still add rules mid-period...
    assert sum(added[4:8]) > 0
    assert totals[7] > totals[2]
    # ...and the final weeks are quieter than the growth phase.
    growth_added = sum(added[1:8])
    late_added = sum(added[9:])
    assert late_added <= max(2, growth_added)
