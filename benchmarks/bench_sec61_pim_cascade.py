"""Section 6.1 — the PIM neighbor-loss troubleshooting case study.

Paper narrative: a PIM session flap looked like a single-failure mystery;
the SyslogDigest event signature revealed the secondary LSP path had been
failing to set up (retries every ~5 minutes), so the "protected" primary
failure cut multicast.  The digest event spans many messages, several
routers, many error codes across protocols — and no fixed grep window
(+/-60 s misses the retries, +/-3600 s buries the operator).
"""

from __future__ import annotations

from benchmarks._shared import record, record_table
from repro.apps.troubleshoot import EventBrowser


def test_sec61_pim_cascade_digest(benchmark, system_b, live_b, digest_b):
    cascades = [
        inc for inc in live_b.incidents if inc.kind == "b_pim_cascade"
    ]
    assert cascades, "online window contains no PIM cascade"
    incident = max(cascades, key=lambda inc: inc.n_messages)

    # Find the digest event holding the PIM-loss messages of this incident.
    truth_index = {
        i: lm.event_id for i, lm in enumerate(live_b.messages)
    }

    def locate():
        best, best_overlap = None, 0
        for event in digest_b.events:
            overlap = sum(
                1
                for i in event.indices
                if truth_index.get(i) == incident.event_id
            )
            has_pim = any(
                "pimNbrLoss" in code for code in event.error_codes
            )
            if has_pim and overlap > best_overlap:
                best, best_overlap = event, overlap
        return best, best_overlap

    event, overlap = benchmark.pedantic(locate, rounds=1, iterations=1)
    assert event is not None

    browser = EventBrowser(
        events=digest_b.events,
        raw_messages=[m.message for m in live_b.messages],
    )
    router = event.routers[0]
    narrow = browser.naive_window_message_count(event.start_ts, 60.0, router)
    wide = browser.naive_window_message_count(event.start_ts, 3600.0, router)

    rows = [
        ("digest event messages", event.n_messages),
        ("ground-truth incident messages", incident.n_messages),
        ("overlap with incident", overlap),
        ("routers involved", len(event.routers)),
        ("distinct error codes", len(event.error_codes)),
        ("rank in digest", digest_b.events.index(event) + 1),
        ("raw msgs in +/-60s grep", narrow),
        ("raw msgs in +/-3600s grep", wide),
    ]
    record_table(
        "sec61_pim_cascade",
        ["metric", "value"],
        rows,
        title="Section 6.1: PIM neighbor-loss cascade "
        "(paper: hundreds of msgs, dozen routers, 15 codes, 6 protocols)",
    )
    record(
        "sec61_pim_event",
        browser.investigation_report(event)[:4000],
    )

    # The cascade surfaces as one multi-protocol, multi-router event whose
    # signature includes the secondary-path retries.
    assert len(event.routers) >= 2
    assert len(event.error_codes) >= 4
    assert any("lspPathRetry" in code for code in event.error_codes), (
        "the event signature must expose the broken secondary path"
    )
    assert any("pimNbrLoss" in code for code in event.error_codes)
    assert overlap >= 0.4 * incident.n_messages
    # The event ranks prominently (multi-router, rare, router-level).
    assert digest_b.events.index(event) < 0.25 * len(digest_b.events)
