"""Ablation — the sub-type tree prune threshold k (paper picks k = 10).

Small k collapses genuine sub-types (the five BGP reasons need k >= 5);
very large k lets narrow-pool variables split templates apart.  Template
accuracy against ground truth quantifies the trade-off.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.netsim.catalog import CATALOG_V1
from repro.templates.evaluate import template_accuracy
from repro.templates.learner import TemplateLearner

K_VALUES = (2, 5, 10, 50)


def test_ablation_tree_k(benchmark, history_a):
    messages = [m.message for m in history_a.messages]

    def sweep():
        out = []
        for k in K_VALUES:
            learner = TemplateLearner(k=k)
            learned = learner.learn(messages)
            acc = template_accuracy(learned, CATALOG_V1, history_a.messages)
            out.append((k, len(learned), acc))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (k, n_templates, f"{acc.accuracy:.1%}",
         ", ".join(acc.mismatches[:4]))
        for k, n_templates, acc in results
    ]
    record_table(
        "ablation_tree_k",
        ["k", "#templates", "accuracy", "example mismatches"],
        rows,
        title="Ablation: sub-type tree prune threshold k (paper: k=10)",
    )

    by_k = {k: acc for k, _n, acc in results}
    by_templates = {k: n for k, n, _acc in results}
    bgp_subtypes = {
        "v1.bgp_down_sent",
        "v1.bgp_down_received",
        "v1.bgp_down_peerclosed",
        "v1.bgp_down_ifflap",
    }
    # k=2 collapses the >2-way BGP reason branching into one sub-type...
    assert bgp_subtypes & set(by_k[2].mismatches)
    # ...which k=10 (the paper's choice) fully recovers.
    assert not bgp_subtypes & set(by_k[10].mismatches)
    # A permissive k lets narrow-pool variables explode the template set
    # and drags accuracy down.
    assert by_templates[50] > 3 * by_templates[10]
    assert by_k[10].accuracy > by_k[50].accuracy
