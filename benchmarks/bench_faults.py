"""Fault-injection harness — the digester must survive every profile.

Each :class:`~repro.netsim.faults.FaultProfile` damages a labelled
trace (or the compute path) and the streaming digester runs over it
through the resilient ingest layer: unparseable lines and skew-rejected
replays land in the quarantine, overload sheds, worker faults retry and
fall back.  We report event-recall (injected conditions still surfaced
in at least one digest event) and the stream's state size under each
profile, and assert three robustness invariants:

1. no profile raises an unhandled exception out of the digest loop;
2. the zero-fault profile is a strict no-op (identical events to a
   plain uninterrupted run — same indices, same scores);
3. recall degrades gracefully, never collapses.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.core.stream import DigestStream
from repro.netsim.faults import (
    Compose,
    CorruptLines,
    DuplicateBurst,
    FaultProfile,
    FeedStall,
    TruncateLines,
    WorkerFaults,
    labeled_pairs,
)
from repro.obs import FAULTS_INJECTED, NullRegistry, get_registry, scoped_registry
from repro.syslog.parse import SyslogParseError, parse_line
from repro.syslog.resilient import Quarantine, push_safe

PROFILES: tuple[FaultProfile, ...] = (
    FaultProfile(),  # clean — must be a strict no-op
    CorruptLines(rate=0.05, seed=7),
    TruncateLines(rate=0.05, seed=8),
    FeedStall(start_fraction=0.4, duration=1800.0),
    DuplicateBurst(rate=0.02, copies=4, seed=9),
    WorkerFaults(fail_shards=(0,), fail_attempts=1),
    Compose(
        name="everything",
        profiles=(
            CorruptLines(rate=0.03, seed=17),
            TruncateLines(rate=0.03, seed=18),
            DuplicateBurst(rate=0.01, copies=3, seed=19),
            FeedStall(start_fraction=0.6, duration=900.0),
            WorkerFaults(fail_shards=(1,), fail_attempts=2),
        ),
    ),
)


def _stream_digest(system, pairs, profile):
    """Run the faulted trace through the resilient streaming path."""
    config = system.config.with_workers(4)
    stream = DigestStream(
        system.kb, config, fault_hook=profile.stream_fault_hook()
    )
    quarantine = Quarantine()
    stream.attach_quarantine(quarantine)
    events = []
    recalled: set = set()
    batch: list = []
    labels: list = []
    for line, label in pairs:
        try:
            message = parse_line(line)
        except SyslogParseError as exc:
            quarantine.add_parse_error(line, exc)
            continue
        batch.append(message)
        labels.append(label)
        if len(batch) >= 500:
            events.extend(_push_batch(stream, batch, labels, quarantine, recalled))
            batch, labels = [], []
    events.extend(_push_batch(stream, batch, labels, quarantine, recalled))
    events.extend(stream.close())
    return events, recalled, quarantine, stream


def _push_batch(stream, batch, labels, quarantine, recalled):
    """push_many when the whole batch is admissible, else per-message."""
    out = []
    for message, label in zip(batch, labels):
        events = push_safe(stream, message, quarantine)
        out.extend(events)
        if label is not None:
            recalled.add(label)
    return out


def test_fault_profiles(benchmark, system_a, live_a):
    pairs_clean = labeled_pairs(live_a.messages)
    truth = {lm.event_id for lm in live_a.messages if lm.event_id is not None}

    # The uninterrupted reference run: same collector-line feed (the
    # line format truncates sub-second timestamps, so the reference must
    # consume the formatted lines too), no faults, no resilient wrapper.
    reference = DigestStream(system_a.kb, system_a.config.with_workers(4))
    ref_events = []
    for line, _label in pairs_clean:
        ref_events.extend(reference.push(parse_line(line)))
    ref_events.extend(reference.close())

    def sweep():
        rows = []
        for profile in PROFILES:
            with scoped_registry(NullRegistry()):
                pairs = profile.apply(list(pairs_clean))
                events, recalled, quarantine, stream = _stream_digest(
                    system_a, pairs, profile
                )
            health = stream.health()
            recall = len(recalled & truth) / len(truth) if truth else 1.0
            rows.append(
                (
                    profile.name,
                    len(pairs),
                    len(events),
                    recall,
                    quarantine.total,
                    int(health["shed_messages"]),
                    int(
                        health["splitters"] + health["window_entries"]
                    ),
                    events,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "faults",
        [
            "profile",
            "#lines",
            "#events",
            "event recall",
            "quarantined",
            "shed",
            "state size",
        ],
        [
            (name, n, events, f"{recall:.1%}", quarantined, shed, state)
            for name, n, events, recall, quarantined, shed, state, _ in rows
        ],
        title="Fault injection: recall and state size per profile",
    )

    clean = rows[0]
    assert clean[0] == "clean"
    # Strict no-op: the clean profile produces the reference run exactly.
    assert [
        (frozenset(e.indices), e.score) for e in clean[7]
    ] == [(frozenset(e.indices), e.score) for e in ref_events]
    assert clean[3] == 1.0 and clean[4] == 0 and clean[5] == 0

    for name, _n, n_events, recall, _q, _shed, _state, _ in rows:
        assert n_events > 0, name
        # Graceful degradation: most injected conditions stay visible.
        assert recall > 0.6, (name, recall)

    # The fault counters themselves are observable when a registry is on.
    registry = get_registry()
    with scoped_registry(type(registry)()):
        CorruptLines(rate=1.0, seed=1).apply(pairs_clean[:10])
        assert get_registry().counter_value(FAULTS_INJECTED, kind="corrupt") == 10.0
