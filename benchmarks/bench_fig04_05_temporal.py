"""Figures 4 & 5 — the temporal patterns motivating EWMA grouping.

Figure 4: an unstable controller goes up/down many times within a short
interval — a dense burst the model must keep in one group.
Figure 5: TCP bad-authentication messages recur periodically for hours —
a steady rhythm the model must also keep in one group, while two distinct
occurrences of either pattern days apart must split.
"""

from __future__ import annotations

import random

from benchmarks._shared import record, record_table
from repro.mining.temporal import TemporalParams, n_groups
from repro.netsim.events import controller_instability, tcp_scan
from repro.netsim.topology import build_network
from repro.utils.timeutils import DAY, HOUR


def _ascii_series(timestamps, start, span, width=72) -> str:
    cells = [" "] * width
    for ts in timestamps:
        idx = int((ts - start) / span * (width - 1))
        if 0 <= idx < width:
            cells[idx] = "|"
    return "".join(cells)


def test_fig04_05_temporal_patterns(benchmark, system_a):
    net = build_network("V1", 12, seed=21)
    rng = random.Random(5)
    controller = controller_instability(net, rng, "fig4", 0.0)
    scan = tcp_scan(net, rng, "fig5", 0.0)

    # Temporal grouping operates per template: use the down messages (the
    # up messages form their own, equally periodic, series).
    ctrl_ts = [m.timestamp for m in controller.messages
               if m.template_id == "v1.controller_down"]
    scan_ts = [m.timestamp for m in scan.messages
               if m.template_id == "v1.tcp_badauth"]

    span = max(ctrl_ts[-1], scan_ts[-1], 6 * HOUR)
    record(
        "fig04_05_patterns",
        "Figure 4 (controller up/down burst):\n"
        + _ascii_series(ctrl_ts, 0.0, span)
        + f"\n  {len(ctrl_ts)} messages over {ctrl_ts[-1] / HOUR:.1f} h\n\n"
        "Figure 5 (periodic TCP bad authentication):\n"
        + _ascii_series(scan_ts, 0.0, span)
        + f"\n  {len(scan_ts)} messages over {scan_ts[-1] / HOUR:.1f} h",
    )

    params = system_a.kb.temporal

    def group_counts():
        two_bursts = ctrl_ts + [t + 5 * DAY for t in ctrl_ts]
        return (
            n_groups(ctrl_ts, params),
            n_groups(scan_ts, params),
            n_groups(two_bursts, params),
        )

    one_burst, one_scan, two_bursts = benchmark.pedantic(
        group_counts, rounds=1, iterations=1
    )
    record_table(
        "fig04_05_grouping",
        ["series", "#messages", "#temporal groups"],
        [
            ("controller burst", len(ctrl_ts), one_burst),
            ("periodic bad-auth", len(scan_ts), one_scan),
            ("two bursts, 5 days apart", 2 * len(ctrl_ts), two_bursts),
        ],
        title="Temporal grouping of the Figure 4/5 patterns "
        f"(alpha={params.alpha:g}, beta={params.beta:g})",
    )

    # The burst stays (nearly) whole, the periodic scan stays whole, and
    # two occurrences days apart never merge.
    assert one_burst <= max(2, len(ctrl_ts) // 10)
    assert one_scan == 1
    assert two_bursts >= 2 * one_burst
