"""Ablation — the paper's sub-type trees vs a Drain-style miner.

Drain (the de-facto standard of later log-parsing work) routes by message
length and leading tokens; SyslogDigest's frequent-word trees key on the
error code and word frequencies.  We score both against ground truth:
a true template is *recovered* when some mined template/cluster has
exactly its constant words.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.baselines.drain import DrainMiner
from repro.netsim.catalog import CATALOG_V1


def test_ablation_drain_vs_subtype_trees(benchmark, system_a, history_a):
    catalog = CATALOG_V1
    seen_ids = {lm.template_id for lm in history_a.messages}
    true_templates = {
        tid: spec for tid, spec in catalog.items() if tid in seen_ids
    }

    def run_drain():
        miner = DrainMiner(depth=3, sim_threshold=0.5)
        miner.fit(m.message for m in history_a.messages[:120000])
        return miner

    miner = benchmark.pedantic(run_drain, rounds=1, iterations=1)

    drain_sets = {
        frozenset(miner.constant_words_of(p)) for p in miner.clusters()
    }
    tree_sets = {
        frozenset(t.words)
        for t in system_a.kb.templates.all_templates()
    }

    rows = []
    drain_hits = tree_hits = 0
    for tid, spec in sorted(true_templates.items()):
        truth = frozenset(spec.constant_words())
        d = truth in drain_sets
        t = truth in tree_sets
        drain_hits += d
        tree_hits += t
        rows.append((tid, "yes" if t else "no", "yes" if d else "no"))
    n = len(true_templates)
    rows.append(
        (
            "(recovered)",
            f"{tree_hits}/{n} = {tree_hits / n:.0%}",
            f"{drain_hits}/{n} = {drain_hits / n:.0%}",
        )
    )
    record_table(
        "ablation_drain",
        ["true template", "sub-type tree", "drain"],
        rows,
        title="Ablation: template recovery, sub-type trees vs Drain "
        f"(drain mined {len(drain_sets)} clusters, "
        f"trees {len(tree_sets)} templates)",
    )

    # The paper's miner must recover a solid majority of true templates
    # and not trail the Drain baseline by much on its own turf.
    assert tree_hits / n >= 0.7
    assert tree_hits >= drain_hits - 2
