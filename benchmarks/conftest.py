"""Shared benchmark fixtures: the paper's full experimental setup.

The paper uses 3 months (12 weeks) of history for offline learning and the
following 2 weeks for online digesting, on two networks.  These fixtures
realize that timeline on the synthetic datasets once per session; every
bench file reuses them.

Scale is controlled by ``REPRO_BENCH_SCALE`` (default 0.5): router counts
and scenario rates shrink together, message *shapes* are unchanged.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.config import DigestConfig
from repro.core.pipeline import SyslogDigest
from repro.core.syslogplus import Augmenter
from repro.netsim.datasets import (
    LEARNING_DAYS,
    LEARNING_START,
    ONLINE_DAYS,
    ONLINE_START,
    dataset_a,
    dataset_b,
    generate_dataset,
)

RESULTS_DIR = Path(__file__).parent / "results"

# Per-dataset rule-mining windows, as the paper settles on (Table 6).
WINDOW_A = 120.0
WINDOW_B = 40.0


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def _config(window: float) -> DigestConfig:
    return DigestConfig(window=window)


@pytest.fixture(scope="session")
def data_a():
    return generate_dataset(dataset_a(), scale=bench_scale())


@pytest.fixture(scope="session")
def data_b():
    return generate_dataset(dataset_b(), scale=bench_scale())


@pytest.fixture(scope="session")
def history_a(data_a):
    """12 weeks of dataset-A history (Sep-Nov 2009)."""
    return data_a.generate(LEARNING_START, LEARNING_DAYS)


@pytest.fixture(scope="session")
def history_b(data_b):
    return data_b.generate(LEARNING_START, LEARNING_DAYS)


@pytest.fixture(scope="session")
def live_a(data_a):
    """2 weeks of dataset-A online traffic (Dec 1-14 2009).

    The phase origin pins the online window to the same timeline as the
    learning period: every behaviour that phased in during learning is
    active by December.
    """
    return data_a.generate(
        ONLINE_START, ONLINE_DAYS, phase_origin=LEARNING_START
    )


@pytest.fixture(scope="session")
def live_b(data_b):
    return data_b.generate(
        ONLINE_START, ONLINE_DAYS, phase_origin=LEARNING_START
    )


@pytest.fixture(scope="session")
def system_a(data_a, history_a) -> SyslogDigest:
    """Dataset-A system learned with the full offline procedure."""
    return SyslogDigest.learn(
        [m.message for m in history_a.messages],
        list(data_a.configs.values()),
        _config(WINDOW_A),
        fit_temporal=True,
    )


@pytest.fixture(scope="session")
def system_b(data_b, history_b) -> SyslogDigest:
    return SyslogDigest.learn(
        [m.message for m in history_b.messages],
        list(data_b.configs.values()),
        _config(WINDOW_B),
        fit_temporal=True,
    )


@pytest.fixture(scope="session")
def digest_a(system_a, live_a):
    return system_a.digest(m.message for m in live_a.messages)


@pytest.fixture(scope="session")
def digest_b(system_b, live_b):
    return system_b.digest(m.message for m in live_b.messages)


def _plus_events(system, history):
    """(ts, router, template_key) triples for mining benches."""
    augmenter = Augmenter(system.kb.templates, system.kb.dictionary)
    return [
        (p.timestamp, p.router, p.template_key)
        for p in augmenter.augment_all(m.message for m in history.messages)
    ]


@pytest.fixture(scope="session")
def plus_events_a(system_a, history_a):
    return _plus_events(system_a, history_a)


@pytest.fixture(scope="session")
def plus_events_b(system_b, history_b):
    return _plus_events(system_b, history_b)
