"""Ablation — conservative rule deletion vs delete-on-low-support.

Section 4.1.4: rules are deleted only when their confidence drops, "no
matter what supp(X) is", because a quiet antecedent may well come back.
We inject a quiet fortnight for one scenario family and compare the
paper's policy against the naive alternative: the conservative store keeps
the family's rules across the gap, the naive store drops and must
re-learn them — a blind spot if the behaviour returns mid-period.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from benchmarks.conftest import WINDOW_A
from repro.mining.rules import RuleMiner
from repro.mining.rulestore import RuleStore
from repro.netsim.datasets import LEARNING_START
from repro.utils.timeutils import DAY

SCAN_TEMPLATES = ("TCP-6-BADAUTH", "SEC-6-IPACCESSLOGP")


def _is_scan_template(key: str) -> bool:
    return key.startswith(SCAN_TEMPLATES)


def test_ablation_conservative_deletion(benchmark, plus_events_a):
    def weekly(store: RuleStore):
        """12 weekly updates with scans silenced in weeks 7-8."""
        scan_rule_history = []
        for week in range(12):
            start = LEARNING_START + week * 7 * DAY
            end = start + 7 * DAY
            events = [e for e in plus_events_a if start <= e[0] < end]
            if week in (6, 7):  # the scanner goes quiet
                events = [
                    e for e in events if not _is_scan_template(e[2])
                ]
            store.update(events)
            scan_rules = sum(
                1
                for rule in store.rules
                if _is_scan_template(rule.x) or _is_scan_template(rule.y)
            )
            scan_rule_history.append(scan_rules)
        return scan_rule_history

    def run_both():
        miner = RuleMiner(window=WINDOW_A, sp_min=0.0005, conf_min=0.8)
        conservative = weekly(RuleStore(miner=miner))
        naive = weekly(
            RuleStore(miner=miner, delete_on_low_support=True)
        )
        return conservative, naive

    conservative, naive = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        (week + 1, c, n) for week, (c, n) in enumerate(zip(conservative, naive))
    ]
    record_table(
        "ablation_conservative_delete",
        ["week", "scan rules (conservative)", "scan rules (naive)"],
        rows,
        title="Ablation: conservative deletion across a quiet fortnight "
        "(weeks 7-8 have no scan traffic)",
    )

    # Scans phase in at week 2; both stores learn their rules.
    assert conservative[3] > 0
    assert naive[3] > 0
    # Through the quiet weeks the conservative store keeps them...
    assert conservative[6] >= conservative[5]
    assert conservative[7] >= conservative[5]
    # ...while the naive store loses them.
    assert naive[7] < conservative[7]
