"""Figure 11 — compression ratio vs beta at the fitted alphas.

Paper: the ratio decreases in beta with diminishing returns; they settle
on beta = 5 for both datasets.
"""

from __future__ import annotations

from benchmarks._shared import record_table, sci
from benchmarks.bench_fig10_alpha import key_series
from repro.mining.fit import compression_ratio
from repro.mining.temporal import TemporalParams

BETAS = (2.0, 3.0, 4.0, 5.0, 6.0, 7.0)


def test_fig11_beta_sweep(benchmark, system_a, live_a, system_b, live_b):
    series_a = key_series(system_a, live_a)
    series_b = key_series(system_b, live_b)
    alpha_a = system_a.kb.temporal.alpha
    alpha_b = system_b.kb.temporal.alpha

    def sweep():
        curve_a = [
            compression_ratio(series_a, TemporalParams(alpha=alpha_a, beta=b))
            for b in BETAS
        ]
        curve_b = [
            compression_ratio(series_b, TemporalParams(alpha=alpha_b, beta=b))
            for b in BETAS
        ]
        return curve_a, curve_b

    curve_a, curve_b = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (beta, sci(a), sci(b))
        for beta, a, b in zip(BETAS, curve_a, curve_b)
    ]
    record_table(
        "fig11_beta",
        [f"beta (alpha A={alpha_a:g}, B={alpha_b:g})", "ratio (A)", "ratio (B)"],
        rows,
        title="Figure 11: compression ratio vs beta "
        "(paper: monotone improvement, diminishing returns -> beta=5)",
    )

    for curve in (curve_a, curve_b):
        assert all(
            a >= b - 1e-12 for a, b in zip(curve, curve[1:])
        ), "ratio must not worsen as beta grows"
        # Diminishing returns: the last step improves less than the first.
        first_gain = curve[0] - curve[1]
        last_gain = curve[-2] - curve[-1]
        assert last_gain <= first_gain + 1e-12
