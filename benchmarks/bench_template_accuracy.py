"""Section 5.2.1 — learned templates vs ground truth (paper: 94% match).

The paper compared learned templates against hand-coded vendor knowledge;
our generator's catalog *is* that ground truth, so the metric is exact.
The expected mismatches are the narrow-value-pool fields (the paper's
"GigabitEthernet" caveat): the config-session username in A and the
scanner usernames in B.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.netsim.catalog import CATALOG_V1, CATALOG_V2
from repro.templates.evaluate import template_accuracy
from repro.templates.learner import TemplateLearner


def test_template_accuracy_both_datasets(
    benchmark, system_a, history_a, system_b, history_b
):
    def evaluate():
        acc_a = template_accuracy(
            system_a.kb.templates, CATALOG_V1, history_a.messages
        )
        acc_b = template_accuracy(
            system_b.kb.templates, CATALOG_V2, history_b.messages
        )
        return acc_a, acc_b

    acc_a, acc_b = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    combined = (acc_a.n_matched + acc_b.n_matched) / (
        acc_a.n_true + acc_b.n_true
    )
    rows = [
        ("A", acc_a.n_true, acc_a.n_matched, f"{acc_a.accuracy:.1%}",
         ", ".join(acc_a.mismatches)),
        ("B", acc_b.n_true, acc_b.n_matched, f"{acc_b.accuracy:.1%}",
         ", ".join(acc_b.mismatches)),
        ("A+B", acc_a.n_true + acc_b.n_true,
         acc_a.n_matched + acc_b.n_matched, f"{combined:.1%}", ""),
    ]
    record_table(
        "template_accuracy",
        ["dataset", "true templates", "matched", "accuracy", "mismatches"],
        rows,
        title="Section 5.2.1: template identification accuracy (paper: 94%)",
    )

    # At REPRO_BENCH_SCALE=1.0 this lands at the paper's ~94%; smaller
    # scales shrink some variable-value pools below the sub-type-tree
    # prune threshold (the GigabitEthernet effect), costing a few
    # templates.
    assert combined >= 0.80
    # Every learner we evaluated saw a substantial template population.
    assert acc_a.n_true >= 15
    assert acc_b.n_true >= 12


def test_learning_throughput(benchmark, history_a):
    """How fast template learning chews through a history stream."""
    messages = [m.message for m in history_a.messages[:60000]]
    learner = TemplateLearner()
    result = benchmark(lambda: learner.learn(messages))
    assert len(result) > 10
