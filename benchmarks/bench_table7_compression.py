"""Table 7 — compression ratio of the three grouping methodologies.

Paper (2-week online streams):

    method   dataset A     dataset B
    T        1.63e-2       9.08e-3
    T+R      5.15e-3       2.26e-3
    T+R+C    3.27e-3       0.91e-3

The reproduction target is the ordering and the rough step factors (rules
give the big win, cross-router a further ~1.5-2.5x), landing three orders
of magnitude below the raw message count.
"""

from __future__ import annotations

from benchmarks._shared import record_table, sci
from repro.core.pipeline import SyslogDigest

PASSES = {
    "T": (True, False, False),
    "T+R": (True, True, False),
    "T+R+C": (True, True, True),
}


def _ratios(system, live):
    messages = [m.message for m in live.messages]
    out = {}
    for label, toggles in PASSES.items():
        digest = SyslogDigest(
            system.kb, system.config.only_passes(*toggles)
        ).digest(messages)
        out[label] = digest.compression_ratio
    return out


def test_table7_grouping_compression(
    benchmark, system_a, live_a, system_b, live_b
):
    ratios_a = benchmark.pedantic(
        _ratios, args=(system_a, live_a), rounds=1, iterations=1
    )
    ratios_b = _ratios(system_b, live_b)

    rows = [
        (label, sci(ratios_a[label]), sci(ratios_b[label]))
        for label in PASSES
    ]
    record_table(
        "table7_compression",
        ["Methodology", "Ratio (A)", "Ratio (B)"],
        rows,
        title="Table 7: compression ratio of T / T+R / T+R+C "
        "(paper A: 1.63e-2 / 5.15e-3 / 3.27e-3; "
        "B: 9.08e-3 / 2.26e-3 / 0.91e-3)",
    )

    for ratios in (ratios_a, ratios_b):
        assert ratios["T"] > ratios["T+R"] > ratios["T+R+C"]
        # Rule-based grouping is the larger of the two refinements.
        gain_rules = ratios["T"] / ratios["T+R"]
        gain_cross = ratios["T+R"] / ratios["T+R+C"]
        assert gain_rules > 1.2
        assert gain_cross > 1.05
        # Within an order of magnitude of the paper's final ratios.
        assert ratios["T+R+C"] < 2e-2
