"""Table 5 — sensitivity of the minimal support SP_min.

Paper row format: SP_min -> fraction of message types used in rule mining
("Top %") and the share of all messages those types cover ("Coverage"),
for datasets A and B.  Paper values: SP_min=5e-4 uses the top ~28%/32% of
types which cover >99.9% of messages — a strongly heavy-tailed type
distribution our workload must (and does) reproduce.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from benchmarks.conftest import WINDOW_A, WINDOW_B
from repro.mining.rules import RuleMiner
from repro.mining.transactions import transaction_stats

SP_MINS = (0.001, 0.0005, 0.0001)


def _row(stats, sp_min):
    miner = RuleMiner(window=1.0, sp_min=sp_min, conf_min=0.8)
    result = miner.rules_from_stats(stats)
    return result.eligible_fraction(), result.coverage()


def test_table5_support_sensitivity(
    benchmark, plus_events_a, plus_events_b
):
    stats_a = benchmark.pedantic(
        transaction_stats,
        args=(plus_events_a, WINDOW_A),
        rounds=1,
        iterations=1,
    )
    stats_b = transaction_stats(plus_events_b, WINDOW_B)

    rows = []
    for sp_min in SP_MINS:
        top_a, cov_a = _row(stats_a, sp_min)
        top_b, cov_b = _row(stats_b, sp_min)
        rows.append(
            (
                f"{sp_min:g}",
                f"{top_a:.1%}",
                f"{cov_a:.2%}",
                f"{top_b:.1%}",
                f"{cov_b:.2%}",
            )
        )
    record_table(
        "table5_support",
        ["SPmin", "Top % (A)", "Coverage (A)", "Top % (B)", "Coverage (B)"],
        rows,
        title="Table 5: sensitivity of minimal support "
        "(paper: 5e-4 -> ~28%/32% of types covering >99.9%)",
    )

    # Shape assertions: fewer eligible types at higher SP_min; high coverage
    # from a minority of types (heavy tail).
    tops = [
        _row(stats_a, sp_min)[0] for sp_min in SP_MINS
    ]
    assert tops == sorted(tops)
    _top, cov = _row(stats_a, 0.0005)
    assert cov > 0.9
