"""Table 6 — the parameter settings the offline stage converges on.

Paper: alpha = 0.05 (A) / 0.075 (B), beta = 5, W = 120 s (A) / 40 s (B),
SP_min = 5e-4, Conf_min = 0.8.  Here alpha/beta come out of the actual
fitting sweep on each dataset's history.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from benchmarks.conftest import WINDOW_A, WINDOW_B


def test_table6_parameter_settings(benchmark, system_a, system_b):
    def collect():
        return [
            (
                "A",
                system_a.kb.temporal.alpha,
                system_a.kb.temporal.beta,
                int(WINDOW_A),
                system_a.kb.rules.miner.sp_min,
                system_a.kb.rules.miner.conf_min,
            ),
            (
                "B",
                system_b.kb.temporal.alpha,
                system_b.kb.temporal.beta,
                int(WINDOW_B),
                system_b.kb.rules.miner.sp_min,
                system_b.kb.rules.miner.conf_min,
            ),
        ]

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    record_table(
        "table6_params",
        ["Dataset", "alpha", "beta", "W (s)", "SPmin", "Confmin"],
        rows,
        title="Table 6: fitted/configured parameters "
        "(paper: 0.05/0.075, 5, 120/40, 5e-4, 0.8)",
    )

    for _, alpha, beta, _w, sp_min, conf_min in rows:
        assert 0.0 < alpha <= 0.2  # small-but-nonzero, as in the paper
        assert 2.0 <= beta <= 7.0
        assert sp_min == 0.0005
        assert conf_min == 0.8
