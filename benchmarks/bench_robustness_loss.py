"""Robustness — grouping under collector loss, duplication and jitter.

Not in the paper, but implicit in its operational setting: syslog rides
UDP, so the collector sees a degraded stream.  We sweep loss rates and
measure how the compression ratio and ground-truth fragmentation respond.
The system should degrade gracefully: missing messages shrink events but
must not shatter them.
"""

from __future__ import annotations

from benchmarks._shared import record_table, sci
from repro.core.pipeline import SyslogDigest
from repro.evaluation.quality import grouping_quality
from repro.syslog.collector import CollectorProfile, degrade_labeled

LOSS_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)


def test_robustness_under_collector_loss(benchmark, system_a, live_a):
    def sweep():
        rows = []
        for loss in LOSS_RATES:
            profile = CollectorProfile(
                loss_rate=loss, duplicate_rate=0.01, max_jitter=1.0, seed=11
            )
            degraded = degrade_labeled(live_a.messages, profile)
            result = SyslogDigest(system_a.kb, system_a.config).digest(
                m.message for m in degraded
            )
            truth = [lm.event_id for lm in degraded]
            quality = grouping_quality(result.events, truth)
            rows.append(
                (
                    loss,
                    len(degraded),
                    result.n_events,
                    result.compression_ratio,
                    quality.mean_fragmentation,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "robustness_loss",
        ["loss", "#messages", "#events", "ratio", "mean events/incident"],
        [
            (f"{loss:.0%}", n, events, sci(ratio), f"{frag:.2f}")
            for loss, n, events, ratio, frag in rows
        ],
        title="Robustness: digesting a lossy/jittery collector feed",
    )

    clean_ratio = rows[0][3]
    for loss, _n, _events, ratio, frag in rows:
        # Graceful degradation: the ratio stays within 3x of clean and
        # incidents do not shatter.
        assert ratio < 3 * clean_ratio + 1e-6, loss
        assert frag < 8.0, loss
