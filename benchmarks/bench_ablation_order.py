"""Ablation — grouping-pass order invariance (Section 4.2.3).

The paper argues that merging groups that share messages makes the final
result independent of the order the three passes run in.  We verify the
claim on a real day of traffic by running all six permutations, and — the
same property one level up — that the router-sharded parallel engine
lands on the identical partition (shard merge order is just another
irrelevant pass order under the union-find construction).
"""

from __future__ import annotations

import itertools

from benchmarks._shared import record_table
from repro.core.grouping import GroupingEngine
from repro.core.parallel import ParallelGroupingEngine
from repro.core.syslogplus import Augmenter
from repro.netsim.datasets import ONLINE_START
from repro.utils.timeutils import DAY
from repro.utils.unionfind import UnionFind


def test_ablation_pass_order_invariance(benchmark, system_a, live_a):
    day_messages = [
        m.message
        for m in live_a.messages
        if m.timestamp < ONLINE_START + 1 * DAY
    ]
    augmenter = Augmenter(system_a.kb.templates, system_a.kb.dictionary)
    stream = augmenter.augment_all(day_messages)
    engine = GroupingEngine(system_a.kb, system_a.config)

    def run_order(order: str):
        uf = UnionFind(range(len(stream)))
        passes = {
            "T": lambda: engine._temporal_pass(stream, uf),
            "R": lambda: engine._rule_pass(stream, uf, set()),
            "C": lambda: engine._cross_router_pass(stream, uf),
        }
        for name in order:
            passes[name]()
        return frozenset(
            frozenset(g) for g in uf.groups().values()
        )

    def all_orders():
        return {
            "".join(order): run_order(order)
            for order in itertools.permutations("TRC")
        }

    results = benchmark.pedantic(all_orders, rounds=1, iterations=1)
    partitions = set(results.values())
    n_groups = len(next(iter(results.values())))

    # The sharded engine is a seventh "order": per-router shards first,
    # merged cross-router pass last.  Byte-identical partition required.
    sharded = ParallelGroupingEngine(
        system_a.kb, system_a.config.with_workers(4)
    ).group(stream)
    sharded_partition = frozenset(
        frozenset(p.index for p in group) for group in sharded.groups
    )
    results["sharded(4)"] = sharded_partition

    record_table(
        "ablation_pass_order",
        ["pass order", "#groups", "identical partition"],
        [
            (order, len(partition), partition == next(iter(partitions)))
            for order, partition in sorted(results.items())
        ],
        title="Ablation: grouping-pass order invariance "
        f"({len(stream)} messages, {n_groups} groups)",
    )
    assert len(partitions) == 1
    assert sharded_partition == next(iter(partitions))
