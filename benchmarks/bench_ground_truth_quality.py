"""Grouping quality against ground truth — beyond the paper.

The paper validated its digests by expert inspection and ticket matching;
with a simulator we can score grouping exactly:

* **fragmentation** — how many digest events one injected network
  condition is split across (1 is perfect);
* **purity** — how many distinct injected conditions one digest event
  mixes together (1 is perfect);
* per-scenario-kind breakdown, since cascades differ wildly in shape.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from benchmarks._shared import record_table
from repro.utils.stats import mean


def test_ground_truth_grouping_quality(benchmark, digest_a, live_a):
    def score():
        event_of_index = {}
        for event_no, event in enumerate(digest_a.events):
            for i in event.indices:
                event_of_index[i] = event_no

        events_of_incident: dict[str, set[int]] = defaultdict(set)
        kind_of_incident: dict[str, str] = {}
        incidents_of_event: dict[int, set[str]] = defaultdict(set)
        for i, lm in enumerate(live_a.messages):
            if lm.event_id is None:
                continue
            events_of_incident[lm.event_id].add(event_of_index[i])
            kind_of_incident[lm.event_id] = lm.event_id.split("-", 1)[1]
            incidents_of_event[event_of_index[i]].add(lm.event_id)

        per_kind: dict[str, list[int]] = defaultdict(list)
        for event_id, event_set in events_of_incident.items():
            per_kind[kind_of_incident[event_id]].append(len(event_set))
        purity = Counter(
            len(ids) for ids in incidents_of_event.values()
        )
        return per_kind, purity

    per_kind, purity = benchmark.pedantic(score, rounds=1, iterations=1)

    rows = []
    for kind in sorted(per_kind):
        splits = per_kind[kind]
        rows.append(
            (
                kind,
                len(splits),
                f"{mean([float(s) for s in splits]):.2f}",
                max(splits),
            )
        )
    all_splits = [s for splits in per_kind.values() for s in splits]
    rows.append(
        (
            "(all)",
            len(all_splits),
            f"{mean([float(s) for s in all_splits]):.2f}",
            max(all_splits),
        )
    )
    record_table(
        "ground_truth_quality",
        ["scenario kind", "#incidents", "mean events/incident", "worst"],
        rows,
        title="Grouping fidelity vs ground truth, dataset A "
        "(1.00 events/incident is perfect)",
    )
    pure = purity.get(1, 0)
    total_events_with_truth = sum(purity.values())
    record_table(
        "ground_truth_purity",
        ["incidents mixed in one event", "#events"],
        sorted(purity.items()),
        title=f"Event purity: {pure}/{total_events_with_truth} events "
        "contain exactly one injected condition",
    )

    overall = mean([float(s) for s in all_splits])
    assert overall <= 5.0, "incidents shattered across too many events"
    assert pure / total_events_with_truth >= 0.6, "too many mixed events"
