"""Figure 10 — temporal-grouping compression ratio vs alpha (beta = 2).

Paper: ratio is worst at very small alpha, dips to its best value at
alpha ~ 0.05 (A) / 0.075 (B), and degrades slowly for larger alpha.  The
sweep runs over the online 2-week stream, grouping per (router, template,
location) key exactly as online temporal grouping does.
"""

from __future__ import annotations

from benchmarks._shared import record_table, sci
from repro.core.syslogplus import Augmenter
from repro.mining.fit import compression_ratio
from repro.mining.temporal import TemporalParams

ALPHAS = (0.01, 0.025, 0.05, 0.075, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


def key_series(system, live):
    augmenter = Augmenter(system.kb.templates, system.kb.dictionary)
    series: dict[tuple, list[float]] = {}
    for plus in augmenter.augment_all(m.message for m in live.messages):
        key = (plus.router, plus.template_key, plus.primary_location.key())
        series.setdefault(key, []).append(plus.timestamp)
    return list(series.values())


def _sweep(series):
    return [
        compression_ratio(series, TemporalParams(alpha=alpha, beta=2.0))
        for alpha in ALPHAS
    ]


def test_fig10_alpha_sweep(benchmark, system_a, live_a, system_b, live_b):
    series_a = key_series(system_a, live_a)
    series_b = key_series(system_b, live_b)
    curve_a = benchmark.pedantic(
        _sweep, args=(series_a,), rounds=1, iterations=1
    )
    curve_b = _sweep(series_b)

    rows = [
        (alpha, sci(a), sci(b))
        for alpha, a, b in zip(ALPHAS, curve_a, curve_b)
    ]
    record_table(
        "fig10_alpha",
        ["alpha", "ratio (A)", "ratio (B)"],
        rows,
        title="Figure 10: temporal compression ratio vs alpha, beta=2 "
        "(paper: best at ~0.05 (A) / ~0.075 (B), worse at both extremes)",
    )

    for curve in (curve_a, curve_b):
        best = min(range(len(ALPHAS)), key=lambda i: curve[i])
        # The optimum sits at a small-but-nonzero alpha, and very large
        # alpha is no better than the optimum.
        assert ALPHAS[best] <= 0.2
        assert curve[-1] >= curve[best]
