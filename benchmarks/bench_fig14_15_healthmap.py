"""Figures 14 & 15 — event-level vs raw-message network health maps.

Paper: a 10-minute status window rendered from digest events (Fig 14)
shows the few real troubles, while the raw-message view (Fig 15) inflates
chatty routers — "high syslog message counts do not necessarily imply
bigger trouble".
"""

from __future__ import annotations

from benchmarks._shared import record
from repro.apps.healthmap import HealthMap, render_health_map
from repro.utils.timeutils import MINUTE


def _busiest_window(live, width):
    """The 10-minute window with the most messages (most to look at)."""
    times = [m.timestamp for m in live.messages]
    best_start, best_count = times[0], 0
    j = 0
    for i, t in enumerate(times):
        while times[j] < t - width:
            j += 1
        if i - j + 1 > best_count:
            best_count = i - j + 1
            best_start = times[j]
    return best_start, best_start + width


def test_fig14_15_health_maps(benchmark, digest_a, live_a):
    start, end = _busiest_window(live_a, 10 * MINUTE)

    def build():
        return HealthMap.build(
            digest_a.events,
            [m.message for m in live_a.messages],
            window_start=start,
            window_end=end,
        )

    health = benchmark.pedantic(build, rounds=1, iterations=1)
    fig14 = render_health_map(health, by_events=True)
    fig15 = render_health_map(health, by_events=False)
    record("fig14_events_view", fig14)
    record("fig15_messages_view", fig15)

    assert health.event_counts and health.message_counts
    # The paper's warning quantified: the message view inflates counts by
    # orders of magnitude over the event view on the same window.
    top_events = health.most_loaded(by_events=True)[0][1]
    top_messages = health.most_loaded(by_events=False)[0][1]
    assert top_messages > 3 * top_events
    # The event view annotates what actually happened.
    assert "[" in fig14
