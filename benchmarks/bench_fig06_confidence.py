"""Figure 6 — number of rules vs Conf_min for three SP_min values.

Paper: dataset A, W = 60 s; the rule count decreases as Conf_min rises and
as SP_min rises (200-600 rules at their template population; ours is
smaller, the *shape* is the reproduction target).
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.mining.rules import RuleMiner
from repro.mining.transactions import transaction_stats

WINDOW = 60.0
SP_MINS = (0.001, 0.0005, 0.0001)
CONF_MINS = (0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9)


def test_fig06_rules_vs_confidence(benchmark, plus_events_a):
    stats = benchmark.pedantic(
        transaction_stats, args=(plus_events_a, WINDOW), rounds=1, iterations=1
    )
    curves: dict[float, list[int]] = {}
    for sp_min in SP_MINS:
        counts = []
        for conf_min in CONF_MINS:
            miner = RuleMiner(
                window=WINDOW, sp_min=sp_min, conf_min=conf_min
            )
            counts.append(miner.rules_from_stats(stats).n_rules)
        curves[sp_min] = counts

    rows = [
        (conf,) + tuple(curves[sp][i] for sp in SP_MINS)
        for i, conf in enumerate(CONF_MINS)
    ]
    record_table(
        "fig06_rules_vs_confidence",
        ["Confmin"] + [f"#rules SPmin={sp:g}" for sp in SP_MINS],
        rows,
        title="Figure 6: rules vs Confmin, dataset A, W=60s "
        "(paper: decreasing in Confmin; higher SPmin -> fewer rules)",
    )

    for sp_min, counts in curves.items():
        assert counts == sorted(counts, reverse=True), sp_min
        assert counts[0] > 0
    # Higher SP_min never yields more rules at the same confidence.
    for i in range(len(CONF_MINS)):
        assert curves[0.001][i] <= curves[0.0001][i]
