"""Baseline — vendor-severity triage vs SyslogDigest prioritization.

Section 2's critique, quantified: vendor severity ranks local element
impact (a CPU threshold above a link down), drops unparseable codes, and
still passes enormous volume.  SyslogDigest's ranked events cover the
same incidents in a fraction of the items an operator must read.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.baselines.severity_filter import severity_filter


def test_baseline_severity_triage(benchmark, live_a, digest_a):
    messages = [m.message for m in live_a.messages]

    def run():
        return {
            cutoff: len(severity_filter(messages, max_severity=cutoff))
            for cutoff in (1, 2, 3, 4, 5)
        }

    kept = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"severity <= {cutoff}", count, f"{count / len(messages):.1%}")
        for cutoff, count in sorted(kept.items())
    ]
    rows.append(
        (
            "SyslogDigest events",
            digest_a.n_events,
            f"{digest_a.compression_ratio:.1%}",
        )
    )
    record_table(
        "baseline_severity",
        ["triage", "items to review", "fraction of raw"],
        rows,
        title="Baseline: vendor-severity filtering vs digest events",
    )

    # Any severity cutoff that keeps link-downs (severity 3) still hands
    # the operator far more items than the digest does.
    assert kept[3] > 5 * digest_a.n_events
    # The severity inversion: CPU alarms (severity 1) survive the
    # strictest cutoff while link downs (severity 3) do not.
    strict = severity_filter(messages, max_severity=1)
    assert any(
        m.error_code == "SYS-1-CPURISINGTHRESHOLD" for m in strict
    )
    assert not any(m.error_code == "LINK-3-UPDOWN" for m in strict)
