"""Throughput — does online digesting keep up with an operational feed?

Paper: "it generally takes less than one hour to digest one day's syslog".
We measure batch digest and streaming-push throughput on a live day and
compare against the generation rate.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.core.pipeline import SyslogDigest
from repro.core.stream import DigestStream
from repro.netsim.datasets import ONLINE_START
from repro.utils.timeutils import DAY


def _one_day(live):
    return [
        m.message
        for m in live.messages
        if m.timestamp < ONLINE_START + DAY
    ]


def test_throughput_batch_digest(benchmark, system_a, live_a):
    messages = _one_day(live_a)
    result = benchmark(
        lambda: SyslogDigest(system_a.kb, system_a.config).digest(messages)
    )
    per_message_us = benchmark.stats.stats.mean / len(messages) * 1e6
    record_table(
        "throughput_batch",
        ["metric", "value"],
        [
            ("messages in one day", len(messages)),
            ("digest wall time (s)", f"{benchmark.stats.stats.mean:.2f}"),
            ("per message (us)", f"{per_message_us:.0f}"),
            ("events", result.n_events),
        ],
        title="Throughput: batch digest of one day "
        "(paper: < 1 hour per day of syslog)",
    )
    # Digesting a day must take far less than a day (paper: < 1 h).
    assert benchmark.stats.stats.mean < 3600.0


def test_throughput_streaming_push(benchmark, system_a, live_a):
    messages = _one_day(live_a)

    def run():
        stream = DigestStream(system_a.kb, system_a.config)
        events = []
        for message in messages:
            events.extend(stream.push(message))
        events.extend(stream.close())
        return events

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events
