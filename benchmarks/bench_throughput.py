"""Throughput — does online digesting keep up with an operational feed?

Paper: "it generally takes less than one hour to digest one day's syslog".
We measure batch digest and streaming-push throughput on a live day and
compare against the generation rate, plus serial vs router-sharded
parallel digest of the same day (the sharded engine must be both faster
on multi-core hardware and byte-identical in its groupings).
"""

from __future__ import annotations

import os
import time

from benchmarks._shared import record, record_table
from repro.core.pipeline import SyslogDigest
from repro.core.stream import DigestStream
from repro.netsim.datasets import ONLINE_START
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    to_prom_text,
)
from repro.utils.timeutils import DAY


def _one_day(live):
    return [
        m.message
        for m in live.messages
        if m.timestamp < ONLINE_START + DAY
    ]


def test_throughput_batch_digest(benchmark, system_a, live_a):
    messages = _one_day(live_a)
    t0 = time.perf_counter()
    result = benchmark(
        lambda: SyslogDigest(system_a.kb, system_a.config).digest(messages)
    )
    wall = time.perf_counter() - t0
    # Under --benchmark-disable (CI smoke mode) stats are absent; the
    # single-call wall time still bounds the paper's < 1 h/day claim.
    mean_s = benchmark.stats.stats.mean if benchmark.stats else wall
    per_message_us = mean_s / len(messages) * 1e6
    record_table(
        "throughput_batch",
        ["metric", "value"],
        [
            ("messages in one day", len(messages)),
            ("digest wall time (s)", f"{mean_s:.2f}"),
            ("per message (us)", f"{per_message_us:.0f}"),
            ("events", result.n_events),
        ],
        title="Throughput: batch digest of one day "
        "(paper: < 1 hour per day of syslog)",
    )
    # The observability registry dump rides along with the throughput
    # table: stage timings, shard balance, digest totals as Prometheus
    # exposition text.
    record("throughput_metrics", to_prom_text(get_registry()).rstrip("\n"))
    # Digesting a day must take far less than a day (paper: < 1 h).
    assert mean_s < 3600.0


def test_throughput_streaming_push(benchmark, system_a, live_a):
    messages = _one_day(live_a)

    def run():
        stream = DigestStream(system_a.kb, system_a.config)
        events = []
        for message in messages:
            events.extend(stream.push(message))
        events.extend(stream.close())
        return events

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events


def test_throughput_serial_vs_sharded(benchmark, system_a, live_a):
    """Serial vs router-sharded parallel digest of one live day.

    The sharded engine must produce byte-identical groupings; on a
    multi-core runner it must also be measurably faster (the paper's
    performance bar scales with hardware, ROADMAP's north star).
    """
    messages = _one_day(live_a)
    n_cores = os.cpu_count() or 1
    serial_system = SyslogDigest(system_a.kb, system_a.config.with_workers(1))
    sharded_system = SyslogDigest(
        system_a.kb, system_a.config.with_workers(0)  # one per core
    )

    def run_both():
        t0 = time.perf_counter()
        serial = serial_system.digest(messages)
        t1 = time.perf_counter()
        sharded = sharded_system.digest(messages)
        t2 = time.perf_counter()
        return serial, sharded, t1 - t0, t2 - t1

    serial, sharded, serial_s, sharded_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    speedup = serial_s / max(sharded_s, 1e-9)
    identical = [e.indices for e in sharded.events] == [
        e.indices for e in serial.events
    ]
    record_table(
        "throughput_serial_vs_sharded",
        ["metric", "value"],
        [
            ("messages in one day", len(messages)),
            ("cores", n_cores),
            ("serial digest (s)", f"{serial_s:.2f}"),
            (f"sharded digest, {n_cores} workers (s)", f"{sharded_s:.2f}"),
            ("speedup", f"{speedup:.2f}x"),
            ("groupings byte-identical", identical),
        ],
        title="Throughput: serial vs router-sharded parallel digest",
    )
    assert identical
    if n_cores >= 4:
        # The acceptance bar for a true multi-core runner; on fewer
        # cores the pool overhead can eat the win, so only the
        # equivalence half of the contract is enforced above.
        assert speedup >= 1.5


def test_metrics_overhead(benchmark, system_a, live_a):
    """Default-on instrumentation must cost <5% of digest wall time.

    The same one-day digest runs under a no-op registry and a live one;
    each is repeated and the best-of runs compared so scheduler noise
    does not masquerade as overhead.  The measurement is recorded in
    ``results/metrics_overhead.txt``.
    """
    messages = _one_day(live_a)
    system = SyslogDigest(system_a.kb, system_a.config)
    rounds = 3

    def best_of(registry) -> float:
        best = float("inf")
        with scoped_registry(registry):
            for _ in range(rounds):
                t0 = time.perf_counter()
                result = system.digest(messages)
                best = min(best, time.perf_counter() - t0)
        return best, result

    def run():
        noop_s, noop_result = best_of(NullRegistry())
        live_s, live_result = best_of(MetricsRegistry())
        return noop_s, live_s, noop_result, live_result

    noop_s, live_s, noop_result, live_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = live_s / noop_s - 1.0
    identical = [e.indices for e in live_result.events] == [
        e.indices for e in noop_result.events
    ]
    record_table(
        "metrics_overhead",
        ["metric", "value"],
        [
            ("messages in one day", len(messages)),
            (f"digest, no-op registry, best of {rounds} (s)", f"{noop_s:.3f}"),
            (f"digest, live registry, best of {rounds} (s)", f"{live_s:.3f}"),
            ("overhead", f"{overhead * 100:+.2f}%"),
            ("results identical", identical),
        ],
        title="Observability: registry overhead on the one-day batch digest "
        "(bound: < 5%)",
    )
    assert identical
    # <5% bound, with a small absolute floor so micro-second jitter on a
    # tiny scaled-down run cannot fail the relative bound spuriously.
    assert live_s <= noop_s * 1.05 + 0.02
