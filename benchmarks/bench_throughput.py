"""Throughput — does online digesting keep up with an operational feed?

Paper: "it generally takes less than one hour to digest one day's syslog".
We measure batch digest and streaming-push throughput on a live day and
compare against the generation rate, plus serial vs router-sharded
parallel digest of the same day (the sharded engine must be both faster
on multi-core hardware and byte-identical in its groupings).
"""

from __future__ import annotations

import os
import time
from itertools import islice

from benchmarks._shared import record, record_table
from repro.core.config import DigestConfig
from repro.core.pipeline import SyslogDigest
from repro.core.stream import DigestStream
from repro.hotpath import digest_fingerprint, reference_mode
from repro.netsim.datasets import ONLINE_START
from repro.netsim.scale import ScaleGenerator, ScaleSpec
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    to_prom_text,
)
from repro.utils.timeutils import DAY

#: Pinned floor for the scale run (streaming msgs/sec, end to end).  The
#: compiled hot path sustains ~18-25k msg/s on the reference container;
#: the floor is set with ~2x headroom so only a real regression trips it,
#: not scheduler noise.
SCALE_RATE_FLOOR = 8_000.0

#: The tentpole bar: compiled path at least this much faster than the
#: reference (pre-optimization) path on the same messages.
SCALE_SPEEDUP_FLOOR = 5.0

#: Pinned floor for the *process* executor lane on the same scale feed.
#: On a single-core container the lane pays pure IPC overhead (~10k
#: msg/s measured, vs ~18k serial) with no parallel win available, so
#: the floor guards against pickling/protocol regressions, not speedup;
#: the threads-vs-processes ordering is asserted only on >= 4 cores.
STREAM_LANE_RATE_FLOOR = 4_000.0


def _one_day(live):
    return [
        m.message
        for m in live.messages
        if m.timestamp < ONLINE_START + DAY
    ]


def test_throughput_batch_digest(benchmark, system_a, live_a):
    messages = _one_day(live_a)
    t0 = time.perf_counter()
    result = benchmark(
        lambda: SyslogDigest(system_a.kb, system_a.config).digest(messages)
    )
    wall = time.perf_counter() - t0
    # Under --benchmark-disable (CI smoke mode) stats are absent; the
    # single-call wall time still bounds the paper's < 1 h/day claim.
    mean_s = benchmark.stats.stats.mean if benchmark.stats else wall
    per_message_us = mean_s / len(messages) * 1e6
    record_table(
        "throughput_batch",
        ["metric", "value"],
        [
            ("messages in one day", len(messages)),
            ("digest wall time (s)", f"{mean_s:.2f}"),
            ("per message (us)", f"{per_message_us:.0f}"),
            ("events", result.n_events),
        ],
        title="Throughput: batch digest of one day "
        "(paper: < 1 hour per day of syslog)",
    )
    # The observability registry dump rides along with the throughput
    # table: stage timings, shard balance, digest totals as Prometheus
    # exposition text.
    record("throughput_metrics", to_prom_text(get_registry()).rstrip("\n"))
    # Digesting a day must take far less than a day (paper: < 1 h).
    assert mean_s < 3600.0


def test_throughput_streaming_push(benchmark, system_a, live_a):
    messages = _one_day(live_a)

    def run():
        stream = DigestStream(system_a.kb, system_a.config)
        events = []
        for message in messages:
            events.extend(stream.push(message))
        events.extend(stream.close())
        return events

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events


def test_throughput_serial_vs_sharded(benchmark, system_a, live_a):
    """Serial vs router-sharded parallel digest of one live day.

    The sharded engine must produce byte-identical groupings; on a
    multi-core runner it must also be measurably faster (the paper's
    performance bar scales with hardware, ROADMAP's north star).
    """
    messages = _one_day(live_a)
    n_cores = os.cpu_count() or 1
    serial_system = SyslogDigest(system_a.kb, system_a.config.with_workers(1))
    sharded_system = SyslogDigest(
        system_a.kb, system_a.config.with_workers(0)  # one per core
    )

    def run_both():
        t0 = time.perf_counter()
        serial = serial_system.digest(messages)
        t1 = time.perf_counter()
        sharded = sharded_system.digest(messages)
        t2 = time.perf_counter()
        return serial, sharded, t1 - t0, t2 - t1

    serial, sharded, serial_s, sharded_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    speedup = serial_s / max(sharded_s, 1e-9)
    identical = [e.indices for e in sharded.events] == [
        e.indices for e in serial.events
    ]
    record_table(
        "throughput_serial_vs_sharded",
        ["metric", "value"],
        [
            ("messages in one day", len(messages)),
            ("cores", n_cores),
            ("serial digest (s)", f"{serial_s:.2f}"),
            (f"sharded digest, {n_cores} workers (s)", f"{sharded_s:.2f}"),
            ("speedup", f"{speedup:.2f}x"),
            ("groupings byte-identical", identical),
        ],
        title="Throughput: serial vs router-sharded parallel digest",
    )
    assert identical
    if n_cores >= 4:
        # The acceptance bar for a true multi-core runner; on fewer
        # cores the pool overhead can eat the win, so only the
        # equivalence half of the contract is enforced above.
        assert speedup >= 1.5


def test_throughput_scale_trajectory(benchmark):
    """Million-message scale run: msgs/sec trajectory + speedup pin.

    A 1000-router network with heavy-tailed per-router volume feeds the
    streaming engine in chunks; the per-chunk rate trajectory shows
    whether throughput stays flat as caches, windows, and splitter state
    fill up.  A subsample is then digested under
    :func:`repro.hotpath.reference_mode` to pin the compiled path's
    speedup (byte-identical by fingerprint) at >= 5x.

    ``REPRO_SCALE_MESSAGES`` sets the run length; ``make bench-scale``
    runs the full million, the default keeps ``make bench`` tolerable.
    """
    n_messages = int(os.environ.get("REPRO_SCALE_MESSAGES", "200000"))
    chunk_size = 50_000
    gen = ScaleGenerator(ScaleSpec(n_routers=1000, n_messages=1_000_000))
    system = SyslogDigest.learn(
        gen.learning_messages(30_000),
        gen.configs(),
        DigestConfig(window=120.0),
        fit_temporal=False,
    )

    def run():
        stream = DigestStream(system.kb, system.config)
        trajectory: list[tuple[int, float]] = []
        n_events = 0
        done = 0
        t0 = time.perf_counter()
        for chunk in gen.chunks(chunk_size=chunk_size, n_messages=n_messages):
            c0 = time.perf_counter()
            n_events += len(stream.push_many(chunk))
            done += len(chunk)
            trajectory.append((done, len(chunk) / (time.perf_counter() - c0)))
        n_events += len(stream.close())
        return trajectory, n_events, time.perf_counter() - t0

    trajectory, n_events, total_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overall_rate = n_messages / total_s

    # Speedup pin on a subsample at the *full-density* arrival rate (a
    # slice of a nominal 1M-message day, not 30k spread over a day —
    # window occupancy, which drives grouping cost, must match the real
    # workload).  The reference path is the same code the compiled path
    # must be byte-identical to, so one digest each suffices.
    sample = list(islice(gen.stream(seed_salt=0xBE7C), 30_000))
    t0 = time.perf_counter()
    compiled_result = system.digest(sample)
    compiled_s = time.perf_counter() - t0
    with reference_mode():
        reference_system = SyslogDigest(system.kb, system.config)
        t0 = time.perf_counter()
        reference_result = reference_system.digest(sample)
        reference_s = time.perf_counter() - t0
    speedup = reference_s / max(compiled_s, 1e-9)
    identical = digest_fingerprint(compiled_result) == digest_fingerprint(
        reference_result
    )

    rows: list[tuple[str, object]] = [
        ("routers", len(gen.network.routers)),
        ("messages", n_messages),
        ("events", n_events),
        ("total wall time (s)", f"{total_s:.1f}"),
        ("overall rate (msg/s)", f"{overall_rate:,.0f}"),
        ("pinned rate floor (msg/s)", f"{SCALE_RATE_FLOOR:,.0f}"),
        (
            f"compiled digest, {len(sample)} msg subsample (s)",
            f"{compiled_s:.2f}",
        ),
        ("reference digest, same subsample (s)", f"{reference_s:.2f}"),
        ("compiled vs reference speedup", f"{speedup:.1f}x"),
        ("outputs byte-identical", identical),
    ]
    rows += [
        (f"rate after {done:,} msgs (msg/s)", f"{rate:,.0f}")
        for done, rate in trajectory
    ]
    record_table(
        "throughput_scale",
        ["metric", "value"],
        rows,
        title="Throughput: million-message scale trajectory "
        "(1000 routers, heavy-tailed volume)",
    )
    assert identical
    assert overall_rate >= SCALE_RATE_FLOOR
    assert speedup >= SCALE_SPEEDUP_FLOOR


def test_throughput_streaming_lanes(benchmark):
    """Streaming msgs/sec per executor lane: serial vs threads vs processes.

    The same scale feed (1000 routers, heavy-tailed volume) is pushed
    through ``DigestStream.push_many`` once per lane with 4 shards.  The
    process lane must hold a pinned absolute floor everywhere (its IPC
    cost is the regression being guarded); on a true multi-core runner
    it must also beat the GIL-bound thread lane.  Event counts must
    agree across lanes — full byte-identity is the ``make check`` gate
    in ``tests/test_hotpath_identity.py``.

    ``REPRO_SCALE_MESSAGES`` sets the run length, as for the trajectory.
    """
    n_messages = int(os.environ.get("REPRO_SCALE_MESSAGES", "200000"))
    n_cores = os.cpu_count() or 1
    gen = ScaleGenerator(ScaleSpec(n_routers=1000, n_messages=1_000_000))
    system = SyslogDigest.learn(
        gen.learning_messages(30_000),
        gen.configs(),
        DigestConfig(window=120.0),
        fit_temporal=False,
    )
    config = system.config.with_workers(4)

    def run_lane(lane):
        stream = DigestStream(system.kb, config.with_stream_workers(lane))
        try:
            assert stream.stream_lane == lane  # no silent degradation
            n_events = 0
            t0 = time.perf_counter()
            for chunk in gen.chunks(
                chunk_size=50_000, n_messages=n_messages
            ):
                n_events += len(stream.push_many(chunk))
            n_events += len(stream.close())
            return n_events, n_messages / (time.perf_counter() - t0)
        finally:
            stream.shutdown_workers()

    def run():
        return {
            lane: run_lane(lane)
            for lane in ("serial", "threads", "processes")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    events = {lane: n for lane, (n, _rate) in results.items()}
    rates = {lane: rate for lane, (_n, rate) in results.items()}
    record_table(
        "throughput_streaming_lanes",
        ["metric", "value"],
        [
            ("messages", n_messages),
            ("cores", n_cores),
            ("shards", 4),
            ("serial lane (msg/s)", f"{rates['serial']:,.0f}"),
            ("thread lane (msg/s)", f"{rates['threads']:,.0f}"),
            ("process lane (msg/s)", f"{rates['processes']:,.0f}"),
            (
                "pinned process-lane floor (msg/s)",
                f"{STREAM_LANE_RATE_FLOOR:,.0f}",
            ),
            ("events (all lanes)", events["serial"]),
            (
                "event counts agree",
                events["serial"] == events["threads"] == events["processes"],
            ),
        ],
        title="Throughput: streaming executor lanes "
        "(persistent per-shard worker processes vs threads vs serial)",
    )
    assert events["serial"] == events["threads"] == events["processes"]
    assert rates["processes"] >= STREAM_LANE_RATE_FLOOR
    if n_cores >= 4:
        # Four real cores: shared-nothing workers must beat the
        # GIL-bound thread lane; below that the IPC cost can win and
        # only the absolute floor is enforced.
        assert rates["processes"] >= rates["threads"]


def test_metrics_overhead(benchmark, system_a, live_a):
    """Default-on instrumentation must cost <5% of digest wall time.

    The same one-day digest runs under a no-op registry and a live one;
    each is repeated and the best-of runs compared so scheduler noise
    does not masquerade as overhead.  The measurement is recorded in
    ``results/metrics_overhead.txt``.
    """
    messages = _one_day(live_a)
    system = SyslogDigest(system_a.kb, system_a.config)
    rounds = 3

    def best_of(registry) -> float:
        best = float("inf")
        with scoped_registry(registry):
            for _ in range(rounds):
                t0 = time.perf_counter()
                result = system.digest(messages)
                best = min(best, time.perf_counter() - t0)
        return best, result

    def run():
        noop_s, noop_result = best_of(NullRegistry())
        live_s, live_result = best_of(MetricsRegistry())
        return noop_s, live_s, noop_result, live_result

    noop_s, live_s, noop_result, live_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = live_s / noop_s - 1.0
    identical = [e.indices for e in live_result.events] == [
        e.indices for e in noop_result.events
    ]
    record_table(
        "metrics_overhead",
        ["metric", "value"],
        [
            ("messages in one day", len(messages)),
            (f"digest, no-op registry, best of {rounds} (s)", f"{noop_s:.3f}"),
            (f"digest, live registry, best of {rounds} (s)", f"{live_s:.3f}"),
            ("overhead", f"{overhead * 100:+.2f}%"),
            ("results identical", identical),
        ],
        title="Observability: registry overhead on the one-day batch digest "
        "(bound: < 5%)",
    )
    assert identical
    # <5% bound, with a small absolute floor so micro-second jitter on a
    # tiny scaled-down run cannot fail the relative bound spuriously.
    assert live_s <= noop_s * 1.05 + 0.02
