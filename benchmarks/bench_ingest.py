"""Ingest disorder harness — recall must survive a messy multi-feed.

The online trace is split round-robin across three collector feeds, and
each feed is damaged the way real transports damage them: 10% of lines
arrive out of order (bounded 30 s skew), 2% are retransmitted, and one
feed flaps — it periodically spews garbage, goes silent, then recovers.
The feeds are interleaved into one arrival order and pushed through
:class:`~repro.syslog.ingest.MultiSourceIngest` (DESIGN.md §10).

Asserted invariants:

1. the clean single-feed run through ingest is a strict no-op against
   the direct ``DigestStream`` path (same indices, same scores);
2. event recall under the disorder mix stays at >= 95% of the clean
   multi-feed recall — the reorder window absorbs the skew, dedup
   absorbs the retransmits, and the breaker contains the flap;
3. the reorder buffer stays bounded: peak occupancy never exceeds the
   configured ``max_buffer_messages``.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.core.config import IngestConfig
from repro.core.stream import DigestStream
from repro.netsim.faults import (
    Compose,
    DuplicateBurst,
    ReorderLines,
    SourceFlap,
    labeled_pairs,
)
from repro.obs import NullRegistry, scoped_registry
from repro.syslog.collector import interleave_arrivals
from repro.syslog.ingest import MultiSourceIngest
from repro.syslog.parse import parse_line
from repro.syslog.resilient import Quarantine
from repro.utils.timeutils import parse_ts

N_FEEDS = 3
MAX_BUFFER = 2_000

#: The per-feed damage: seeded 10% bounded reorder + 2% duplication.
def _feed_profile(index: int) -> Compose:
    return Compose(
        name=f"feed{index}",
        profiles=(
            ReorderLines(rate=0.10, max_skew=30.0, seed=100 + index),
            DuplicateBurst(rate=0.02, copies=2, seed=200 + index),
        ),
    )


#: The flap hits exactly one feed: garbage bursts, then silence.
FLAP = SourceFlap(period=6 * 3600.0, garbage=8, silence=900.0)


def _split_feeds(pairs):
    """Round-robin the trace across N_FEEDS collector feeds."""
    return [pairs[i::N_FEEDS] for i in range(N_FEEDS)]


def _arrivals(feeds):
    """Interleave per-feed (line, label) pairs by line timestamp."""
    stamped = {}
    for index, pairs in enumerate(feeds):
        rows = []
        last_ts = 0.0
        for line, label in pairs:
            try:
                last_ts = parse_ts(line[:19])
            except ValueError:
                pass
            rows.append((last_ts, line, label))
        stamped[f"feed{index}"] = rows
    return interleave_arrivals(stamped, key=lambda row: row[0])


def _run_ingest(system, arrivals, config):
    """Push an arrival sequence through the front-end, tracking recall."""
    stream = DigestStream(system.kb, system.config.with_workers(4))
    quarantine = Quarantine()
    ingest = MultiSourceIngest(stream, config, quarantine=quarantine)
    events = []
    recalled: set = set()
    for source, (_ts, line, label) in arrivals:
        events.extend(ingest.push_line(source, line))
        if label is not None and ingest.last_outcome in (
            "admitted",
            "deduplicated",  # content already admitted once
        ):
            recalled.add(label)
    events.extend(ingest.close())
    return events, recalled, quarantine, ingest


def _sort_pairs(pairs):
    """Sort (line, label) pairs into the digester's canonical feed order
    (timestamp, router, error code) — the "in-order clean source"."""
    keyed = []
    for line, label in pairs:
        m = parse_line(line)
        keyed.append(((m.timestamp, m.router, m.error_code), line, label))
    keyed.sort(key=lambda row: row[0])
    return [(line, label) for _, line, label in keyed]


def test_ingest_disorder(benchmark, system_a, live_a):
    pairs_clean = _sort_pairs(labeled_pairs(live_a.messages))
    truth = {
        lm.event_id for lm in live_a.messages if lm.event_id is not None
    }
    config = IngestConfig(
        max_reorder_delay=60.0,
        max_buffer_messages=MAX_BUFFER,
        dedup_window=120.0,
        breaker_failure_threshold=5,
        probe_base_delay=60.0,
    )

    # Invariant 1 — clean single feed through ingest == direct path.
    # Dedup stays off here: a clean feed can legitimately repeat a line,
    # and the no-op guarantee is for the default (dedup-free) config.
    noop_config = IngestConfig(
        max_reorder_delay=60.0, max_buffer_messages=MAX_BUFFER
    )
    with scoped_registry(NullRegistry()):
        reference = DigestStream(
            system_a.kb, system_a.config.with_workers(4)
        )
        ref_events = []
        for line, _label in pairs_clean:
            ref_events.extend(reference.push(parse_line(line)))
        ref_events.extend(reference.close())
        noop_events, _, noop_quarantine, _ = _run_ingest(
            system_a,
            [("feed0", (0.0, line, label)) for line, label in pairs_clean],
            noop_config,
        )
    # Same events, same scores.  Emission *order* within a sweep can
    # differ between per-message pushes and the ingest's batched
    # flushes, so compare the (sorted) digests — which is also what the
    # CLI presents.  Arrival-order byte-identity for the serial engine
    # is pinned separately in tests/test_syslog_ingest.py.
    def digest_key(events):
        return sorted(
            (tuple(sorted(e.indices)), e.score) for e in events
        )

    assert digest_key(noop_events) == digest_key(ref_events)
    assert noop_quarantine.total == 0

    feeds = _split_feeds(pairs_clean)

    def sweep():
        rows = {}
        with scoped_registry(NullRegistry()):
            clean = _run_ingest(system_a, _arrivals(feeds), config)
            rows["clean multi-feed"] = clean
            damaged = [
                _feed_profile(i).apply(list(feed))
                for i, feed in enumerate(feeds)
            ]
            damaged[-1] = FLAP.apply(damaged[-1])
            rows["disorder + flap"] = _run_ingest(
                system_a, _arrivals(damaged), config
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    recalls = {}
    table = []
    for name, (events, recalled, quarantine, ingest) in rows.items():
        health = ingest.health()
        recall = len(recalled & truth) / len(truth) if truth else 1.0
        recalls[name] = recall
        table.append(
            (
                name,
                int(health["admitted"]),
                len(events),
                f"{recall:.1%}",
                int(health["late_dropped"]),
                int(health["deduplicated"]),
                int(health["breaker_transitions"]),
                int(health["peak_buffered"]),
                quarantine.total,
            )
        )
    record_table(
        "ingest_disorder",
        [
            "feed",
            "admitted",
            "#events",
            "event recall",
            "late",
            "dedup",
            "breaker transitions",
            "peak buffer",
            "quarantined",
        ],
        table,
        title="Multi-source ingest under disorder (3 feeds, one flapping)",
    )

    clean_recall = recalls["clean multi-feed"]
    messy_recall = recalls["disorder + flap"]
    assert clean_recall > 0.9

    # Invariant 2 — graceful degradation under the full disorder mix.
    assert messy_recall >= 0.95 * clean_recall, (messy_recall, clean_recall)

    # Invariant 3 — the reorder buffer stayed bounded, and the flap
    # actually exercised the breaker.
    _events, _recalled, _quarantine, messy_ingest = rows["disorder + flap"]
    health = messy_ingest.health()
    assert health["peak_buffered"] <= MAX_BUFFER
    assert health["breaker_transitions"] > 0
    assert health["deduplicated"] > 0
