"""Figure 13 — per-router raw messages vs digest events (dataset A).

Paper observations we verify:
* the event distribution across routers is less skewed than the message
  distribution;
* routers with more messages tend to compress better, the best
  compression landing on the busiest router.
"""

from __future__ import annotations

from benchmarks._shared import record_table, sci
from repro.utils.stats import gini


def test_fig13_per_router(benchmark, digest_a):
    per_router = benchmark.pedantic(
        digest_a.per_router, rounds=1, iterations=1
    )
    ordered = sorted(
        per_router.items(), key=lambda kv: -kv[1]["messages"]
    )
    rows = [
        (
            router,
            counts["messages"],
            counts["events"],
            sci(counts["events"] / max(counts["messages"], 1)),
        )
        for router, counts in ordered
    ]
    message_gini = gini([c["messages"] for c in per_router.values()])
    event_gini = gini([c["events"] for c in per_router.values()])
    rows.append(("(gini)", f"{message_gini:.3f}", f"{event_gini:.3f}", ""))
    record_table(
        "fig13_per_router",
        ["router", "#messages", "#events", "ratio"],
        rows,
        title="Figure 13: per-router messages vs events, dataset A "
        "(paper: events less skewed; busiest router compresses best)",
    )

    # Events are spread more evenly than raw messages.
    assert event_gini < message_gini
    # The busiest routers compress better than the median router.
    ratios = [
        counts["events"] / counts["messages"]
        for _, counts in ordered
        if counts["messages"] > 0
    ]
    busiest_ratio = ratios[0]
    median_ratio = sorted(ratios)[len(ratios) // 2]
    assert busiest_ratio <= median_ratio
