"""Section 6.2 — trouble-ticket correlation.

Paper: rank tickets by investigation/update count, take the top 30 for
dataset B, match each against the digests (duration covers ticket
creation, state-level location consistent); all 30 matched events ranked
top-5% or higher.  We reproduce the protocol exactly on synthetic tickets
derived from ground-truth incidents.
"""

from __future__ import annotations

from benchmarks._shared import record_table
from repro.apps.ticket_match import match_tickets
from repro.netsim.tickets import derive_tickets

TOP_TICKETS = 30


def test_sec62_ticket_correlation(benchmark, system_b, live_b, digest_b):
    tickets = derive_tickets(live_b.incidents, seed=8)[:TOP_TICKETS]
    assert len(tickets) >= 10, "too few tickets derived"

    report = benchmark.pedantic(
        match_tickets,
        args=(tickets, digest_b.events, system_b.kb.dictionary),
        rounds=1,
        iterations=1,
    )

    rows = []
    for match in report.matches:
        pct = (
            f"{(match.event_rank + 1) / report.n_events:.1%}"
            if match.event_rank is not None
            else "UNMATCHED"
        )
        rows.append(
            (
                match.ticket.ticket_id,
                match.ticket.kind,
                match.ticket.n_updates,
                match.ticket.state,
                match.event_rank + 1 if match.event_rank is not None else "-",
                pct,
            )
        )
    worst = report.worst_rank_percentile()
    rows.append(
        (
            "(summary)",
            f"{report.n_matched}/{len(tickets)} matched",
            "",
            "",
            "",
            f"worst {worst:.1%}" if worst else "-",
        )
    )
    record_table(
        "sec62_tickets",
        ["ticket", "kind", "updates", "state", "event rank", "rank pct"],
        rows,
        title=f"Section 6.2: top-{len(tickets)} tickets vs digest "
        "(paper: all matched within top 5%)",
    )

    # No important incident missed.
    assert report.match_fraction == 1.0
    # All matches rank prominently.  The paper reports top-5% on a far
    # larger event population; we assert the same qualitative claim with
    # headroom for the smaller denominator.
    assert worst is not None and worst <= 0.35
