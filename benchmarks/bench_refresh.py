"""Drift response of the safe knowledge lifecycle (DESIGN.md §9).

The paper refreshes its domain knowledge weekly so new router
hardware/software (new message formats) keep matching learned templates.
This bench simulates that drift on dataset A: the online window is split
into weekly periods, each injecting a growing stream of a *novel* error
code, and every period runs one full lifecycle turn — refresh a
candidate, replay the canary through active and candidate, promote only
if the gate accepts.  We record, per period, the template-match rate
before/after, the rule churn, and the wall-clock cost split into refresh
and gate (the gate's two canary replays are the promotion overhead).

Assertions pin the lifecycle's safety contract:

1. a zero-drift refresh (empty period) is a strict no-op — trivially
   accepted without a new version, active digest output unchanged;
2. healthy drift refreshes are promoted and recover the match rate the
   drift destroyed;
3. a corrupted learning feed (drift lines damaged by
   :class:`~repro.netsim.faults.CorruptLines` so the refresh never sees
   them) is rejected by the match-rate floor and the active version
   keeps serving.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._shared import record_table
from repro.core.modelstore import KnowledgeStore
from repro.core.pipeline import SyslogDigest
from repro.core.present import present_event
from repro.core.promotion import (
    GateConfig,
    PromotionGate,
    replay_quality,
)
from repro.core.refresh import refresh_candidate
from repro.netsim.canary import drift_messages
from repro.netsim.datasets import ONLINE_DAYS, ONLINE_START
from repro.netsim.faults import CorruptLines
from repro.syslog.parse import SyslogParseError, format_line, parse_line
from repro.syslog.stream import sort_messages
from repro.utils.timeutils import DAY

N_PERIODS = 4


def _merged_canary(labeled_slice, extra):
    """Slice ground truth + unlabeled drift, in pipeline order."""
    pairs = [(lm.message, lm.event_id) for lm in labeled_slice]
    pairs += [(m, None) for m in extra]
    pairs.sort(key=lambda p: (p[0].timestamp, p[0].router, p[0].error_code))
    return [p[0] for p in pairs], [p[1] for p in pairs]


def _rendered(events):
    return [present_event(e) for e in events]


def test_refresh_drift_response(benchmark, tmp_path, system_a, data_a, live_a):
    routers = sorted(data_a.network.routers)[:6]
    store = KnowledgeStore(tmp_path / "kbstore")
    store.commit(system_a.kb, note="offline learning", activate=True)

    period_days = ONLINE_DAYS / N_PERIODS
    slices: list[list] = [[] for _ in range(N_PERIODS)]
    for lm in live_a.messages:
        i = min(
            int((lm.timestamp - ONLINE_START) // (period_days * DAY)),
            N_PERIODS - 1,
        )
        slices[i].append(lm)

    # Post-refresh quality is judged on what the *next* period looks
    # like: the drift code keeps occurring, so a base that learned it
    # this week matches it next week.
    # The synthetic weekly remine churns more rule pairs than the
    # paper's production defaults allow, and the rules it deletes split
    # groups (worse compression, noisier recall) — behaviour the
    # production gate exists to block.  This bench studies the
    # match-rate drift response, so every *other* bound is widened.
    gate = PromotionGate(
        GateConfig(
            min_template_match_rate=0.0,
            max_compression_worsening=3.0,
            min_event_recall_delta=-1.0,
            max_rules_added=500,
            max_rules_deleted=200,
        ),
        digest_config=system_a.config,
    )

    def run_periods():
        rows = []
        for i, labeled_slice in enumerate(slices):
            start = ONLINE_START + i * period_days * DAY
            drift = drift_messages(
                routers,
                start + 600.0,
                n_messages=60 * (i + 1),
                period=(period_days * DAY - 1200.0) / (60 * (i + 1)),
                error_code=f"DRIFT{i}-3-FLAP",
            )
            period = sort_messages(
                [lm.message for lm in labeled_slice] + drift
            )
            canary, truth = _merged_canary(labeled_slice, drift)

            active, active_info = store.load_active()
            t0 = time.perf_counter()
            candidate, report = refresh_candidate(active, period)
            t1 = time.perf_counter()
            decision = gate.evaluate(
                active, candidate, canary, truth, report
            )
            t2 = time.perf_counter()
            if decision.accepted and not decision.trivial:
                info = store.commit(
                    candidate, note=f"period {i}", activate=True
                )
                version = info.version
            else:
                if not decision.accepted:
                    store.record_rejection(
                        decision.reasons, version=active_info.version
                    )
                version = active_info.version
            rows.append(
                (
                    i,
                    len(period),
                    len(drift),
                    decision.active.template_match_rate,
                    decision.candidate.template_match_rate,
                    "accepted" if decision.accepted else "rejected",
                    len(decision.rules_added),
                    len(decision.rules_deleted),
                    t1 - t0,
                    t2 - t1,
                    version,
                )
            )
        return rows

    rows = benchmark.pedantic(run_periods, rounds=1, iterations=1)

    record_table(
        "refresh_drift",
        [
            "period",
            "#msgs",
            "#drift",
            "match before",
            "match after",
            "outcome",
            "+rules",
            "-rules",
            "refresh s",
            "gate s",
            "active",
        ],
        [
            (
                i,
                n,
                nd,
                f"{before:.3f}",
                f"{after:.3f}",
                outcome,
                added,
                deleted,
                f"{rt:.2f}",
                f"{gt:.2f}",
                f"v{version}",
            )
            for i, n, nd, before, after, outcome, added, deleted, rt, gt, version in rows
        ],
        title="Knowledge-lifecycle drift response (dataset A, weekly periods)",
    )

    # 2. Every healthy drift refresh is promoted and repairs the match
    # rate the novel code destroyed.
    for row in rows:
        assert row[5] == "accepted", row
        assert row[4] >= row[3] - 1e-12, row

    # 1. Zero drift is a strict no-op: same fingerprint, no new version,
    # and the active version's digest of a canary is byte-identical
    # before and after the (trivially accepted) turn.
    active, info_before = store.load_active()
    canary, truth = _merged_canary(slices[-1], [])
    baseline = _rendered(
        SyslogDigest(active, system_a.config).digest(canary).events
    )
    candidate, report = refresh_candidate(active, [])
    decision = gate.evaluate(active, candidate, canary, truth, report)
    assert decision.trivial and decision.accepted
    _after, info_after = store.load_active()
    assert info_after.version == info_before.version
    again = _rendered(
        SyslogDigest(store.load_active()[0], system_a.config)
        .digest(canary)
        .events
    )
    assert again == baseline

    # 3. Corrupted learning feed: the drift lines are damaged before the
    # refresh ever sees them, so the candidate cannot learn the new
    # template and its canary match rate stays at the active base's
    # level — below a floor set between the broken and healthy rates.
    active, active_info = store.load_active()
    fresh_drift = drift_messages(
        routers,
        ONLINE_START + ONLINE_DAYS * DAY + 600.0,
        n_messages=240,
        period=30.0,
        error_code="DRIFT-CORRUPT-2-DOWN",
    )
    damaged = CorruptLines(rate=1.0, seed=5).apply(
        [(format_line(m), None) for m in fresh_drift]
    )
    surviving = []
    for line, _label in damaged:
        try:
            surviving.append(parse_line(line))
        except SyslogParseError:
            pass
    assert not surviving  # rate=1.0: the whole drift stream is lost
    period = sort_messages(
        [lm.message for lm in slices[-1]] + surviving
    )
    canary, truth = _merged_canary(slices[-1], fresh_drift)
    healthy, _ = refresh_candidate(
        active, sort_messages([lm.message for lm in slices[-1]] + fresh_drift)
    )
    healthy_rate = replay_quality(
        healthy, canary, truth, system_a.config
    ).template_match_rate
    broken, broken_report = refresh_candidate(active, period)
    broken_rate = replay_quality(
        broken, canary, truth, system_a.config
    ).template_match_rate
    assert healthy_rate > broken_rate
    floor_gate = PromotionGate(
        GateConfig(
            min_template_match_rate=(healthy_rate + broken_rate) / 2
        ),
        digest_config=system_a.config,
    )
    verdict = floor_gate.evaluate(
        active, broken, canary, truth, broken_report
    )
    assert not verdict.accepted
    assert any("floor" in reason for reason in verdict.reasons)
    store.record_rejection(verdict.reasons, version=active_info.version)
    assert store.active_version() == active_info.version
    assert any(e["kind"] == "reject" for e in store.log())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-v"]))
