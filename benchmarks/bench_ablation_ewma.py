"""Ablation — the EWMA interarrival model vs a fixed inactivity gap.

A fixed gap equal to s_max compresses *more* (it never splits inside 3 h),
so compression alone would favour it.  The EWMA model's value is
*fidelity*: it separates messages whose rhythm broke — distinct injected
conditions on the same (router, template, location) key — which a blunt
3-hour gap would fuse.  We measure both sides.
"""

from __future__ import annotations

from collections import defaultdict

from benchmarks._shared import record_table, sci
from repro.core.syslogplus import Augmenter
from repro.mining.fit import compression_ratio
from repro.mining.temporal import TemporalParams, split_series


def test_ablation_ewma_vs_fixed_gap(benchmark, system_a, live_a):
    augmenter = Augmenter(system_a.kb.templates, system_a.kb.dictionary)
    plus = augmenter.augment_all(m.message for m in live_a.messages)
    series: dict[tuple, list[tuple[float, str | None]]] = defaultdict(list)
    for p, lm in zip(plus, live_a.messages):
        key = (p.router, p.template_key, p.primary_location.key())
        series[key].append((p.timestamp, lm.event_id))

    ewma = system_a.kb.temporal
    # A fixed gap = always-same-group up to s_max: alpha=0 freezes the
    # prediction, a huge beta disables the rhythm test.
    fixed = TemporalParams(
        alpha=0.0, beta=1e9, s_min=ewma.s_min, s_max=ewma.s_max
    )

    def purity(params: TemporalParams) -> tuple[float, float]:
        """(compression ratio, fraction of groups mixing >=2 incidents)."""
        mixed = 0
        total_groups = 0
        for items in series.values():
            groups = split_series([ts for ts, _ in items], params)
            members: dict[int, set] = defaultdict(set)
            for (ts, event_id), g in zip(items, groups):
                if event_id is not None:
                    members[g].add(event_id)
            total_groups += groups[-1] + 1
            mixed += sum(1 for ids in members.values() if len(ids) >= 2)
        ratio = compression_ratio(
            [[ts for ts, _ in items] for items in series.values()], params
        )
        return ratio, mixed / max(total_groups, 1)

    def run():
        return purity(ewma), purity(fixed)

    (ewma_ratio, ewma_mixed), (fixed_ratio, fixed_mixed) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record_table(
        "ablation_ewma",
        ["model", "compression ratio", "mixed-incident groups"],
        [
            (f"EWMA (alpha={ewma.alpha:g}, beta={ewma.beta:g})",
             sci(ewma_ratio), f"{ewma_mixed:.2%}"),
            ("fixed 3h gap", sci(fixed_ratio), f"{fixed_mixed:.2%}"),
        ],
        title="Ablation: EWMA rhythm model vs fixed inactivity gap",
    )

    # The fixed gap compresses at least as hard...
    assert fixed_ratio <= ewma_ratio + 1e-12
    # ...but fuses distinct injected conditions at least as often.
    assert ewma_mixed <= fixed_mixed + 1e-12
