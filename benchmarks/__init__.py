"""Benchmark/reproduction harness — one module per paper table/figure."""
