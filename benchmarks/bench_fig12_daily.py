"""Figure 12 — per-day message, event and active-rule counts (dataset A).

Paper: over the 14 online days the event count stays roughly stable and
three orders of magnitude below the message count; 100-200 association
rules are *active* (actually fire in grouping) per day.  The paper plots
normalized counts; we print raw ones plus the ratio.
"""

from __future__ import annotations

from benchmarks._shared import record_table, sci
from repro.core.pipeline import SyslogDigest
from repro.netsim.datasets import ONLINE_START
from repro.utils.stats import mean
from repro.utils.timeutils import DAY


def test_fig12_daily_counts(benchmark, system_a, live_a, digest_a):
    per_day = digest_a.per_day(ONLINE_START)

    def daily_active_rules():
        """Digest each day separately to count the rules firing that day."""
        out = {}
        by_day: dict[int, list] = {}
        for lm in live_a.messages:
            by_day.setdefault(
                int((lm.timestamp - ONLINE_START) // DAY), []
            ).append(lm.message)
        for day, messages in sorted(by_day.items()):
            result = SyslogDigest(system_a.kb, system_a.config).digest(
                messages
            )
            out[day] = len(result.active_rules)
        return out

    active = benchmark.pedantic(daily_active_rules, rounds=1, iterations=1)

    rows = []
    for day in sorted(per_day):
        counts = per_day[day]
        rows.append(
            (
                day + 1,
                counts["messages"],
                counts["events"],
                sci(counts["events"] / max(counts["messages"], 1)),
                active.get(day, 0),
            )
        )
    record_table(
        "fig12_daily",
        ["day", "#messages", "#events", "ratio", "#active rules"],
        rows,
        title="Figure 12: daily digest counts, dataset A "
        "(paper: stable event counts, ~3 orders below messages; "
        "100-200 active rules/day at their scale)",
    )

    events = [r[2] for r in rows]
    messages = [r[1] for r in rows]
    # Events per day are stable: no day strays far from the mean.
    avg = mean([float(e) for e in events])
    assert all(0.2 * avg <= e <= 3.5 * avg for e in events)
    # Large separation between messages and events every day.
    assert all(m > 20 * e for m, e in zip(messages, events))
    assert all(r[4] > 0 for r in rows)
