# Convenience targets; everything assumes the in-tree layout (PYTHONPATH=src).

PY = PYTHONPATH=src python

.PHONY: check test faults lifecycle ingest serve serve-smoke chaos chaos-smoke placement placement-smoke bench bench-refresh bench-ingest bench-scale clean

# The pre-merge gate: the full tier-1 suite (which includes the
# checkpoint kill-and-resume round-trip in tests/test_core_checkpoint.py)
# plus the zero-drift canary replay, which must be a strict no-op —
# a refresh over an empty period may never mint a new knowledge version —
# the ingest clean-feed no-op: a single in-order clean source pushed
# through the resilient front-end must be byte-identical to the direct
# path — the hot-path identity gate: the compiled per-message path
# (indexed matching, memoized augmentation, cached dictionary queries)
# must digest byte-identically to the reference path, serial and with
# 4 workers, and the streaming executor lanes (serial | threads |
# worker processes) must be byte-identical to each other — and the
# shard-retry determinism gate: a mid-list shard fault must recover by
# resuming at the failed message, never by replaying applied state —
# and the serve-smoke crash gate: a real `repro serve` daemon SIGKILLed
# mid-stream must, on restart under a different PYTHONHASHSEED, finish
# byte-identical to an uninterrupted run (serial + process lanes), and
# SIGTERM must drain to exit 0 with a final checkpoint — and the
# chaos-smoke gate: a live two-tenant daemon tailing its logs through
# scripted rotation, in-place truncation, disk-full-during-checkpoint,
# and SIGKILL-mid-tail must finish byte-identical to an unfaulted run,
# and the clean no-fault run must be a strict operational no-op — and
# the placement-smoke partial-failure gate: with both tenants in
# worker processes, SIGKILLing one tenant's worker mid-stream must
# leave the survivor a strict no-op (zero quarantine, zero degraded or
# restart transitions, byte-identical fingerprint) while the killed
# tenant resumes byte-identical from its checkpoint, on the serial and
# process stream-executor lanes alike.
check:
	$(PY) -m pytest -x -q
	$(PY) -m pytest -q tests/test_core_checkpoint.py
	$(PY) -m pytest -q tests/test_core_promotion.py -k zero_drift
	$(PY) -m pytest -q tests/test_syslog_ingest.py -k byte_identical
	$(PY) -m pytest -q tests/test_hotpath_identity.py
	$(PY) -m pytest -q tests/test_stream_workers.py
	$(PY) -m pytest -q tests/test_serve_smoke.py
	$(PY) -m pytest -q tests/test_chaos_smoke.py
	$(PY) -m pytest -q tests/test_placement_smoke.py

# Tier-1 without the heavier fault-injection tests.
test:
	$(PY) -m pytest -x -q -m "not faults"

# Only the fault-injection robustness tests + the fault bench.
faults:
	$(PY) -m pytest -q -m faults
	$(PY) -m pytest -q benchmarks/bench_faults.py

# Knowledge-lifecycle tests: model store, promotion gate, hot swap.
lifecycle:
	$(PY) -m pytest -q -m lifecycle

# Resilient multi-source ingest tests: watermark reordering, breakers,
# dedup, admission control, ingest x checkpoint round-trips.
ingest:
	$(PY) -m pytest -q -m ingest

# All serve-daemon tests: journal, supervisor state machine, tenant
# runtime, HTTP API, and the cross-process smoke gate.
serve:
	$(PY) -m pytest -q -m serve

# Just the end-to-end crash-recovery smoke gate (also part of `check`):
# kill -9 a live two-tenant daemon mid-stream, restart it, and require
# a byte-identical digest; SIGTERM must drain to exit 0.
serve-smoke:
	$(PY) -m pytest -q tests/test_serve_smoke.py

# Every chaos-marked test: live-daemon disaster scenarios plus any
# future chaos tiers.
chaos:
	$(PY) -m pytest -q -m chaos

# The deterministic chaos gate (also part of `check`): drive a live
# two-tenant daemon through scripted rotate-while-reading, truncate,
# disk-full-during-checkpoint, and SIGKILL-mid-tail, requiring a
# byte-identical digest against an unfaulted run each time; the clean
# run must produce zero quarantined lines and zero degraded
# transitions.
chaos-smoke:
	$(PY) -m pytest -q tests/test_chaos_smoke.py

# Every placement-marked test: the bulkhead tier — framed-pipe RPC
# protocol suite, worker-process supervision (SIGKILL / poison batch /
# RPC-deadline hang), budget shed, long-poll, HTTP hardening, and the
# cross-process partial-failure gate.
placement:
	$(PY) -m pytest -q -m placement tests/test_serve_rpc.py tests/test_serve_placement.py tests/test_placement_smoke.py

# The partial-failure chaos gate (also part of `check`): a live
# two-tenant daemon with per-tenant worker processes has one tenant's
# worker SIGKILLed mid-stream; the survivor must be a strict no-op and
# the victim must resume byte-identical, with the budget metric series
# present in /metrics.
placement-smoke:
	$(PY) -m pytest -q tests/test_placement_smoke.py

# Full paper-reproduction benchmark sweep (slow; writes benchmarks/results/).
bench:
	$(PY) -m pytest -q benchmarks/

# Drift response of the refresh→gate→promote loop (writes
# benchmarks/results/refresh_drift.txt).
bench-refresh:
	$(PY) -m pytest -q benchmarks/bench_refresh.py

# Ingest disorder harness: recall and buffer bounds under reorder +
# duplication + a flapping feed (writes benchmarks/results/
# ingest_disorder.txt).
bench-ingest:
	$(PY) -m pytest -q benchmarks/bench_ingest.py

# Million-message scale run: 1000 routers, heavy-tailed volume, chunked
# streaming; pins the msgs/sec floor and the compiled-vs-reference
# speedup, plus the per-executor-lane streaming rates with the pinned
# process-lane floor (writes benchmarks/results/throughput_scale.txt
# and benchmarks/results/throughput_streaming_lanes.txt).
bench-scale:
	REPRO_SCALE_MESSAGES=1000000 $(PY) -m pytest -q benchmarks/bench_throughput.py -k "scale_trajectory or streaming_lanes"

clean:
	rm -rf .pytest_cache $$(find . -name __pycache__ -type d)
