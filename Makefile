# Convenience targets; everything assumes the in-tree layout (PYTHONPATH=src).

PY = PYTHONPATH=src python

.PHONY: check test faults bench clean

# The pre-merge gate: the full tier-1 suite (which includes the
# checkpoint kill-and-resume round-trip in tests/test_core_checkpoint.py).
check:
	$(PY) -m pytest -x -q
	$(PY) -m pytest -q tests/test_core_checkpoint.py

# Tier-1 without the heavier fault-injection tests.
test:
	$(PY) -m pytest -x -q -m "not faults"

# Only the fault-injection robustness tests + the fault bench.
faults:
	$(PY) -m pytest -q -m faults
	$(PY) -m pytest -q benchmarks/bench_faults.py

# Full paper-reproduction benchmark sweep (slow; writes benchmarks/results/).
bench:
	$(PY) -m pytest -q benchmarks/

clean:
	rm -rf .pytest_cache $$(find . -name __pycache__ -type d)
