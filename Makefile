# Convenience targets; everything assumes the in-tree layout (PYTHONPATH=src).

PY = PYTHONPATH=src python

.PHONY: check test faults lifecycle bench bench-refresh clean

# The pre-merge gate: the full tier-1 suite (which includes the
# checkpoint kill-and-resume round-trip in tests/test_core_checkpoint.py)
# plus the zero-drift canary replay, which must be a strict no-op —
# a refresh over an empty period may never mint a new knowledge version.
check:
	$(PY) -m pytest -x -q
	$(PY) -m pytest -q tests/test_core_checkpoint.py
	$(PY) -m pytest -q tests/test_core_promotion.py -k zero_drift

# Tier-1 without the heavier fault-injection tests.
test:
	$(PY) -m pytest -x -q -m "not faults"

# Only the fault-injection robustness tests + the fault bench.
faults:
	$(PY) -m pytest -q -m faults
	$(PY) -m pytest -q benchmarks/bench_faults.py

# Knowledge-lifecycle tests: model store, promotion gate, hot swap.
lifecycle:
	$(PY) -m pytest -q -m lifecycle

# Full paper-reproduction benchmark sweep (slow; writes benchmarks/results/).
bench:
	$(PY) -m pytest -q benchmarks/

# Drift response of the refresh→gate→promote loop (writes
# benchmarks/results/refresh_drift.txt).
bench-refresh:
	$(PY) -m pytest -q benchmarks/bench_refresh.py

clean:
	rm -rf .pytest_cache $$(find . -name __pycache__ -type d)
