"""Deterministic chaos gate for the serve daemon (DESIGN.md §14).

A real two-tenant ``repro serve`` process — one serial-lane tenant,
one process-lane tenant — is driven through scripted disasters while it
live-tails its source logs: rotation mid-read, in-place truncation,
disk-full during checkpointing, SIGKILL mid-tail.  After every
scenario, each tenant's served digest must be
``hotpath.stream_fingerprint`` byte-identical to an unfaulted
in-process run over the same final data; the clean no-fault scenario
additionally pins that live tailing itself is a strict no-op (no
quarantine, no degraded transitions).

Determinism comes from observation gates, not sleeps: every scripted
fault waits on daemon-reported state (per-source ``pushed`` counts,
rotation/truncation counters) through the HTTP surface, and a positive
``max_reorder_delay`` makes the ingest's emission order invariant to
arrival timing — see ``repro.netsim.chaos`` for the argument.

Run via ``make chaos-smoke`` (wired into ``make check``); the full
chaos tier is ``make chaos``.
"""

from __future__ import annotations

import json
import os
import signal
from pathlib import Path

import pytest

from repro.netsim.chaos import (
    ChaosDaemon,
    reference_fingerprint,
    supervisor_arc,
    tenant_fingerprint,
    transition_kinds,
)
from repro.syslog.parse import format_line
from repro.syslog.stream import write_log

pytestmark = pytest.mark.chaos

REPO_ROOT = Path(__file__).resolve().parent.parent
TENANTS = ("t-serial", "t-procs")
N_MESSAGES = 600
PHASE1 = 400
#: Per-source line counts: each tenant's feed splits even/odd across
#: s1/s2, so phase 1 holds 200 lines per source and the full window 300.
PHASE1_PER_SOURCE = PHASE1 // 2
FULL_PER_SOURCE = N_MESSAGES // 2


def _append(path: Path, messages) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        for message in messages:
            fh.write(format_line(message) + "\n")


@pytest.fixture(scope="module")
def farm(system_a, live_a, tmp_path_factory):
    """Chaos layout: message window, tenant specs, reference prints.

    The reference for *every* scenario is the same: an uninterrupted
    in-process run over the complete window — rotation and truncation
    (as scripted here) lose no lines, and crash recovery must not
    either.
    """
    root = tmp_path_factory.mktemp("chaos")
    kb_path = root / "kb.json"
    system_a.kb.save(kb_path)
    messages = [m.message for m in live_a.messages][:N_MESSAGES]

    def tenant_dict(name: str, logdir: Path, workdir: Path) -> dict:
        return {
            "name": name,
            "sources": [
                str(logdir / name / "s1.log"),
                str(logdir / name / "s2.log"),
            ],
            "workdir": str(workdir / name),
            "kb_path": str(kb_path),
            "checkpoint_every": 50,
            # Positive reorder delay => emission order is the buffer's
            # deterministic sort, however arrivals are timed/chunked.
            "max_reorder_delay": 5.0,
            "stream_workers": "processes" if name == "t-procs" else "serial",
            "n_workers": 2 if name == "t-procs" else 1,
        }

    reference = {}
    ref_root = root / "reference"
    for name in TENANTS:
        logdir = ref_root / "logs"
        (logdir / name).mkdir(parents=True, exist_ok=True)
        write_log(logdir / name / "s1.log", messages[0::2])
        write_log(logdir / name / "s2.log", messages[1::2])
        reference[name] = reference_fingerprint(
            tenant_dict(name, logdir, ref_root / "work")
        )

    return {
        "root": root,
        "messages": messages,
        "tenant_dict": tenant_dict,
        "reference": reference,
    }


def _scenario(farm, label: str, *, phase1_only: bool = True, **overrides):
    """Lay out one scenario's logs + daemon config in fresh directories."""
    root = farm["root"] / label
    logdir = root / "logs"
    workdir = root / "work"
    messages = farm["messages"]
    upto = PHASE1 if phase1_only else N_MESSAGES
    for name in TENANTS:
        (logdir / name).mkdir(parents=True)
        write_log(logdir / name / "s1.log", messages[0:upto:2])
        write_log(logdir / name / "s2.log", messages[1:upto:2])
    config = {
        "workdir": str(workdir),
        "once": False,
        "port": 0,
        "poll_interval": 0.05,
        "tenants": [
            farm["tenant_dict"](name, logdir, workdir) for name in TENANTS
        ],
        "supervisor": {"max_restarts": 3, "base_delay": 0.05},
    }
    config.update(overrides)
    return config, logdir, workdir


def _src(logdir: Path, tenant: str, which: str) -> Path:
    return logdir / tenant / which


def _write_phase2(farm, logdir: Path, tenant: str) -> None:
    """Append the window's second half to a tenant's live feeds."""
    messages = farm["messages"]
    _append(_src(logdir, tenant, "s1.log"), messages[PHASE1:N_MESSAGES:2])
    _append(
        _src(logdir, tenant, "s2.log"), messages[PHASE1 + 1 : N_MESSAGES : 2]
    )


def _assert_matches_reference(farm, workdir: Path) -> None:
    for name in TENANTS:
        got = tenant_fingerprint(workdir / name)
        assert got == farm["reference"][name], (
            f"tenant {name}: faulted live run diverged from the "
            "uninterrupted reference"
        )


class TestCleanRun:
    def test_live_tailing_alone_is_a_strict_noop(self, farm):
        """No faults => byte-identity plus zero operational noise."""
        config, logdir, workdir = _scenario(
            farm, "clean", phase1_only=False
        )
        daemon = ChaosDaemon(config, workdir, seed="11", repo_root=REPO_ROOT)
        daemon.start()
        try:
            for name in TENANTS:
                daemon.wait_pushed(
                    name,
                    {
                        str(_src(logdir, name, "s1.log")): FULL_PER_SOURCE,
                        str(_src(logdir, name, "s2.log")): FULL_PER_SOURCE,
                    },
                )
            daemon.drain()
            assert daemon.wait_exit() == 0, daemon.stderr
        finally:
            daemon.kill()
        _assert_matches_reference(farm, workdir)
        for name in TENANTS:
            assert transition_kinds(workdir / name) == []
            assert set(supervisor_arc(workdir / name)) <= {
                "healthy",
                "drained",
            }
            assert not (workdir / name / "quarantine.jsonl").exists()


class TestRotation:
    def test_rotate_while_reading_loses_nothing(self, farm):
        config, logdir, workdir = _scenario(farm, "rotate")
        daemon = ChaosDaemon(config, workdir, seed="22", repo_root=REPO_ROOT)
        daemon.start()
        try:
            # Rotate only after the tailer has demonstrably adopted the
            # file (a rotation before its first poll would orphan it).
            for name in TENANTS:
                daemon.wait_pushed(
                    name, {str(_src(logdir, name, "s1.log")): 100}
                )
            for name in TENANTS:
                s1 = _src(logdir, name, "s1.log")
                os.replace(s1, s1.with_name("s1.log.1"))
                write_log(
                    s1, farm["messages"][PHASE1:N_MESSAGES:2]
                )  # fresh inode
                _append(
                    _src(logdir, name, "s2.log"),
                    farm["messages"][PHASE1 + 1 : N_MESSAGES : 2],
                )
            for name in TENANTS:
                daemon.wait_pushed(
                    name,
                    {
                        str(_src(logdir, name, "s1.log")): FULL_PER_SOURCE,
                        str(_src(logdir, name, "s2.log")): FULL_PER_SOURCE,
                    },
                )
                rows = {
                    row["source"]: row for row in daemon.sources(name)
                }
                assert (
                    rows[str(_src(logdir, name, "s1.log"))]["rotations"]
                    >= 1
                )
            daemon.drain()
            assert daemon.wait_exit() == 0, daemon.stderr
        finally:
            daemon.kill()
        _assert_matches_reference(farm, workdir)


class TestTruncation:
    def test_truncate_in_place_restarts_cleanly(self, farm):
        config, logdir, workdir = _scenario(farm, "truncate")
        daemon = ChaosDaemon(config, workdir, seed="33", repo_root=REPO_ROOT)
        daemon.start()
        try:
            # Every phase-1 line must be pushed before the truncation
            # destroys them — the scripted fault models "copytruncate"
            # after the reader caught up, not data loss.
            for name in TENANTS:
                daemon.wait_pushed(
                    name,
                    {
                        str(_src(logdir, name, "s1.log")): PHASE1_PER_SOURCE,
                        str(_src(logdir, name, "s2.log")): PHASE1_PER_SOURCE,
                    },
                )
            for name in TENANTS:
                with open(_src(logdir, name, "s1.log"), "r+b") as fh:
                    fh.truncate(0)  # same inode, size collapses
            # The daemon must *observe* the truncation before new bytes
            # land, or a longer successor could masquerade as append.
            for name in TENANTS:
                daemon.wait_counter(
                    name,
                    str(_src(logdir, name, "s1.log")),
                    "truncations",
                )
            for name in TENANTS:
                _write_phase2(farm, logdir, name)
            for name in TENANTS:
                daemon.wait_pushed(
                    name,
                    {
                        str(_src(logdir, name, "s1.log")): FULL_PER_SOURCE,
                        str(_src(logdir, name, "s2.log")): FULL_PER_SOURCE,
                    },
                )
            daemon.drain()
            assert daemon.wait_exit() == 0, daemon.stderr
        finally:
            daemon.kill()
        _assert_matches_reference(farm, workdir)


class TestKillMidTail:
    def test_sigkill_mid_tail_resumes_byte_identical(self, farm):
        # Phase 1 is 800 arrivals across both tenants; the crash hook
        # fires at 900 — i.e. mid-way through tailing the phase-2
        # appends, with live cursors in the checkpoints.
        config, logdir, workdir = _scenario(
            farm, "sigkill", crash_after=900
        )
        daemon = ChaosDaemon(config, workdir, seed="44", repo_root=REPO_ROOT)
        daemon.start()
        try:
            for name in TENANTS:
                daemon.wait_pushed(
                    name,
                    {
                        str(_src(logdir, name, "s1.log")): PHASE1_PER_SOURCE,
                        str(_src(logdir, name, "s2.log")): PHASE1_PER_SOURCE,
                    },
                )
            for name in TENANTS:
                _write_phase2(farm, logdir, name)
            assert daemon.wait_exit() == -signal.SIGKILL, daemon.stderr
        finally:
            daemon.kill()
        # Mid-tail state is on disk: both tenants checkpointed.
        for name in TENANTS:
            assert (workdir / name / "checkpoint.ckpt").exists()

        # Restart over the same workdir, different hash seed; ``once``
        # drains when the (now complete) sources are exhausted.
        resume = dict(config)
        resume.pop("crash_after")
        resume["once"] = True
        second = ChaosDaemon(resume, workdir, seed="55", repo_root=REPO_ROOT)
        second.start()
        try:
            assert second.wait_exit() == 0, second.stderr
        finally:
            second.kill()
        _assert_matches_reference(farm, workdir)


class TestDiskFull:
    def test_disk_full_during_checkpoint_degrades_not_crashes(self, farm):
        # The first two checkpoint write attempts in the daemon process
        # hit injected ENOSPC ("checkpoint.ckpt" also matches the
        # ".new" temp names; events.bin and quarantine.jsonl never do).
        config, logdir, workdir = _scenario(
            farm,
            "diskfull",
            phase1_only=False,
            once=True,
            fault={
                "kind": "disk_full",
                "match": "checkpoint.ckpt",
                "after": 1,
                "times": 2,
            },
        )
        daemon = ChaosDaemon(config, workdir, seed="66", repo_root=REPO_ROOT)
        daemon.start()
        try:
            assert daemon.wait_exit() == 0, daemon.stderr
        finally:
            daemon.kill()
        kinds = []
        for name in TENANTS:
            kinds.extend(transition_kinds(workdir / name))
        assert "durable-write-failed" in kinds
        assert "durable-write-recovered" in kinds
        # Degradation never cost a single event.
        _assert_matches_reference(farm, workdir)
        for name in TENANTS:
            assert (workdir / name / "checkpoint.ckpt").exists()
