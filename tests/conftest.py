"""Shared fixtures: miniature datasets and a learned system.

Session-scoped so the expensive generation/learning happens once; tests
must treat these as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.config import DigestConfig
from repro.core.pipeline import SyslogDigest
from repro.netsim.datasets import dataset_a, dataset_b, generate_dataset
from repro.utils.timeutils import DAY


@pytest.fixture(scope="session")
def data_a():
    """A small dataset-A instance (network + configs + engine)."""
    return generate_dataset(dataset_a(), scale=0.25)


@pytest.fixture(scope="session")
def data_b():
    """A small dataset-B instance."""
    return generate_dataset(dataset_b(), scale=0.25)


@pytest.fixture(scope="session")
def history_a(data_a):
    """10 days of labelled history for dataset A."""
    return data_a.generate(0.0, 10)


@pytest.fixture(scope="session")
def live_a(data_a):
    """2 days of labelled live traffic following the history."""
    return data_a.generate(10 * DAY, 2)


@pytest.fixture(scope="session")
def system_a(data_a, history_a) -> SyslogDigest:
    """A SyslogDigest learned on the small dataset-A history."""
    return SyslogDigest.learn(
        [m.message for m in history_a.messages],
        list(data_a.configs.values()),
        DigestConfig(),
        fit_temporal=False,
    )


@pytest.fixture(scope="session")
def digest_a(system_a, live_a):
    """Digest of the live dataset-A window."""
    return system_a.digest(m.message for m in live_a.messages)
